//! End-to-end checks over the benchmark suite: every workload runs
//! correctly under every configuration, and the paper's headline effects
//! hold in aggregate — promotion reduces dynamic singleton memory
//! references (Table 5's direction), and interprocedural allocation never
//! breaks observable behavior.

use ipra_core::PaperConfig;
use ipra_driver::{compile, run_program, CompileOptions};
use ipra_workloads::all;

#[test]
fn promotion_reduces_singleton_refs_on_most_workloads() {
    let mut improved = 0;
    let mut total = 0;
    for w in all() {
        let l2 = compile(&w.sources, &CompileOptions::paper(PaperConfig::L2)).unwrap();
        let c = compile(&w.sources, &CompileOptions::paper(PaperConfig::C)).unwrap();
        let rl2 = run_program(&l2, &w.training_input).unwrap();
        let rc = run_program(&c, &w.training_input).unwrap();
        assert_eq!(rc.output, rl2.output, "{} output", w.name);
        total += 1;
        if rc.stats.singleton_refs() < rl2.stats.singleton_refs() {
            improved += 1;
        }
    }
    // Table 5 shows reductions on every benchmark; demand a solid
    // majority here to leave room for tiny training inputs.
    assert!(
        improved * 3 >= total * 2,
        "only {improved}/{total} workloads reduced singleton refs under C"
    );
}

#[test]
fn spill_motion_never_increases_singleton_refs_much() {
    // Config A moves save/restore code; it must never blow up memory
    // traffic (Table 5 column A is 0..14%).
    for w in all() {
        let l2 = compile(&w.sources, &CompileOptions::paper(PaperConfig::L2)).unwrap();
        let a = compile(&w.sources, &CompileOptions::paper(PaperConfig::A)).unwrap();
        let rl2 = run_program(&l2, &w.training_input).unwrap();
        let ra = run_program(&a, &w.training_input).unwrap();
        assert_eq!(ra.output, rl2.output, "{} output", w.name);
        assert!(
            ra.stats.singleton_refs()
                <= rl2.stats.singleton_refs() + rl2.stats.singleton_refs() / 20,
            "{}: A = {} vs L2 = {}",
            w.name,
            ra.stats.singleton_refs(),
            rl2.stats.singleton_refs()
        );
    }
}

#[test]
fn analyzer_statistics_are_sane() {
    for w in all() {
        let c = compile(&w.sources, &CompileOptions::paper(PaperConfig::C)).unwrap();
        let s = &c.stats;
        assert!(s.nodes > 0, "{}", w.name);
        assert!(s.webs_considered <= s.webs_total, "{}", w.name);
        assert!(s.webs_colored <= s.webs_considered, "{}", w.name);
        assert_eq!(
            s.webs_total,
            s.webs_considered + s.discarded_sparse + s.discarded_trivial + s.discarded_unprofitable,
            "{}: discard accounting",
            w.name
        );
        if s.clusters > 0 {
            assert!(s.avg_cluster_size >= 2.0, "{}: clusters have members", w.name);
        }
    }
}

#[test]
fn database_round_trips_through_json() {
    let w = ipra_workloads::protoc();
    let c = compile(&w.sources, &CompileOptions::paper(PaperConfig::C)).unwrap();
    let json = c.database.to_json();
    let back = ipra_core::ProgramDatabase::from_json(&json).unwrap();
    assert_eq!(c.database, back);
    let sjson = c.summary.to_json();
    let sback = ipra_summary::ProgramSummary::from_json(&sjson).unwrap();
    assert_eq!(c.summary, sback);
}
