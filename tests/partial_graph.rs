//! Partial call graphs (paper §7.2): the analyzer applied to a *library* —
//! a set of modules with no `main` — under the paper's assumptions:
//! incoming calls only reach the partial graph's start nodes, outgoing
//! calls return without re-entering it, and eligible globals are private to
//! the analyzed set.
//!
//! The separately-compiled application follows the standard linkage
//! convention (an empty database), yet links and runs correctly against the
//! interprocedurally-optimized library: cluster roots still save their
//! MSPILL sets (a superset of the standard callee-saves duty) and web
//! entries sit at the library's start nodes, so the convention boundary
//! holds.

use ipra_core::analyzer::{analyze, AnalyzerOptions};
use ipra_core::ProgramDatabase;
use ipra_driver::{frontend, SourceFile};
use ipra_summary::{summarize_module, ProgramSummary};
use vpr::program::link;
use vpr::sim::{run_with, SimOptions};

/// A "run-time library": a table module with private state, plus an API
/// module whose procedures are the partial graph's start nodes.
fn library_sources() -> Vec<SourceFile> {
    vec![
        SourceFile::new(
            "libtable",
            "static int slots[64];
             static int fill;
             static int probes;
             int tbl_reset() { fill = 0; probes = 0; for (int i = 0; i < 64; i = i + 1) { slots[i] = 0 - 1; } return 0; }
             int tbl_put(int key) {
                 int h = ((key % 64) + 64) % 64;
                 while (slots[h] >= 0 && slots[h] != key) {
                     probes = probes + 1;
                     h = (h + 1) % 64;
                 }
                 if (slots[h] != key) { slots[h] = key; fill = fill + 1; }
                 return h;
             }
             int tbl_has(int key) {
                 int h = ((key % 64) + 64) % 64;
                 while (slots[h] >= 0) {
                     probes = probes + 1;
                     if (slots[h] == key) { return 1; }
                     h = (h + 1) % 64;
                 }
                 return 0;
             }
             int tbl_stats() { return fill * 1000 + probes; }",
        ),
        SourceFile::new(
            "libapi",
            "extern int tbl_reset();
             extern int tbl_put(int);
             extern int tbl_has(int);
             extern int tbl_stats();
             int lib_init() { return tbl_reset(); }
             int lib_insert_range(int from, int to) {
                 int n = 0;
                 for (int k = from; k < to; k = k + 1) { tbl_put(k * 7); n = n + 1; }
                 return n;
             }
             int lib_count_hits(int from, int to) {
                 int hits = 0;
                 for (int k = from; k < to; k = k + 1) {
                     if (tbl_has(k)) { hits = hits + 1; }
                 }
                 return hits;
             }
             int lib_digest() { return tbl_stats(); }",
        ),
    ]
}

const APP: &str = "extern int lib_init();
extern int lib_insert_range(int, int);
extern int lib_count_hits(int, int);
extern int lib_digest();
int main() {
    lib_init();
    lib_insert_range(0, 40);
    out(lib_count_hits(0, 300));
    out(lib_digest());
    return 0;
}";

/// Analyzes the library alone (no `main` anywhere) and compiles it under
/// the resulting database.
fn compile_library(db_out: &mut ProgramDatabase) -> Vec<vpr::ObjectModule> {
    let sources = library_sources();
    let mut summary = ProgramSummary::default();
    let mut irs = Vec::new();
    for (m, info) in frontend(&sources).unwrap() {
        let mut ir = cmin_ir::lower_module(&m, &info);
        cmin_ir::optimize_module(&mut ir);
        summary.modules.push(summarize_module(&ir));
        irs.push(ir);
    }
    let analysis = analyze(&summary, &AnalyzerOptions::default());
    // The partial graph's start nodes are the API procedures; the analyzer
    // must have treated them as roots (no main needed).
    assert!(analysis.stats.nodes >= 8);
    assert!(
        analysis.stats.webs_total >= 1,
        "the library's private globals should form webs: {:?}",
        analysis.stats
    );
    // Any web entry must be a library procedure (nothing external).
    for w in &analysis.webs {
        for e in &w.entries {
            assert!(
                e.starts_with("lib") || e.starts_with("tbl"),
                "web entry {e} outside the library"
            );
        }
    }
    *db_out = analysis.database.clone();
    irs.iter().map(|ir| cmin_codegen::compile_module(ir, &analysis.database)).collect()
}

#[test]
fn library_optimized_alone_links_with_standard_app() {
    let mut db = ProgramDatabase::new();
    let mut modules = compile_library(&mut db);

    // The application is compiled with NO knowledge of the library's
    // directives — the standard convention.
    let (app, info) = &frontend(&[SourceFile::new("app", APP)]).unwrap()[0];
    let mut ir = cmin_ir::lower_module(app, info);
    cmin_ir::optimize_module(&mut ir);
    modules.push(cmin_codegen::compile_module(&ir, &ProgramDatabase::new()));

    let exe = link(&modules).unwrap();
    let optimized = run_with(&exe, &SimOptions::default()).unwrap();

    // Oracle: everything compiled at the plain baseline.
    let mut all_sources = library_sources();
    all_sources.push(SourceFile::new("app", APP));
    let baseline =
        ipra_driver::compile(&all_sources, &ipra_driver::CompileOptions::default()).unwrap();
    let expect = ipra_driver::run_program(&baseline, &[]).unwrap();

    assert_eq!(optimized.output, expect.output);
    assert_eq!(optimized.exit, expect.exit);
}

/// Paper §7.3: an indirect call site may reach *any* address-taken
/// procedure, so the call graph carries a conservative unresolved edge from
/// every indirect caller to every taken address. A promoted global must
/// never cross such an edge unprotected: if an unresolved edge lands on a
/// web member, either its source is itself a member (the repair loop pulled
/// it in, so the register view is established on *its* entry path) or the
/// target is a web entry (it reloads the global itself). Otherwise an
/// indirect call would reach code that trusts a register nobody loaded.
///
/// Checked three ways on generated function-pointer programs: on the
/// analysis result, independently on the decision trace (the observability
/// channel must tell the same story), and end-to-end by `ipra-verify` on
/// the compiled machine code.
#[test]
fn generated_indirect_calls_never_promote_across_unresolved_edges() {
    use ipra_core::callgraph::CallGraph;
    use ipra_core::trace::TraceEvent;
    use ipra_core::PaperConfig;
    use ipra_workloads::generator::{random_program_with, GenConfig};

    let cfg = GenConfig { global_fn_ptrs: true, funcs_per_module: 4, ..GenConfig::default() };
    let mut seeds_with_unresolved = 0;
    let mut webs_touching_taken = 0;
    for seed in 400..420u64 {
        let sources = random_program_with(seed, &cfg);
        let mut summary = ProgramSummary::default();
        for (m, info) in frontend(&sources).unwrap() {
            let mut ir = cmin_ir::lower_module(&m, &info);
            cmin_ir::optimize_module(&mut ir);
            summary.modules.push(summarize_module(&ir));
        }
        let graph = CallGraph::build(&summary, None);
        let unresolved: Vec<(String, String)> = graph
            .edges()
            .iter()
            .filter(|e| e.indirect)
            .map(|e| (graph.node(e.from).name.clone(), graph.node(e.to).name.clone()))
            .collect();
        if !unresolved.is_empty() {
            seeds_with_unresolved += 1;
        }

        let opts = ipra_core::analyzer::AnalyzerOptions::paper_config(PaperConfig::E, None);
        let (analysis, trace) = ipra_core::analyzer::analyze_traced(&summary, &opts);
        let assert_web = |sym: &str, nodes: &[String], entries: &[String]| {
            let mut touches = false;
            for (from, to) in &unresolved {
                if nodes.contains(to) {
                    touches = true;
                    assert!(
                        nodes.contains(from) || entries.contains(to),
                        "seed {seed}: web {sym} is promoted across the unresolved edge \
                         {from} -> {to} ({to} is a non-entry member, {from} is outside)"
                    );
                }
            }
            touches
        };
        for w in &analysis.webs {
            if assert_web(&w.sym, &w.nodes, &w.entries) {
                webs_touching_taken += 1;
            }
        }
        // The decision trace must independently support the same audit.
        for ev in &trace.events {
            if let TraceEvent::WebFormed { sym, nodes, entries, .. }
            | TraceEvent::WebColored { sym, nodes, entries, .. } = ev
            {
                assert_web(sym, nodes, entries);
            }
        }

        let program =
            ipra_driver::compile(&sources, &ipra_driver::CompileOptions::paper(PaperConfig::E))
                .unwrap();
        let report = ipra_driver::verify_program(&program);
        assert!(report.is_clean(), "seed {seed} failed verification:\n{report}");
    }
    // The run must actually have exercised the interesting shapes, or the
    // assertions above are vacuous.
    assert!(seeds_with_unresolved >= 10, "only {seeds_with_unresolved}/20 seeds had fn-ptr edges");
    assert!(webs_touching_taken >= 10, "only {webs_touching_taken} webs touched a taken address");
}

/// Paper §7.2 meets the artifact layer: the interprocedurally-optimized
/// library ships as a `.vlib` whose members carry both object code and
/// summaries; the application pulls members by archive selection. One
/// member calls an external procedure (`ghost`) defined *nowhere* — the
/// partial-graph assumption "outgoing calls return without re-entering
/// the graph" in its sharpest form. The contract:
///
/// * the analyzer must not promote a global web across the unresolved
///   edge (no web may claim `ghost`, and the members still verify
///   cleanly against the library database);
/// * linking fails by default with a diagnostic naming both the missing
///   procedure and its caller;
/// * linking under [`LinkOptions::allow_undefined_functions`] succeeds
///   with a trap stub, and as long as the `ghost` path stays cold the
///   program behaves exactly like a baseline in which `ghost` exists.
#[test]
fn vlib_with_unresolved_external_callee_links_and_runs() {
    use ipra_artifact::{ArtifactKind, LibraryArtifact, LibraryMember};
    use ipra_core::analyzer::AnalyzerOptions;
    use ipra_core::PaperConfig;
    use vpr::{link_with, LinkOptions};

    let mut lib_sources = library_sources();
    lib_sources.push(SourceFile::new(
        "libesc",
        "extern int ghost(int);
         extern int tbl_put(int);
         int lib_escape(int k) {
             if (k) { tbl_put(ghost(k)); return 1; }
             return 0;
         }",
    ));

    // Analyze the library alone as a partial graph, under the richest
    // configuration (E: promotion webs on), and compile its members.
    let mut summary = ProgramSummary::default();
    let mut irs = Vec::new();
    for (m, info) in frontend(&lib_sources).unwrap() {
        let mut ir = cmin_ir::lower_module(&m, &info);
        cmin_ir::optimize_module(&mut ir);
        summary.modules.push(summarize_module(&ir));
        irs.push(ir);
    }
    let analysis = analyze(&summary, &AnalyzerOptions::paper_config(PaperConfig::E, None));
    for w in &analysis.webs {
        assert!(
            !w.nodes.contains(&"ghost".to_string()),
            "web {} promoted across the unresolved edge into ghost",
            w.sym
        );
    }
    let objects: Vec<vpr::ObjectModule> =
        irs.iter().map(|ir| cmin_codegen::compile_module(ir, &analysis.database)).collect();
    // The whole-program verifier is entitled to flag the unresolved
    // external itself; everything else — register discipline included —
    // must be clean.
    let report = ipra_verify::verify_modules(&objects, &analysis.database);
    for d in &report.diagnostics {
        assert!(
            d.detail.contains("ghost"),
            "library members failed verification beyond the expected unresolved external:\n{report}"
        );
    }

    // Package as a .vlib and round-trip it through the wire format — the
    // linker below consumes what a file consumer would see.
    let library = LibraryArtifact {
        members: objects
            .iter()
            .zip(&summary.modules)
            .map(|(o, s)| LibraryMember { object: o.clone(), summary: s.clone() })
            .collect(),
    };
    let text = ipra_artifact::encode(ArtifactKind::Library, &library);
    let library: LibraryArtifact = ipra_artifact::decode(ArtifactKind::Library, &text).unwrap();

    // The application: standard convention (empty database), calls into
    // the library including the ghost-adjacent entry point.
    let app_src = "extern int lib_init();
        extern int lib_insert_range(int, int);
        extern int lib_count_hits(int, int);
        extern int lib_digest();
        extern int lib_escape(int);
        int main() {
            lib_init();
            lib_insert_range(0, 40);
            out(lib_count_hits(0, 300));
            out(lib_escape(in()));
            out(lib_digest());
            return 0;
        }";
    let (app, info) = &frontend(&[SourceFile::new("app", app_src)]).unwrap()[0];
    let mut ir = cmin_ir::lower_module(app, info);
    cmin_ir::optimize_module(&mut ir);
    let root = cmin_codegen::compile_module(&ir, &ProgramDatabase::new());

    // Archive selection must pull every member (the app needs libapi and
    // libesc; libapi and libesc need libtable), to fixpoint.
    let selected = library.select(std::slice::from_ref(&root));
    assert_eq!(selected.len(), library.members.len(), "selection must reach fixpoint");
    let mut modules = vec![root];
    modules.extend(selected.iter().map(|&i| library.members[i].object.clone()));

    // Default linking refuses: the diagnostic names the missing procedure
    // and the member that needs it.
    let err = vpr::program::link(&modules).unwrap_err().to_string();
    assert!(err.contains("ghost"), "diagnostic must name the missing procedure: {err}");
    assert!(err.contains("lib_escape"), "diagnostic must name the caller: {err}");

    // With the escape hatch, the link succeeds and the cold ghost path is
    // behaviorally invisible: same output as a baseline where ghost is a
    // real (never-called) procedure.
    let exe = link_with(&modules, &LinkOptions { allow_undefined_functions: true }).unwrap();
    let got = run_with(&exe, &SimOptions { input: vec![0], ..SimOptions::default() }).unwrap();

    let mut baseline_sources = lib_sources.clone();
    baseline_sources.push(SourceFile::new("app", app_src));
    baseline_sources.push(SourceFile::new("ghostmod", "int ghost(int x) { return x; }"));
    let baseline =
        ipra_driver::compile(&baseline_sources, &ipra_driver::CompileOptions::default()).unwrap();
    let expect = ipra_driver::run_program(&baseline, &[0]).unwrap();
    assert_eq!(got.output, expect.output);
    assert_eq!(got.exit, expect.exit);

    // The warm ghost path hits the trap stub, symbolized by name.
    let trap = run_with(&exe, &SimOptions { input: vec![1], ..SimOptions::default() })
        .unwrap_err()
        .to_string();
    assert!(trap.contains("ghost"), "the trap must be attributed to the stub: {trap}");
}

#[test]
fn library_database_has_no_entry_for_external_callers() {
    let mut db = ProgramDatabase::new();
    compile_library(&mut db);
    assert!(db.get("main").is_none());
    assert!(db.get("lib_insert_range").is_some());
    // Statics got module-qualified names in the database world.
    assert!(db.get("libtable$tbl_reset").is_none(), "tbl_* are not static here");
    assert!(db.get("tbl_put").is_some());
}
