//! The on-disk build cache (`--cache-dir`) as a falsifiable contract.
//!
//! The in-memory [`CompilationCache`] already makes one *process*
//! incremental; the disk tier makes the *build tree* incremental. The
//! property under test mirrors the paper's §3 recompilation story across
//! process boundaries: a fresh cache instance opened on the same
//! directory — exactly what a second `cminc` invocation does — must skip
//! every phase whose inputs did not move, recompile exactly the modules
//! whose directive slices changed, and still produce executables
//! bit-identical to cold builds. The accounting (`disk_hits`) must prove
//! the skipped work was really served from disk, not silently redone.

use ipra_core::PaperConfig;
use ipra_driver::{compile_incremental, CompilationCache, CompileOptions};
use ipra_workloads::scaled::{perturb, scaled_program};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ipra-pcache-{tag}-{}", std::process::id()))
}

/// One edit of twenty modules, across two *separate* cache instances
/// sharing one directory (the two-process scenario): the second build's
/// front end re-runs only for the edited module, every other probe is a
/// disk hit, and exactly the edited module is recompiled.
#[test]
fn one_edit_of_twenty_across_cache_instances_recompiles_only_the_slice() {
    let dir = tmpdir("edit20");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = CompileOptions::paper(PaperConfig::C);

    // "Process" 1: cold build, populates the disk tier.
    let mut sources = scaled_program(20);
    let mut cache1 = CompilationCache::with_disk(&dir).unwrap();
    let cold = compile_incremental(&sources, &opts, &mut cache1).unwrap();
    assert_eq!(cold.build.phase1.misses, 20);
    assert_eq!(cold.build.phase1.disk_hits, 0, "an empty cache dir has nothing to serve");
    assert_eq!(cold.build.recompiled.len(), 20);
    drop(cache1);

    // "Process" 2: fresh cache instance, same directory, one edited module.
    perturb(&mut sources, 10, 7);
    let mut cache2 = CompilationCache::with_disk(&dir).unwrap();
    let edited = compile_incremental(&sources, &opts, &mut cache2).unwrap();
    assert_eq!(edited.build.phase1.hits, 19, "only s10's source changed");
    assert_eq!(
        edited.build.phase1.disk_hits, 19,
        "a fresh instance has an empty memory tier: every hit must come from disk"
    );
    assert_eq!(edited.build.phase1.misses, 1);
    assert_eq!(
        edited.build.recompiled,
        vec!["s10".to_string()],
        "only the module whose directive slice moved may be recompiled"
    );
    assert_eq!(edited.build.phase2.hits, 19);
    assert_eq!(edited.build.phase2.disk_hits, 19);

    // The disk tier is an invisible optimization: bit-identity with a
    // fresh, cache-less build of the same sources.
    let fresh = compile_incremental(&sources, &opts, &mut CompilationCache::new()).unwrap();
    assert_eq!(edited.exe, fresh.exe, "disk-cached build must match a fresh build bit-for-bit");
    assert_ne!(edited.exe, cold.exe, "the edit is observable in the machine code");

    // "Process" 3: nothing changed — the whole build is served from disk.
    let mut cache3 = CompilationCache::with_disk(&dir).unwrap();
    let warm = compile_incremental(&sources, &opts, &mut cache3).unwrap();
    assert_eq!(warm.build.phase1.disk_hits, 20);
    assert_eq!(warm.build.phase2.disk_hits, 20);
    assert!(warm.build.recompiled.is_empty());
    assert_eq!(warm.exe, edited.exe);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The disk tier composes with every paper configuration sharing one
/// directory: per-config phase-2 entries are keyed by the directive-slice
/// fingerprint, so a second round over all seven configurations is pure
/// disk hits — and bit-identical to the first.
#[test]
fn all_configs_share_one_cache_dir_without_cross_talk() {
    let dir = tmpdir("configs");
    let _ = std::fs::remove_dir_all(&dir);
    let sources = scaled_program(6);

    let mut first = Vec::new();
    let mut cache = CompilationCache::with_disk(&dir).unwrap();
    for config in [PaperConfig::L2, PaperConfig::A, PaperConfig::C, PaperConfig::E] {
        let p = compile_incremental(&sources, &CompileOptions::paper(config), &mut cache).unwrap();
        first.push(p);
    }
    drop(cache);

    let mut cache = CompilationCache::with_disk(&dir).unwrap();
    for (i, config) in
        [PaperConfig::L2, PaperConfig::A, PaperConfig::C, PaperConfig::E].into_iter().enumerate()
    {
        let p = compile_incremental(&sources, &CompileOptions::paper(config), &mut cache).unwrap();
        assert_eq!(p.exe, first[i].exe, "{config}: second-round build must be bit-identical");
        assert_eq!(p.build.phase1.misses, 0, "{config}: phase 1 fully cached");
        assert_eq!(p.build.phase2.misses, 0, "{config}: phase 2 fully cached");
        assert!(p.build.recompiled.is_empty(), "{config}");
        if i == 0 {
            // The very first probe of the fresh instance proves the disk
            // tier is doing the serving (later configs may hit memory).
            assert!(p.build.phase1.disk_hits > 0, "first build must be served from disk");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
