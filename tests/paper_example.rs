//! Reproduction of the paper's worked example (§4.1.4): the Figure 3 call
//! graph with globals g1–g3, the Table 1 reference sets, and the Table 2
//! webs and two-register coloring — driven through the public analyzer
//! API from hand-written summary files.

use ipra_core::analyzer::{analyze, AnalyzerOptions, PromotionMode};
use ipra_core::ProgramDatabase;
use ipra_summary::{CallRef, GlobalFact, GlobalRef, ModuleSummary, ProcSummary, ProgramSummary};

/// Builds the Figure 3 program: A→{B,C}, B→{D,E}, C→{F,G}, G→H, with
/// L_REF(A)={g3}, L_REF(B)={g1,g3}, L_REF(C)={g2,g3}, L_REF(D)={g1},
/// L_REF(E)={g1,g2}, L_REF(F)={g2}, L_REF(G)={g2}, L_REF(H)=∅.
fn figure3_summary() -> ProgramSummary {
    let proc = |name: &str, calls: &[&str], refs: &[&str]| ProcSummary {
        name: name.into(),
        module: "fig3".into(),
        global_refs: refs
            .iter()
            .map(|g| GlobalRef {
                sym: g.to_string(),
                freq: 10,
                written: true,
                ptr_mod: false,
                ptr_ref: false,
                escapes: false,
            })
            .collect(),
        calls: calls.iter().map(|c| CallRef { callee: c.to_string(), freq: 1 }).collect(),
        taken_addresses: vec![],
        makes_indirect_calls: false,
        callee_saves_estimate: 2,
        caller_saves_estimate: 2,
        alias: Default::default(),
    };
    let global = |sym: &str| GlobalFact {
        sym: sym.into(),
        size: 1,
        is_array: false,
        is_static: false,
        module: "fig3".into(),
        init: vec![],
    };
    ProgramSummary {
        modules: vec![ModuleSummary {
            module: "fig3".into(),
            procs: vec![
                proc("A", &["B", "C"], &["g3"]),
                proc("B", &["D", "E"], &["g1", "g3"]),
                proc("C", &["F", "G"], &["g2", "g3"]),
                proc("D", &[], &["g1"]),
                proc("E", &[], &["g1", "g2"]),
                proc("F", &[], &["g2"]),
                proc("G", &["H"], &["g2"]),
                proc("H", &[], &[]),
            ],
            globals: vec![global("g1"), global("g2"), global("g3")],
        }],
    }
}

fn web_of<'a>(db: &'a ProgramDatabase, node: &str, sym: &str) -> &'a ipra_core::Promotion {
    db.get(node)
        .unwrap_or_else(|| panic!("no directives for {node}"))
        .promotions
        .iter()
        .find(|p| p.sym == sym)
        .unwrap_or_else(|| panic!("{node} does not promote {sym}"))
}

#[test]
fn table2_webs_and_two_register_coloring() {
    let opts = AnalyzerOptions {
        promotion: PromotionMode::Coloring { registers: 2 },
        spill_motion: false,
        ..AnalyzerOptions::default()
    };
    let analysis = analyze(&figure3_summary(), &opts);
    let stats = &analysis.stats;
    assert_eq!(stats.eligible_globals, 3);
    assert_eq!(stats.webs_total, 4, "Table 2 lists four webs");
    assert_eq!(stats.webs_colored, 4, "all four webs color with two registers");

    let db = &analysis.database;

    // Web 1: g3 over {A, B, C}, entry A.
    let a_g3 = web_of(db, "A", "g3");
    assert!(a_g3.is_entry);
    assert!(!web_of(db, "B", "g3").is_entry);
    assert!(!web_of(db, "C", "g3").is_entry);
    assert!(db.get("D").unwrap().promotions.iter().all(|p| p.sym != "g3"));

    // Web 2: g2 over {C, F, G}, entry C.
    let c_g2 = web_of(db, "C", "g2");
    assert!(c_g2.is_entry);
    assert!(!web_of(db, "F", "g2").is_entry);
    assert!(!web_of(db, "G", "g2").is_entry);

    // Web 3: g1 over {B, D, E}, entry B.
    let b_g1 = web_of(db, "B", "g1");
    assert!(b_g1.is_entry);
    assert!(!web_of(db, "D", "g1").is_entry);
    assert!(!web_of(db, "E", "g1").is_entry);

    // Web 4: g2 over {E} alone, entry E.
    let e_g2 = web_of(db, "E", "g2");
    assert!(e_g2.is_entry);

    // Interference constraints of Table 2: webs 1–2 (share C), 1–3 (share
    // B), 3–4 (share E) use distinct registers; independent webs may share.
    assert_ne!(a_g3.reg, c_g2.reg, "webs 1 and 2 interfere");
    assert_ne!(a_g3.reg, b_g1.reg, "webs 1 and 3 interfere");
    assert_ne!(b_g1.reg, e_g2.reg, "webs 3 and 4 interfere");
    // Exactly two registers in play, shared across non-interfering webs,
    // including two different registers for the two g2 webs.
    let regs: std::collections::HashSet<_> =
        [a_g3.reg, c_g2.reg, b_g1.reg, e_g2.reg].into_iter().collect();
    assert_eq!(regs.len(), 2, "Table 2 colors all four webs with two registers");
    assert_ne!(c_g2.reg, e_g2.reg, "the same variable uses different registers in its two webs");

    // H gets no promotions (references nothing).
    assert!(db.get("H").unwrap().promotions.is_empty());
}

#[test]
fn entry_nodes_insert_load_and_store() {
    let opts = AnalyzerOptions {
        promotion: PromotionMode::Coloring { registers: 2 },
        spill_motion: false,
        ..AnalyzerOptions::default()
    };
    let analysis = analyze(&figure3_summary(), &opts);
    // B is the entry of g1's web: it loads at entry and (since the web
    // writes g1) stores at exit.
    let b_g1 = web_of(&analysis.database, "B", "g1");
    assert!(b_g1.is_entry && b_g1.store_at_exit);
    // Non-entry members never store at exit.
    let d_g1 = web_of(&analysis.database, "D", "g1");
    assert!(!d_g1.is_entry && !d_g1.store_at_exit);
}

/// Golden test for the explain query on the paper's worked example: the
/// exact causal chain the analyzer reports for web 3 (g1 over {B, D, E})
/// and for procedure B, byte for byte.
#[test]
fn explain_renders_the_figure3_decision_chain_exactly() {
    let opts = AnalyzerOptions {
        promotion: PromotionMode::Coloring { registers: 2 },
        spill_motion: false,
        ..AnalyzerOptions::default()
    };
    let (analysis, trace) = ipra_core::analyzer::analyze_traced(&figure3_summary(), &opts);
    // The trace observes without perturbing: same analysis as the untraced run.
    assert_eq!(analysis.database, analyze(&figure3_summary(), &opts).database);

    assert_eq!(
        ipra_obsv::explain(&trace, "g1"),
        "analyzer decisions mentioning `g1` (2 of 8 events):\n  \
         - web #0: formed for global `g1` over {B, D, E} (entries {B}), written; \
         benefit 50, entry cost 4\n  \
         - web #0: global `g1` promoted to s0 across {B, D, E} (loaded at entries {B}); \
         priority 46\n"
    );
    assert_eq!(
        ipra_obsv::explain(&trace, "B"),
        "analyzer decisions mentioning `B` (4 of 8 events):\n  \
         - web #0: formed for global `g1` over {B, D, E} (entries {B}), written; \
         benefit 50, entry cost 4\n  \
         - web #0: global `g1` promoted to s0 across {B, D, E} (loaded at entries {B}); \
         priority 46\n  \
         - web #3: formed for global `g3` over {A, B, C} (entries {A}), written; \
         benefit 30, entry cost 4\n  \
         - web #3: global `g3` promoted to s1 across {A, B, C} (loaded at entries {A}); \
         priority 26\n"
    );
    assert_eq!(ipra_obsv::explain(&trace, "zzz"), "no analyzer decisions mention `zzz`\n");
}
