//! Deep differential soak: hundreds of random programs across every
//! configuration. Ignored by default (minutes of work); run explicitly:
//!
//! ```sh
//! cargo test --release --test soak -- --ignored
//! ```

use ipra_core::PaperConfig;
use ipra_driver::{compile, interpret_sources, run_program, CompileOptions};
use ipra_workloads::generator::{random_program_with, GenConfig};

#[test]
#[ignore = "long-running soak; run with --ignored"]
fn five_hundred_seeds_across_all_configs() {
    let cfg = GenConfig {
        modules: 3,
        funcs_per_module: 5,
        globals_per_module: 6,
        ..GenConfig::default()
    };
    for seed in 0..500u64 {
        let sources = random_program_with(seed.wrapping_mul(2654435761), &cfg);
        let oracle = interpret_sources(&sources, &[]).unwrap().unwrap();
        for config in PaperConfig::ALL {
            let program = if config.wants_profile() {
                ipra_driver::compile_with_profile(&sources, config, &[]).unwrap().unwrap()
            } else {
                compile(&sources, &CompileOptions::paper(config)).unwrap()
            };
            let r = run_program(&program, &[]).unwrap();
            assert_eq!(r.output, oracle.output, "seed {seed} config {config}");
            assert_eq!(r.exit, oracle.exit, "seed {seed} config {config}");
        }
    }
}
