//! Differential testing: random multi-module programs must behave
//! identically under the reference interpreter and under compiled code at
//! every analyzer configuration.
//!
//! This is the repository's strongest correctness instrument: the
//! interpreter shares no code with the lowering, optimizer, analyzer, code
//! generator, linker or simulator, so any divergence pinpoints a
//! miscompile. (It caught a real one during development: promoted-global
//! copy propagation across calls.)
//!
//! Every compiled configuration additionally runs through `ipra-verify`,
//! which checks the machine code against the analyzer's own directives —
//! catching discipline violations that happen not to change this input's
//! observable behavior.

use ipra_core::PaperConfig;
use ipra_driver::{compile, compile_with_profile, interpret_sources, run_program, CompileOptions};
// One shared divergence-dump implementation, used here, by the fuzzer, and
// by its reducer — one format for every debugging session.
use ipra_fuzz::oracle::dump_divergence;
use ipra_workloads::generator::{random_program, random_program_with, GenConfig};

fn check_seed(sources: &[ipra_driver::SourceFile], label: &str) {
    let oracle = interpret_sources(sources, &[])
        .unwrap_or_else(|e| panic!("{label}: frontend error {e}"))
        .unwrap_or_else(|e| panic!("{label}: interpreter trap {e}"));
    for config in PaperConfig::ALL {
        let program = if config.wants_profile() {
            compile_with_profile(sources, config, &[])
                .unwrap_or_else(|e| panic!("{label}/{config}: compile error {e}"))
                .unwrap_or_else(|e| panic!("{label}/{config}: training trap {e}"))
        } else {
            compile(sources, &CompileOptions::paper(config))
                .unwrap_or_else(|e| panic!("{label}/{config}: compile error {e}"))
        };
        let report = ipra_driver::verify_program(&program);
        assert!(report.is_clean(), "{label}/{config} failed verification:\n{report}");
        let r = run_program(&program, &[])
            .unwrap_or_else(|e| panic!("{label}/{config}: simulator trap {e}"));
        if r.output != oracle.output || r.exit != oracle.exit {
            let dir = dump_divergence(sources, config, label);
            let text: String =
                sources.iter().map(|s| format!("// --- {} ---\n{}", s.name, s.text)).collect();
            panic!(
                "{label}/{config} diverged\n oracle: exit {} out {:?}\n sim:    exit {} out {:?}\n\
                 trace + attribution dump: {}\n{text}",
                oracle.exit,
                oracle.output,
                r.exit,
                r.output,
                dir.display()
            );
        }
    }
}

#[test]
fn random_programs_agree_across_all_configs() {
    for seed in 0..25 {
        let sources = random_program(seed);
        check_seed(&sources, &format!("seed {seed}"));
    }
}

#[test]
fn random_programs_agree_with_caller_preallocation() {
    use ipra_core::analyzer::AnalyzerOptions;
    for seed in 300..318 {
        let sources = random_program(seed);
        let oracle = interpret_sources(&sources, &[]).unwrap().unwrap();
        let opts = AnalyzerOptions { caller_preallocation: true, ..AnalyzerOptions::default() };
        let program =
            compile(&sources, &CompileOptions { analyzer: Some(opts), ..Default::default() })
                .unwrap();
        let r = run_program(&program, &[]).unwrap();
        assert_eq!(r.output, oracle.output, "seed {seed} with caller preallocation");
        assert_eq!(r.exit, oracle.exit, "seed {seed} exit");
    }
}

#[test]
fn random_three_module_programs_agree() {
    let cfg = GenConfig { modules: 3, funcs_per_module: 3, ..GenConfig::default() };
    for seed in 100..112 {
        let sources = random_program_with(seed, &cfg);
        check_seed(&sources, &format!("3mod seed {seed}"));
    }
}

#[test]
fn random_global_heavy_programs_agree() {
    let cfg = GenConfig { globals_per_module: 8, funcs_per_module: 5, ..GenConfig::default() };
    for seed in 200..210 {
        let sources = random_program_with(seed, &cfg);
        check_seed(&sources, &format!("heavy seed {seed}"));
    }
}
