//! Telemetry suite: the pipeline collector and the simulator profiler are
//! *pure observation*.
//!
//! Three invariants, matching `docs/telemetry.md`:
//!
//! * attaching a collector never changes what a build produces — the
//!   linked executable and the analyzer database are bit-identical with
//!   telemetry on or off, under every paper configuration;
//! * counter profiles are identical between the fast and reference
//!   engines on every workload (the profiler records raw per-pc counts in
//!   both engines; every derived view totals to the run's cycle count);
//! * the exported metrics JSON is byte-deterministic: `--jobs 1` and
//!   `--jobs 4` builds of the same program produce identical bytes, and
//!   every exported trace is well-formed (every `B` has a matching `E`,
//!   nesting balanced per lane, pids/tids present).

use ipra_core::PaperConfig;
use ipra_driver::{compile_configured, CompilationCache, CompileOptions};
use ipra_telemetry::Telemetry;
use serde::Value;
use std::collections::HashMap;
use vpr::{Engine, SimOptions};

/// Asserts Chrome-trace shape: a `traceEvents` array whose events carry
/// name/cat/ph/ts/pid/tid, with `pid` always 1 and, per lane, `B`/`E`
/// events forming a balanced, properly nested sequence.
fn assert_trace_well_formed(json: &str, label: &str) {
    let v: Value = serde_json::from_str(json).unwrap_or_else(|e| panic!("{label}: bad JSON: {e}"));
    let Some(Value::Array(events)) = v.get("traceEvents") else {
        panic!("{label}: no traceEvents array");
    };
    assert!(!events.is_empty(), "{label}: empty trace");
    let int = |v: &Value, key: &str| -> i64 {
        match v.get(key) {
            Some(Value::Int(n)) => *n,
            Some(Value::UInt(n)) => *n as i64,
            other => panic!("{label}: event field {key} missing or non-integer: {other:?}"),
        }
    };
    let text = |v: &Value, key: &str| -> String {
        match v.get(key) {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("{label}: event field {key} missing or non-string: {other:?}"),
        }
    };
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    for e in events {
        assert_eq!(int(e, "pid"), 1, "{label}: pid is always 1");
        let lane = int(e, "tid");
        let name = text(e, "name");
        let _ = text(e, "cat");
        let _ = int(e, "ts");
        let stack = stacks.entry(lane).or_default();
        match text(e, "ph").as_str() {
            "B" => stack.push(name),
            "E" => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("{label}: E event for `{name}` on lane {lane} with no open span")
                });
                assert_eq!(open, name, "{label}: spans not properly nested on lane {lane}");
            }
            other => panic!("{label}: unexpected phase `{other}`"),
        }
    }
    for (lane, stack) in &stacks {
        assert!(stack.is_empty(), "{label}: unfinished spans on lane {lane}: {stack:?}");
    }
}

fn build(
    sources: &[ipra_driver::SourceFile],
    config: PaperConfig,
    training: &[i64],
    opts: &CompileOptions,
) -> ipra_driver::CompiledProgram {
    compile_configured(sources, config, training, opts, &mut CompilationCache::new())
        .unwrap_or_else(|e| panic!("{config}: compile error {e}"))
        .unwrap_or_else(|e| panic!("{config}: training trap {e}"))
}

#[test]
fn telemetry_never_perturbs_builds_under_any_config() {
    let w = ipra_workloads::by_name("dhrystone").expect("dhrystone workload");
    for config in PaperConfig::ALL_WITH_ALIAS {
        let plain = build(&w.sources, config, &w.training_input, &CompileOptions::default());
        let tele = Telemetry::new();
        let opts = CompileOptions { telemetry: Some(tele.clone()), ..CompileOptions::default() };
        let observed = build(&w.sources, config, &w.training_input, &opts);
        assert_eq!(observed.exe, plain.exe, "{config}: telemetry changed the executable");
        assert_eq!(
            serde_json::to_string(&observed.database).expect("serialize"),
            serde_json::to_string(&plain.database).expect("serialize"),
            "{config}: telemetry changed the analyzer database"
        );
        assert!(tele.event_count() > 0, "{config}: no spans recorded");
        // Profile-fed configs build twice: the training baseline, then the
        // profile-directed build.
        let expected_builds = if config.wants_profile() { 2 } else { 1 };
        assert_eq!(tele.counter("build.builds"), expected_builds, "{config}: build counter");
        assert_trace_well_formed(&tele.chrome_trace_json(), &format!("{config}"));
        // Profile-fed configs must account for their training run.
        if config.wants_profile() {
            assert_eq!(tele.counter("sim.training.runs"), 1, "{config}: training counter");
            assert!(tele.counter("sim.training.cycles") > 0, "{config}: training cycles");
        }
    }
}

#[test]
fn counter_profiles_identical_across_engines_on_every_workload() {
    for w in ipra_workloads::all() {
        let program =
            build(&w.sources, PaperConfig::C, &w.training_input, &CompileOptions::default());
        let mut runs = Vec::new();
        for engine in [Engine::Fast, Engine::Reference] {
            let opts = SimOptions {
                input: w.input.clone(),
                profile: true,
                engine,
                ..SimOptions::default()
            };
            runs.push(
                vpr::run_with(&program.exe, &opts)
                    .unwrap_or_else(|e| panic!("{}: trap {e}", w.name)),
            );
        }
        let (fast, reference) = (&runs[0], &runs[1]);
        assert_eq!(fast, reference, "{}: engines diverged with profiling on", w.name);
        let fp = fast.profile.as_ref().expect("profiling was requested");
        let rp = reference.profile.as_ref().expect("profiling was requested");
        assert_eq!(fp, rp, "{}: raw pc counts differ", w.name);
        assert_eq!(
            fp.sim_counters(&program.exe, &fast.stats),
            rp.sim_counters(&program.exe, &reference.stats),
            "{}: derived counters differ",
            w.name
        );
        // Every derived view totals to the run's cycles, exactly.
        assert_eq!(fp.total(), fast.stats.cycles, "{}: profile total", w.name);
        let hist = fp.opcode_histogram(&program.exe);
        assert_eq!(hist.values().sum::<u64>(), fast.stats.cycles, "{}: histogram total", w.name);
        let blocks = fp.block_counts(&program.exe);
        assert_eq!(
            blocks.iter().map(|b| b.cycles).sum::<u64>(),
            fast.stats.cycles,
            "{}: block total",
            w.name
        );
        let procs = fp.proc_table(&program.exe);
        assert_eq!(
            procs.iter().map(|r| r.self_cycles).sum::<u64>(),
            fast.stats.cycles,
            "{}: proc total",
            w.name
        );
    }
}

#[test]
fn metrics_json_is_byte_identical_across_jobs_widths() {
    let sources = ipra_workloads::scaled::scaled_program(8);
    let mut exports = Vec::new();
    for jobs in [1, 4] {
        let tele = Telemetry::new();
        let opts =
            CompileOptions { jobs, telemetry: Some(tele.clone()), ..CompileOptions::default() };
        let program = build(&sources, PaperConfig::C, &[], &opts);
        assert_trace_well_formed(&tele.chrome_trace_json(), &format!("jobs={jobs}"));
        exports.push((tele.metrics_json(), program.exe));
    }
    assert_eq!(exports[0].1, exports[1].1, "jobs width changed the executable");
    assert_eq!(exports[0].0, exports[1].0, "metrics JSON not byte-identical across jobs widths");
    assert!(exports[0].0.contains("\"phase1.misses\": 8"), "expected per-module counters");
}

#[test]
fn trace_spans_cover_the_pipeline_and_workers_get_lanes() {
    let sources = ipra_workloads::scaled::scaled_program(8);
    let tele = Telemetry::new();
    let opts =
        CompileOptions { jobs: 4, telemetry: Some(tele.clone()), ..CompileOptions::default() };
    build(&sources, PaperConfig::C, &[], &opts);
    let json = tele.chrome_trace_json();
    for span in ["\"build\"", "\"phase1\"", "\"analyze\"", "\"phase2\"", "\"link\""] {
        assert!(json.contains(span), "trace missing the {span} span");
    }
    // Per-module tasks are tagged with worker lanes: with 4 workers over 8
    // modules at least one task landed off lane 0... and with the work
    // pulled from a shared index, lane 1 always takes at least one item.
    assert!(json.contains("\"tid\": 1"), "no span recorded on a worker lane");
    assert!(json.contains("phase1:s0"), "no per-module phase-1 span");
    assert!(json.contains("phase2:s0"), "no per-module phase-2 span");
}
