//! Cache-correctness tests for the parallel, incremental driver.
//!
//! The contract under test: a [`CompilationCache`] is an *invisible*
//! optimization. Whatever mix of cold, warm, edited, serial, or parallel
//! builds produced an executable, it must be bit-identical to a fresh
//! serial compile of the same sources — across every paper configuration —
//! and the cache accounting must prove the skipped work was really skipped.

use ipra_core::PaperConfig;
use ipra_driver::{
    compile_incremental, compile_with_profile_cached, run_program, verify_program,
    CompilationCache, CompileOptions,
};
use ipra_workloads::scaled::{perturb, scaled_program};

/// Editing one module of twenty re-runs the first phase for that module
/// alone, and — because the edit is summary-invariant — the second phase
/// for that module alone, while still producing exactly the executable a
/// fresh build produces.
#[test]
fn one_edit_of_twenty_recompiles_only_the_changed_slice() {
    let mut sources = scaled_program(20);
    let opts = CompileOptions::paper(PaperConfig::C);
    let mut cache = CompilationCache::new();
    let cold = compile_incremental(&sources, &opts, &mut cache).unwrap();
    assert_eq!(cold.build.phase1.misses, 20);
    assert_eq!(cold.build.recompiled.len(), 20);

    perturb(&mut sources, 10, 7);
    let edited = compile_incremental(&sources, &opts, &mut cache).unwrap();
    assert_eq!(edited.build.phase1.hits, 19, "only s10's source changed");
    assert_eq!(edited.build.phase1.misses, 1);
    assert_eq!(
        edited.build.recompiled,
        vec!["s10".to_string()],
        "a summary-invariant edit must re-run codegen for the edited module alone"
    );
    assert_eq!(edited.build.phase2.hits, 19);

    let fresh = compile_incremental(&sources, &opts, &mut CompilationCache::new()).unwrap();
    assert_eq!(edited.exe, fresh.exe, "incremental build must match a fresh build bit-for-bit");
    assert_ne!(edited.exe, cold.exe, "the edit is observable in the machine code");
}

/// A warm rebuild is bit-identical to the cold build under every paper
/// configuration: same executable, clean verification, and identical
/// simulator behavior down to the instruction counts.
#[test]
fn warm_rebuild_is_bit_identical_across_all_configs() {
    let sources = scaled_program(8);
    for config in PaperConfig::ALL {
        let mut cache = CompilationCache::new();
        let (cold, warm) = if config.wants_profile() {
            let cold = compile_with_profile_cached(&sources, config, &[], 1, &mut cache)
                .unwrap_or_else(|e| panic!("{config}: {e}"))
                .unwrap_or_else(|e| panic!("{config}: training trap {e}"));
            let warm =
                compile_with_profile_cached(&sources, config, &[], 1, &mut cache).unwrap().unwrap();
            (cold, warm)
        } else {
            let opts = CompileOptions::paper(config);
            let cold = compile_incremental(&sources, &opts, &mut cache)
                .unwrap_or_else(|e| panic!("{config}: {e}"));
            let warm = compile_incremental(&sources, &opts, &mut cache).unwrap();
            assert_eq!(warm.build.phase1.hits, 8, "{config}: warm phase 1 must be all hits");
            assert_eq!(warm.build.phase2.hits, 8, "{config}: warm phase 2 must be all hits");
            assert!(warm.build.recompiled.is_empty(), "{config}: nothing changed");
            (cold, warm)
        };
        assert_eq!(warm.exe, cold.exe, "{config}: warm build must be bit-identical");
        let report = verify_program(&warm);
        assert!(report.is_clean(), "{config}: warm build failed verification:\n{report}");
        let rc = run_program(&cold, &[]).unwrap();
        let rw = run_program(&warm, &[]).unwrap();
        assert_eq!(rc.output, rw.output, "{config}: output");
        assert_eq!(rc.exit, rw.exit, "{config}: exit");
        assert_eq!(rc.stats, rw.stats, "{config}: dynamic instruction accounting");
    }
}

/// The worker-pool width is a pure wall-clock knob: any `jobs` value
/// produces the same executable as the serial build.
#[test]
fn jobs_never_change_the_executable() {
    let sources = scaled_program(12);
    for config in [PaperConfig::L2, PaperConfig::C] {
        let serial = compile_incremental(
            &sources,
            &CompileOptions::paper(config),
            &mut CompilationCache::new(),
        )
        .unwrap();
        for jobs in [0, 4] {
            let opts = CompileOptions { jobs, ..CompileOptions::paper(config) };
            let parallel =
                compile_incremental(&sources, &opts, &mut CompilationCache::new()).unwrap();
            assert_eq!(
                parallel.exe, serial.exe,
                "{config}: jobs={jobs} must match the serial build bit-for-bit"
            );
        }
        let report = verify_program(&serial);
        assert!(report.is_clean(), "{config}: verification:\n{report}");
    }
}

/// The profile-feedback loop shares one cache between its baseline and
/// profile-fed builds, so the final build's first phase is pure cache hits
/// — the sources did not change between the two compiles.
#[test]
fn profile_recompile_front_end_is_all_cache_hits() {
    let sources = scaled_program(6);
    let mut cache = CompilationCache::new();
    let program =
        compile_with_profile_cached(&sources, PaperConfig::B, &[], 1, &mut cache).unwrap().unwrap();
    assert_eq!(program.build.phase1.hits, sources.len());
    assert_eq!(program.build.phase1.misses, 0);
    let report = verify_program(&program);
    assert!(report.is_clean(), "profile-fed build failed verification:\n{report}");
}

/// A whitespace-only edit re-runs the first phase for the touched module
/// (its source fingerprint moved) but no codegen at all: the optimized IR
/// is unchanged, so every phase-2 probe still hits.
#[test]
fn whitespace_edit_skips_codegen_entirely() {
    let mut sources = scaled_program(5);
    let opts = CompileOptions::paper(PaperConfig::C);
    let mut cache = CompilationCache::new();
    let cold = compile_incremental(&sources, &opts, &mut cache).unwrap();

    sources[3].text.push_str("\n\n");
    let rebuilt = compile_incremental(&sources, &opts, &mut cache).unwrap();
    assert_eq!(rebuilt.build.phase1.misses, 1);
    assert_eq!(rebuilt.build.phase2.hits, 5, "identical IR must not re-run codegen");
    assert!(rebuilt.build.recompiled.is_empty());
    assert_eq!(rebuilt.exe, cold.exe);
}
