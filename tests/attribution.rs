//! Property tests for the observability layer: across every workload and
//! every paper configuration,
//!
//! * enabling per-procedure attribution never changes the run — not the
//!   output, not the exit code, not a single [`vpr::RunStats`] field;
//! * the attribution is *exact*: per-procedure self costs sum to the
//!   whole-program totals, and inclusive cycles are bounded by them;
//! * a [`DiffReport`] built from two attributed runs satisfies its sum
//!   invariant and links every moved procedure to an analyzer decision.

use ipra_core::PaperConfig;
use ipra_driver::{
    compile_configured, diff_report, run_program, run_program_attributed, CompilationCache,
    CompileOptions,
};
use vpr::STARTUP_PROC;

#[test]
fn attribution_is_exact_and_observation_only_across_workloads_and_configs() {
    for w in ipra_workloads::all() {
        let mut cache = CompilationCache::new();
        for config in PaperConfig::ALL {
            let label = format!("{}/{config}", w.name);
            let program = compile_configured(
                &w.sources,
                config,
                &w.training_input,
                &CompileOptions::default(),
                &mut cache,
            )
            .unwrap_or_else(|e| panic!("{label}: compile error {e}"))
            .unwrap_or_else(|e| panic!("{label}: training trap {e}"));
            let plain = run_program(&program, &w.input)
                .unwrap_or_else(|e| panic!("{label}: simulator trap {e}"));
            let attributed = run_program_attributed(&program, &w.input)
                .unwrap_or_else(|e| panic!("{label}: attributed simulator trap {e}"));

            // Attribution is pure observation.
            assert_eq!(attributed.stats, plain.stats, "{label}: stats changed");
            assert_eq!(attributed.output, plain.output, "{label}: output changed");
            assert_eq!(attributed.exit, plain.exit, "{label}: exit changed");
            assert!(plain.attribution.is_none(), "{label}: unrequested attribution");

            // And it is exact: self costs sum to the program totals.
            let attr = attributed.attribution.as_ref().expect("attribution requested");
            assert!(attr.matches(&attributed.stats), "{label}: sums diverge from RunStats");
            let total = attributed.stats.cycles;
            for (name, cost) in &attr.procs {
                assert!(
                    cost.inclusive_cycles >= cost.cycles && cost.inclusive_cycles <= total,
                    "{label}/{name}: inclusive cycles out of range"
                );
            }
            // The startup stub's window spans the whole run.
            assert_eq!(
                attr.get(STARTUP_PROC).expect("startup slot").inclusive_cycles,
                total,
                "{label}: startup inclusive window"
            );
        }
    }
}

#[test]
fn diff_reports_sum_and_explain_across_workloads() {
    for w in ipra_workloads::all() {
        for config_b in [PaperConfig::C, PaperConfig::E] {
            let label = format!("{}/L2->{config_b}", w.name);
            let report = diff_report(&w.sources, PaperConfig::L2, config_b, &w.input, 1)
                .unwrap_or_else(|e| panic!("{label}: compile error {e}"))
                .unwrap_or_else(|e| panic!("{label}: simulator trap {e}"));
            assert!(report.sums_match(), "{label}: per-procedure sums diverge from totals");
            let delta_sum: i64 = report.procs.iter().map(|p| p.cycles_delta).sum();
            assert_eq!(
                delta_sum,
                report.totals_b.cycles as i64 - report.totals_a.cycles as i64,
                "{label}: deltas must sum to the whole-program delta"
            );
            for p in report.procs.iter().filter(|p| p.cycles_delta != 0) {
                if p.name == STARTUP_PROC {
                    continue;
                }
                assert!(
                    !p.reasons.is_empty(),
                    "{label}: `{}` moved {} cycles with no linked decision",
                    p.name,
                    p.cycles_delta
                );
            }
        }
    }
}
