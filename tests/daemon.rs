//! Many-client stress suite for `cmind`, the build-service daemon.
//!
//! The daemon's whole pitch is that one shared cache can serve every
//! client *because* builds are byte-deterministic: the same request
//! fingerprint always produces the same executable bytes, so a cache hit
//! produced by one tenant is safe to hand to another. This suite drives
//! that claim hard: eight concurrent clients hammer a 64-module program
//! through rounds of interleaved one-module edits, and **every** response
//! is byte-compared against an independent cold `compile()` of the same
//! sources. A coalescing round behind a barrier then checks the dedup
//! counters actually fire.

use ipra_daemon::protocol::{BuildRequest, WireSource};
use ipra_daemon::{Client, Server, ServerOptions};
use ipra_driver::{compile, CompileOptions, SourceFile};
use ipra_workloads::scaled::{perturb, scaled_program};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, Mutex};

const MODULES: usize = 64;
const CLIENTS: usize = 8;
const ROUNDS: usize = 6;

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cmind-stress-{tag}-{}.sock", std::process::id()))
}

fn wire_sources(sources: &[SourceFile]) -> Vec<WireSource> {
    sources.iter().map(|s| WireSource { name: s.name.clone(), text: s.text.clone() }).collect()
}

fn request_for(sources: &[SourceFile]) -> BuildRequest {
    BuildRequest {
        config: "L2".to_string(),
        optimize: true,
        sources: wire_sources(sources),
        training_input: Vec::new(),
    }
}

/// Independent ground truth, cached per request fingerprint so each
/// distinct program is cold-compiled exactly once no matter how many
/// clients ask about it.
struct Oracle {
    expected: Mutex<HashMap<u64, String>>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle { expected: Mutex::new(HashMap::new()) }
    }

    fn vx_for(&self, request: &BuildRequest, sources: &[SourceFile]) -> String {
        let fp = request.fingerprint();
        if let Some(vx) = self.expected.lock().unwrap().get(&fp) {
            return vx.clone();
        }
        // Cold, cache-free, single-threaded: the most boring build there is.
        let program = compile(sources, &CompileOptions::default()).expect("oracle compile");
        let vx = ipra_daemon::protocol::executable_artifact(&program.exe).0;
        self.expected.lock().unwrap().insert(fp, vx.clone());
        vx
    }
}

/// Eight clients, six rounds of one-module edits, every response
/// byte-compared against an independent cold compile.
///
/// All clients follow the same edit schedule, so within a round their
/// requests are identical: early arrivals lead builds, later ones either
/// coalesce onto the in-flight build or hit the now-warm cache. Across
/// rounds the program changes by exactly one module. Either way the
/// bytes must match the oracle's.
#[test]
fn stress_many_clients_with_interleaved_edits() {
    let server = Server::start(ServerOptions::new(sock("edits"))).expect("server start");
    let oracle = Arc::new(Oracle::new());
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let socket = server.socket().to_path_buf();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let oracle = Arc::clone(&oracle);
            let barrier = Arc::clone(&barrier);
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                let mut sources = scaled_program(MODULES);
                for round in 0..ROUNDS {
                    if round > 0 {
                        // One-module edit, same schedule for every client so
                        // identical requests collide in the cache/in-flight map.
                        perturb(&mut sources, (round * 11) % MODULES, 100 + round as i64);
                    }
                    // Rough alignment so edits genuinely interleave with
                    // other clients' requests rather than running serially.
                    barrier.wait();
                    let request = request_for(&sources);
                    let built = client
                        .build(&request)
                        .unwrap_or_else(|e| panic!("client {client_id} round {round}: {e}"));
                    let expected = oracle.vx_for(&request, &sources);
                    assert_eq!(
                        built.vx, expected,
                        "client {client_id} round {round}: daemon bytes != solo cold compile"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let mut client = Client::connect(server.socket()).expect("stats connect");
    let counters = client.stats().expect("stats");
    let get = |name: &str| counters.iter().find(|c| c.name == name).map_or(0, |c| c.value);
    let leads = get("daemon.dedup.leads");
    let coalesced = get("daemon.dedup.coalesced");
    let builds = get("daemon.builds");
    // Every request either led a build or coalesced onto one.
    assert_eq!(
        leads + coalesced,
        (CLIENTS * ROUNDS) as u64,
        "every request is accounted for: leads={leads} coalesced={coalesced}"
    );
    assert_eq!(builds, leads, "exactly the leaders reached the compiler");
    // 8 clients racing an identical request per round: dedup must have
    // coalesced at least some of them (a 64-module build takes far longer
    // than the barrier skew between clients).
    assert!(coalesced > 0, "expected in-flight coalescing, got leads={leads}");
    assert!(get("daemon.connections") >= CLIENTS as u64, "all clients were accepted");

    client.shutdown().expect("shutdown");
    server.wait();
}

/// Distinct programs from different clients share one daemon and its
/// sharded cache without cross-talk: interleaved builds of per-client
/// variants all come back byte-correct, and re-requesting a variant
/// after *other* clients' builds still matches (nothing was evicted into
/// wrongness, only into recompilation).
#[test]
fn stress_distinct_programs_share_the_cache_without_crosstalk() {
    let opts = ServerOptions {
        // A deliberately tight cap so eviction churns while clients race.
        capacity: Some(8),
        ..ServerOptions::new(sock("crosstalk"))
    };
    let server = Server::start(opts).expect("server start");
    let oracle = Arc::new(Oracle::new());
    let socket = server.socket().to_path_buf();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let oracle = Arc::clone(&oracle);
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                // Each client owns one variant (its own tune) of a smaller
                // program, rebuilt repeatedly while the others churn the
                // shared shards.
                let mut sources = scaled_program(12);
                perturb(&mut sources, client_id % 12, 1000 + client_id as i64);
                let request = request_for(&sources);
                let expected = oracle.vx_for(&request, &sources);
                for round in 0..4 {
                    let built = client
                        .build(&request)
                        .unwrap_or_else(|e| panic!("client {client_id} round {round}: {e}"));
                    assert_eq!(
                        built.vx, expected,
                        "client {client_id} round {round}: shared cache served wrong bytes"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    server.stop();
}
