//! Property test: the pretty-printer emits source that re-parses to the
//! same AST (modulo source positions), over both hand-written corner cases
//! and generator output. This pins the frontend's concrete syntax.

use cmin_frontend::{parse_module, pretty::module_to_string, Module};
use ipra_workloads::generator::random_program;

/// Debug output with `Span { .. }` payloads blanked, so comparisons ignore
/// layout.
fn normalize(m: &Module) -> String {
    let dbg = format!("{m:?}");
    let mut out = String::with_capacity(dbg.len());
    let mut rest = dbg.as_str();
    while let Some(i) = rest.find("Span {") {
        out.push_str(&rest[..i]);
        out.push_str("Span");
        let close = rest[i..].find('}').expect("span closes") + i;
        rest = &rest[close + 1..];
    }
    out.push_str(rest);
    out
}

fn assert_roundtrip(name: &str, text: &str) {
    let m1 = parse_module(name, text)
        .unwrap_or_else(|e| panic!("{name}: original does not parse: {e}\n{text}"));
    let printed = module_to_string(&m1);
    let m2 = parse_module(name, &printed)
        .unwrap_or_else(|e| panic!("{name}: printed form does not parse: {e}\n{printed}"));
    assert_eq!(
        normalize(&m1),
        normalize(&m2),
        "{name}: round trip changed the AST\noriginal:\n{text}\nprinted:\n{printed}"
    );
    // Printing is a fixpoint.
    assert_eq!(printed, module_to_string(&m2), "{name}: printing not idempotent");
}

#[test]
fn generated_programs_round_trip() {
    for seed in 0..40 {
        for source in random_program(seed) {
            assert_roundtrip(&source.name, &source.text);
        }
    }
}

#[test]
fn workload_programs_round_trip() {
    for w in ipra_workloads::all() {
        for source in &w.sources {
            assert_roundtrip(&format!("{}:{}", w.name, source.name), &source.text);
        }
    }
}

#[test]
fn precedence_corner_cases_round_trip() {
    let cases = [
        "int f() { return 1 + 2 * 3 - 4 / 5 % 6; }",
        "int f() { return -(1) * -2 + !3; }",
        "int f(int a, int b) { return a < b == (b > a); }",
        "int f(int a) { return a && 1 || 0 && !a; }",
        "int g; int f() { return *(&g + 1) - *(&g); }",
        "int a[3]; int f(int i) { return a[a[i % 3]]; }",
        "int f() { return 0 - 9223372036854775807; }",
        "int f(int x) { if (x) { if (!x) { out(1); } else { out(2); } } return 0; }",
        "int f() { for (;;) { break; } while (0) { continue; } return 0; }",
        "int h(int a, int b, int c) { return a; } int f() { return h(h(1,2,3), 4, h(5,6,7)); }",
    ];
    for (i, text) in cases.iter().enumerate() {
        assert_roundtrip(&format!("case{i}"), text);
    }
}

/// Behavior is preserved too, not just structure: pretty-printed sources
/// compile and run identically.
#[test]
fn printed_programs_behave_identically() {
    use ipra_driver::{compile, run_program, CompileOptions, SourceFile};
    for seed in [3u64, 17, 29] {
        let original = random_program(seed);
        let printed: Vec<SourceFile> = original
            .iter()
            .map(|s| {
                let m = parse_module(&s.name, &s.text).unwrap();
                SourceFile::new(s.name.clone(), module_to_string(&m))
            })
            .collect();
        let p1 = compile(&original, &CompileOptions::default()).unwrap();
        let p2 = compile(&printed, &CompileOptions::default()).unwrap();
        let r1 = run_program(&p1, &[]).unwrap();
        let r2 = run_program(&p2, &[]).unwrap();
        assert_eq!(r1.output, r2.output, "seed {seed}");
        assert_eq!(r1.exit, r2.exit, "seed {seed}");
    }
}
