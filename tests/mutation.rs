//! Mutation testing for the register-discipline verifier: take a program
//! the compiler emitted correctly, break one discipline in the machine
//! code by hand, and check that `ipra-verify` flags it with the right
//! diagnostic kind. This is the verifier's own soundness suite — the
//! differential tests prove the compiler clean, so without mutations a
//! verifier that never reported anything would look perfect.
//!
//! The injections themselves live in [`ipra_fuzz::inject`] — the same
//! implementation the fuzzer's self-validation uses, so what this suite
//! proves about the verifier holds verbatim for `cminc fuzz
//! --self-validate` and the checked-in corpus repros.

use ipra_core::PaperConfig;
use ipra_driver::{compile, CompileOptions, CompiledProgram};
use ipra_fuzz::inject::{inject, MutationClass};
use ipra_verify::verify_modules;

fn compiled(config: PaperConfig) -> CompiledProgram {
    let w = ipra_workloads::dhrystone();
    let program = compile(&w.sources, &CompileOptions::paper(config)).unwrap();
    let report = verify_modules(&program.objects, &program.database);
    assert!(report.is_clean(), "unmutated baseline must verify clean:\n{report}");
    program
}

/// Mutation class 1: a procedure saves a callee-saves register but one of
/// its restores is dropped — the classic "missed epilogue on an early
/// return" codegen bug.
#[test]
fn dropped_callee_saves_restore_is_missing_restore() {
    let class = MutationClass::MissingRestore;
    let mut program = compiled(class.config());
    let inj = inject(&mut program, class)
        .expect("the workload must contain a callee-saves restore to drop");

    let report = verify_modules(&program.objects, &program.database);
    let hits: Vec<_> = report.of_kind(class.diag_kind()).collect();
    assert!(
        hits.iter().any(|d| d.proc == inj.proc),
        "dropping {}'s restore must be flagged as missing-restore, got:\n{report}",
        inj.proc
    );
}

/// Mutation class 2: a procedure outside a promotion web clobbers the
/// web's home register without saving it — the analyzer/codegen contract
/// "this register is dedicated to the global across these procedures" is
/// broken by a callee that never heard of the web (the paper's §6
/// recompilation hazard: a module rebuilt against a stale database).
///
/// The injection first drops the promotion from the victim's database
/// entry — as if its module were rebuilt against an older database — and
/// verifies that this alone stays clean (`inject` rejects the site
/// otherwise), so the diagnostic below is attributable to the code
/// mutation only.
#[test]
fn clobbered_promotion_home_register_is_promotion_clobber() {
    let class = MutationClass::PromotionClobber;
    for w in ipra_workloads::all() {
        let mut program = compile(&w.sources, &CompileOptions::paper(class.config())).unwrap();
        let report = verify_modules(&program.objects, &program.database);
        assert!(report.is_clean(), "{}: unmutated baseline must verify clean:\n{report}", w.name);
        let Some(inj) = inject(&mut program, class) else { continue };

        let report = verify_modules(&program.objects, &program.database);
        let hits: Vec<_> = report.of_kind(class.diag_kind()).collect();
        assert!(
            hits.iter().any(|d| d.detail.contains(inj.proc.as_str())),
            "clobbering the web's home in `{}` must be flagged as promotion-clobber, got:\n{report}",
            inj.proc
        );
        return;
    }
    panic!("no workload has a web member whose code leaves some home register untouched");
}

/// Mutation class 3: a cluster root's boundary save for an MSPILL register
/// is deleted — the members' FREE-register usage below it is no longer
/// covered, exactly the §4.2 spill-motion contract the paper relies on.
#[test]
fn deleted_cluster_boundary_save_is_missing_cluster_save() {
    let class = MutationClass::MissingClusterSave;
    let mut program = compiled(class.config());
    let inj = inject(&mut program, class)
        .expect("config A must form at least one cluster with a nonempty MSPILL in dhrystone");

    let report = verify_modules(&program.objects, &program.database);
    let hits: Vec<_> = report.of_kind(class.diag_kind()).collect();
    assert!(
        hits.iter().any(|d| d.proc == inj.proc),
        "deleting the boundary save in `{}` must be flagged as missing-cluster-save, got:\n{report}",
        inj.proc
    );
}
