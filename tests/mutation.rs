//! Mutation testing for the register-discipline verifier: take a program
//! the compiler emitted correctly, break one discipline in the machine
//! code by hand, and check that `ipra-verify` flags it with the right
//! diagnostic kind. This is the verifier's own soundness suite — the
//! differential tests prove the compiler clean, so without mutations a
//! verifier that never reported anything would look perfect.

use ipra_core::PaperConfig;
use ipra_driver::{compile, CompileOptions, CompiledProgram};
use ipra_verify::{verify_modules, DiagKind};
use vpr::inst::{Inst, MemClass};
use vpr::regs::{Reg, RegSet};

fn compiled(config: PaperConfig) -> CompiledProgram {
    let w = ipra_workloads::dhrystone();
    let program = compile(&w.sources, &CompileOptions::paper(config)).unwrap();
    let report = verify_modules(&program.objects, &program.database);
    assert!(report.is_clean(), "unmutated baseline must verify clean:\n{report}");
    program
}

/// Sets up the paper's §6 stale-recompilation hazard: one procedure's
/// database entry loses a promotion (as if its module were rebuilt against
/// an older database), making it an outsider to that web while the rest of
/// the program still keeps the global in its home register.
///
/// Returns the program (database already mutated, machine code still
/// intact) plus the victim's name and the web's home register. The victim
/// is chosen so its code doesn't touch the home register at all — the
/// database mutation alone must keep the program clean; only the code
/// mutation the caller applies afterwards introduces the violation.
fn stale_recompiled_program(config: PaperConfig) -> (CompiledProgram, String, Reg) {
    for w in ipra_workloads::all() {
        let mut program = compile(&w.sources, &CompileOptions::paper(config)).unwrap();
        let report = verify_modules(&program.objects, &program.database);
        assert!(report.is_clean(), "{}: unmutated baseline must verify clean:\n{report}", w.name);
        let mut found = None;
        'procs: for d in program.database.iter() {
            if d.promotions.iter().any(|q| q.is_entry) {
                continue; // entries load/store the memory home; keep it simple
            }
            for q in &d.promotions {
                let touches_home = find_inst(&program, |name, _, inst| {
                    name == d.name && (inst.def() == Some(q.reg) || inst.uses().contains(q.reg))
                })
                .is_some();
                let has_scratch_def = find_inst(&program, |name, _, inst| {
                    name == d.name
                        && matches!(inst.def(),
                            Some(rd) if RegSet::caller_saves().contains(rd) && rd != Reg::RV)
                })
                .is_some();
                let is_called = find_inst(
                    &program,
                    |_, _, inst| matches!(inst, Inst::Call { target } if *target == d.name),
                )
                .is_some();
                if !touches_home && has_scratch_def && is_called {
                    found = Some((d.name.clone(), q.sym.clone(), q.reg));
                    break 'procs;
                }
            }
        }
        let Some((victim, sym, home)) = found else { continue };

        let mut stale = program.database.lookup(&victim);
        stale.promotions.retain(|q| q.sym != sym);
        program.database.insert(stale);
        let report = verify_modules(&program.objects, &program.database);
        assert!(
            report.is_clean(),
            "dropping `{sym}` from `{victim}`'s directives alone must stay clean:\n{report}"
        );
        return (program, victim, home);
    }
    panic!("no workload has a web member whose code leaves some home register untouched");
}

/// Finds `(module, function, instruction)` of the first instruction in any
/// procedure for which `pick` returns true, searching in program order.
fn find_inst(
    program: &CompiledProgram,
    pick: impl Fn(&str, usize, &Inst) -> bool,
) -> Option<(usize, usize, usize)> {
    for (mi, m) in program.objects.iter().enumerate() {
        for (fi, f) in m.functions.iter().enumerate() {
            for (ii, inst) in f.insts().iter().enumerate() {
                if pick(f.name(), ii, inst) {
                    return Some((mi, fi, ii));
                }
            }
        }
    }
    None
}

/// Mutation class 1: a procedure saves a callee-saves register but one of
/// its restores is dropped — the classic "missed epilogue on an early
/// return" codegen bug.
#[test]
fn dropped_callee_saves_restore_is_missing_restore() {
    let mut program = compiled(PaperConfig::L2);
    let (mi, fi, ii) = find_inst(&program, |_, _, inst| {
        matches!(inst,
            Inst::Ldw { rd, base: Reg::SP, disp, class: MemClass::Spill }
                if *disp >= 0 && RegSet::callee_saves().contains(*rd))
    })
    .expect("the workload must contain a callee-saves restore to drop");
    let victim = program.objects[mi].functions[fi].name().to_string();
    program.objects[mi].functions[fi].insts_mut()[ii] = Inst::Nop;

    let report = verify_modules(&program.objects, &program.database);
    let hits: Vec<_> = report.of_kind(DiagKind::MissingRestore).collect();
    assert!(
        hits.iter().any(|d| d.proc == victim),
        "dropping {victim}'s restore must be flagged as missing-restore, got:\n{report}"
    );
}

/// Mutation class 2: a procedure outside a promotion web clobbers the
/// web's home register without saving it — the analyzer/codegen contract
/// "this register is dedicated to the global across these procedures" is
/// broken by a callee that never heard of the web (the paper's §6
/// recompilation hazard: a module rebuilt against a stale database).
#[test]
fn clobbered_promotion_home_register_is_promotion_clobber() {
    let (mut program, victim, home) = stale_recompiled_program(PaperConfig::E);

    // Replace a scratch-register write in the victim with a write to the
    // web's home register (replacement, not insertion, keeps labels valid).
    let (mi, fi, ii) = find_inst(&program, |name, _, inst| {
        name == victim
            && matches!(inst.def(), Some(rd) if RegSet::caller_saves().contains(rd) && rd != Reg::RV)
    })
    .expect("the victim must define some caller-saves scratch register");
    program.objects[mi].functions[fi].insts_mut()[ii] = Inst::Ldi { rd: home, imm: 0 };

    let report = verify_modules(&program.objects, &program.database);
    let hits: Vec<_> = report.of_kind(DiagKind::PromotionClobber).collect();
    assert!(
        hits.iter().any(|d| d.detail.contains(victim.as_str())),
        "clobbering {home} in `{victim}` must be flagged as promotion-clobber, got:\n{report}"
    );
}

/// Mutation class 3: a cluster root's boundary save for an MSPILL register
/// is deleted — the members' FREE-register usage below it is no longer
/// covered, exactly the §4.2 spill-motion contract the paper relies on.
#[test]
fn deleted_cluster_boundary_save_is_missing_cluster_save() {
    let mut program = compiled(PaperConfig::A);

    let root = program
        .database
        .iter()
        .find(|d| d.is_cluster_root && !d.usage.mspill.is_empty())
        .map(|d| (d.name.clone(), d.usage.mspill))
        .expect("config A must form at least one cluster with a nonempty MSPILL in dhrystone");

    let (mi, fi, ii) = find_inst(&program, |name, _, inst| {
        name == root.0
            && matches!(inst,
                Inst::Stw { rs, base: Reg::SP, disp, class: MemClass::Spill }
                    if *disp >= 0 && root.1.contains(*rs))
    })
    .expect("the cluster root must save its MSPILL registers in the prologue");
    program.objects[mi].functions[fi].insts_mut()[ii] = Inst::Nop;

    let report = verify_modules(&program.objects, &program.database);
    let hits: Vec<_> = report.of_kind(DiagKind::MissingClusterSave).collect();
    assert!(
        hits.iter().any(|d| d.proc == root.0),
        "deleting the boundary save in `{}` must be flagged as missing-cluster-save, got:\n{report}",
        root.0
    );
}
