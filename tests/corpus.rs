//! Regression-corpus replay: every repro the fuzzer ever checked into
//! `tests/corpus/` is re-validated here, forever. A self-validation repro
//! (mutation header present) must still host its injection and the
//! verifier must still flag it; an organic repro (no mutation header)
//! records a *fixed* failure, so the full oracle must now pass on it.

use ipra_fuzz::corpus;
use ipra_fuzz::inject::{injected_detectable, MutationClass};
use ipra_fuzz::oracle::{check, CheckOptions};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_entry_replays() {
    let entries = corpus::load(&corpus_dir()).expect("corpus must parse");
    assert!(!entries.is_empty(), "the checked-in corpus must not be empty");
    for (path, entry) in &entries {
        match entry.mutation {
            Some(class) => assert!(
                injected_detectable(&entry.sources, class),
                "{}: injected {} must still be detectable",
                path.display(),
                class.name()
            ),
            None => {
                // Organic failures are only checked in after the underlying
                // bug is fixed; the oracle must stay clean on them.
                let opts = CheckOptions {
                    incremental: true,
                    trace_purity: true,
                    separate: true,
                    cross_engine: true,
                    ..CheckOptions::default()
                };
                if let Err(f) = check(&entry.sources, &opts) {
                    panic!("{}: fixed repro regressed: {f}", path.display());
                }
            }
        }
    }
}

#[test]
fn corpus_covers_every_mutation_class() {
    let entries = corpus::load(&corpus_dir()).expect("corpus must parse");
    for class in MutationClass::ALL {
        assert!(
            entries.iter().any(|(_, e)| e.mutation == Some(class)),
            "no corpus entry exercises injected {}",
            class.name()
        );
    }
}

#[test]
fn corpus_files_round_trip_through_the_container_format() {
    for (path, entry) in corpus::load(&corpus_dir()).expect("corpus must parse") {
        let reparsed = corpus::CorpusEntry::from_text(&entry.to_text()).unwrap();
        assert_eq!(reparsed, entry, "{}", path.display());
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            entry.file_name(),
            "corpus file names must stay deterministic"
        );
    }
}
