//! The "level 2" optimizer, validated end to end: turning it off must not
//! change observable behavior (only speed), and turning it on must
//! actually pay — the paper's improvements are measured *over* this
//! baseline, so its quality is part of the reproduction's credibility.

use ipra_driver::{compile, run_program, CompileOptions};
use ipra_workloads::generator::random_program;

#[test]
fn optimizer_preserves_behavior_on_random_programs() {
    for seed in 400..425 {
        let sources = random_program(seed);
        let unopt =
            compile(&sources, &CompileOptions { optimize: false, ..Default::default() }).unwrap();
        let opt = compile(&sources, &CompileOptions::default()).unwrap();
        let ru = run_program(&unopt, &[]).unwrap();
        let ro = run_program(&opt, &[]).unwrap();
        assert_eq!(ru.output, ro.output, "seed {seed}");
        assert_eq!(ru.exit, ro.exit, "seed {seed}");
        assert!(
            ro.stats.cycles <= ru.stats.cycles,
            "seed {seed}: optimizer made things slower ({} vs {})",
            ro.stats.cycles,
            ru.stats.cycles
        );
    }
}

#[test]
fn optimizer_pays_substantially_on_workloads() {
    let mut total_unopt = 0u64;
    let mut total_opt = 0u64;
    for w in ipra_workloads::all() {
        let unopt =
            compile(&w.sources, &CompileOptions { optimize: false, ..Default::default() }).unwrap();
        let opt = compile(&w.sources, &CompileOptions::default()).unwrap();
        let ru = run_program(&unopt, &w.training_input).unwrap();
        let ro = run_program(&opt, &w.training_input).unwrap();
        assert_eq!(ru.output, ro.output, "{}", w.name);
        total_unopt += ru.stats.cycles;
        total_opt += ro.stats.cycles;
    }
    let saved = 100.0 * (total_unopt - total_opt) as f64 / total_unopt as f64;
    // A credible level-2 baseline should claw back a real fraction of the
    // naive code's cycles; if this degrades, the interprocedural numbers
    // in EXPERIMENTS.md become inflated. (The gap is structurally modest
    // here: even "naive" code keeps locals in registers, so the optimizer
    // fights for redundant global loads, folds and copies only. Currently
    // ~9.5% across the suite.)
    assert!(saved >= 8.0, "optimizer saves only {saved:.1}% over naive code");
}

#[test]
fn optimizer_shrinks_code() {
    for w in [ipra_workloads::protoc(), ipra_workloads::othello()] {
        let unopt =
            compile(&w.sources, &CompileOptions { optimize: false, ..Default::default() }).unwrap();
        let opt = compile(&w.sources, &CompileOptions::default()).unwrap();
        assert!(
            opt.exe.code_len() < unopt.exe.code_len(),
            "{}: {} vs {} instructions",
            w.name,
            opt.exe.code_len(),
            unopt.exe.code_len()
        );
    }
}
