//! Arithmetic edge semantics: the reference interpreter, the IR constant
//! folder and the VPR ALU are three independent implementations of `cmin`
//! arithmetic, and the differential oracle is only sound if they agree on
//! the edges — division by zero, `INT_MIN / -1`, signed overflow, shift
//! counts out of range. These tests pin the contract stated in
//! `docs/LANGUAGE.md`: all arithmetic is wrapping two's-complement on
//! 64-bit words; division and remainder by zero trap on every path (never
//! folded away); `INT_MIN / -1` and `INT_MIN % -1` wrap instead of
//! trapping; VPR shifts mask their count to six bits (and `cmin` itself
//! has no shift operator, so no source program can observe the mask).

use ipra_core::PaperConfig;
use ipra_driver::{compile, interpret_sources, run_program, CompileOptions, SourceFile};

const MIN: i64 = i64::MIN;
const MAX: i64 = i64::MAX;

/// Runs `src` with `input` through the interpreter and through compiled
/// code at every paper config, asserts they all agree, and returns the
/// common output stream.
fn agreed_output(src: &str, input: &[i64]) -> Vec<i64> {
    let sources = [SourceFile::new("m", src)];
    let oracle = interpret_sources(&sources, input)
        .expect("frontend")
        .expect("the interpreter must not trap here");
    for config in PaperConfig::ALL {
        let program = compile(&sources, &CompileOptions::paper(config)).unwrap();
        let r =
            run_program(&program, input).unwrap_or_else(|e| panic!("{config}: simulator trap {e}"));
        assert_eq!(r.output, oracle.output, "{config} diverged from the interpreter");
        assert_eq!(r.exit, oracle.exit, "{config} exit diverged");
    }
    oracle.output
}

/// Runs `src` with `input` on both sides and asserts that *both* trap with
/// a division-by-zero error.
fn both_trap_div_by_zero(src: &str, input: &[i64]) {
    let sources = [SourceFile::new("m", src)];
    let trap = interpret_sources(&sources, input)
        .expect("frontend")
        .expect_err("the interpreter must trap");
    assert_eq!(trap, cmin_ir::interp::InterpError::DivByZero, "interpreter trap class");
    for config in PaperConfig::ALL {
        let program = compile(&sources, &CompileOptions::paper(config)).unwrap();
        match run_program(&program, input) {
            Err(vpr::sim::SimError::DivByZero { .. }) => {}
            other => panic!("{config}: expected DivByZero trap, got {other:?}"),
        }
    }
}

#[test]
fn division_and_remainder_by_zero_trap_on_both_sides() {
    // Data-dependent: no constant folder can see the zero.
    both_trap_div_by_zero("int main() { out(in() / in()); return 0; }", &[5, 0]);
    both_trap_div_by_zero("int main() { out(in() % in()); return 0; }", &[5, 0]);
}

#[test]
fn constant_division_by_zero_is_not_folded_and_still_traps() {
    // The folder sees `1 / 0` at compile time; it must leave the trapping
    // instruction in place, not fold it or drop it as dead.
    both_trap_div_by_zero("int main() { out(1 / 0); return 0; }", &[]);
    both_trap_div_by_zero("int main() { out(1 % 0); return 0; }", &[]);
    // Even when the result is unused, the trap is an observable effect.
    both_trap_div_by_zero("int main() { int x = 1 / 0; return 0; }", &[]);
}

#[test]
fn int_min_over_minus_one_wraps_instead_of_trapping() {
    // The one divide that overflows: INT_MIN / -1 == -INT_MIN wraps back
    // to INT_MIN, and INT_MIN % -1 == 0 — on the interpreter, through the
    // folder, and on the VPR ALU alike (hardware-style, no trap).
    let src = "int main() { out(in() / in()); out(in() % in()); return 0; }";
    assert_eq!(agreed_output(src, &[MIN, -1, MIN, -1]), vec![MIN, 0]);
}

#[test]
fn division_truncates_toward_zero() {
    // C semantics: the quotient truncates toward zero and the remainder
    // takes the sign of the dividend.
    let src = "int main() { out(in() / in()); out(in() % in()); return 0; }";
    assert_eq!(agreed_output(src, &[-7, 2, -7, 2]), vec![-3, -1]);
    assert_eq!(agreed_output(src, &[7, -2, 7, -2]), vec![-3, 1]);
}

#[test]
fn signed_overflow_wraps_identically_everywhere() {
    // Data-dependent operands: exercised on the ALU / interpreter proper.
    let src = "int main() {
        out(in() + in());
        out(in() - in());
        out(in() * in());
        out(0 - in());
        return 0;
    }";
    let input = [MAX, 1, MIN, 1, MAX, 2, MIN];
    assert_eq!(agreed_output(src, &input), vec![MIN, MAX, -2, MIN]);

    // Constant operands: the same values routed through the folder.
    let src = "int main() {
        out(9223372036854775807 + 1);
        out((0 - 9223372036854775807 - 1) - 1);
        out(9223372036854775807 * 2);
        return 0;
    }";
    assert_eq!(agreed_output(src, &[]), vec![MIN, MAX, -2]);
}

#[test]
fn vpr_shift_counts_are_masked_to_six_bits() {
    use vpr::inst::AluOp;
    // `cmin` has no shift operator, so these semantics are unreachable from
    // source — but codegen strength-reduction or hand-written VPR may emit
    // them, and the mask is part of the machine contract.
    assert_eq!(AluOp::Shl.eval(1, 64), Some(1), "64 & 63 == 0");
    assert_eq!(AluOp::Shl.eval(1, 65), Some(2), "65 & 63 == 1");
    assert_eq!(AluOp::Shl.eval(1, -1), Some(MIN), "-1 & 63 == 63");
    assert_eq!(AluOp::Shr.eval(-8, 64), Some(-8), "count masks, sign extends");
    assert_eq!(AluOp::Shr.eval(MIN, 63), Some(-1), "arithmetic, not logical");
}
