//! Cross-engine parity suite: the fast execution engine ([`vpr::exec`])
//! must be *bit-identical* to the reference interpreter in every
//! observable, across every workload, every paper configuration, both
//! attribution modes, every step limit, and every trap — the full
//! `Result<RunResult, SimError>` is compared, so output, exit code, every
//! `RunStats` field, per-procedure attribution, and trap kind/pc/
//! symbolization all participate.
//!
//! This is the differential backbone of the fast engine: the reference
//! stays as the oracle, and any divergence here is a bug in the fast
//! engine by definition (see `docs/simulator.md`).

use ipra_core::PaperConfig;
use ipra_driver::{compile_configured, CompilationCache, CompileOptions, SourceFile};
use vpr::{Engine, RunResult, SimError, SimOptions};

/// Runs `exe` under both engines with identical options and demands
/// bit-identical outcomes, traps included.
fn both(exe: &vpr::Executable, opts: &SimOptions, label: &str) -> Result<RunResult, SimError> {
    let fast = vpr::run_with(exe, &SimOptions { engine: Engine::Fast, ..opts.clone() });
    let reference = vpr::run_with(exe, &SimOptions { engine: Engine::Reference, ..opts.clone() });
    assert_eq!(fast, reference, "{label}: engines diverged");
    fast
}

#[test]
fn engines_agree_across_workloads_configs_and_attribution() {
    for w in ipra_workloads::all() {
        let mut cache = CompilationCache::new();
        for config in PaperConfig::ALL_WITH_ALIAS {
            let label = format!("{}/{config}", w.name);
            let program = compile_configured(
                &w.sources,
                config,
                &w.training_input,
                &CompileOptions::default(),
                &mut cache,
            )
            .unwrap_or_else(|e| panic!("{label}: compile error {e}"))
            .unwrap_or_else(|e| panic!("{label}: training trap {e}"));
            for attribute in [false, true] {
                let opts =
                    SimOptions { input: w.input.clone(), attribute, ..SimOptions::default() };
                let r = both(&program.exe, &opts, &label)
                    .unwrap_or_else(|e| panic!("{label}: simulator trap {e}"));
                assert_eq!(r.attribution.is_some(), attribute, "{label}: attribution presence");
                if let Some(attr) = &r.attribution {
                    assert!(attr.matches(&r.stats), "{label}: attribution sums diverge");
                }
            }
        }
    }
}

#[test]
fn engines_agree_on_every_step_limit_of_a_real_workload() {
    // The StepLimit/Ok frontier must sit at exactly the same step in both
    // engines, for both attribution modes: sweep limits across the whole
    // run plus the exact boundary.
    let w = ipra_workloads::by_name("dhrystone").expect("dhrystone workload");
    let mut cache = CompilationCache::new();
    let program = compile_configured(
        &w.sources,
        PaperConfig::C,
        &w.training_input,
        &CompileOptions::default(),
        &mut cache,
    )
    .expect("compile")
    .expect("training run");
    let base = SimOptions { input: w.input.clone(), ..SimOptions::default() };
    let total = vpr::run_with(&program.exe, &base).expect("full run").stats.cycles;
    for attribute in [false, true] {
        for limit in (0..total).step_by(997).chain([total - 1, total, total + 1]) {
            let label = format!("dhrystone limit {limit} (attr {attribute})");
            let opts = SimOptions { max_steps: limit, attribute, ..base.clone() };
            let r = both(&program.exe, &opts, &label);
            assert_eq!(r.is_ok(), limit >= total, "{label}: frontier misplaced");
            if r.is_err() {
                assert_eq!(r, Err(SimError::StepLimit { limit }), "{label}: wrong trap");
            }
        }
    }
}

/// Compiles a single-module program under config C (no training needed for
/// the static configurations).
fn compile_one(src: &str) -> ipra_driver::CompiledProgram {
    let sources = vec![SourceFile::new("t", src)];
    let mut cache = CompilationCache::new();
    compile_configured(&sources, PaperConfig::C, &[], &CompileOptions::default(), &mut cache)
        .expect("compile")
        .expect("training run")
}

#[test]
fn engines_agree_on_trap_kind_pc_and_symbolization() {
    // Division by zero, driven by input so the trap survives any
    // constant folding; the symbolized location must match too.
    let program = compile_one("int main() { int x = in(); return 10 / x; }");
    for attribute in [false, true] {
        let opts = SimOptions { input: vec![0], attribute, ..SimOptions::default() };
        let err = both(&program.exe, &opts, "div-by-zero").unwrap_err();
        let SimError::DivByZero { sym, .. } = &err else {
            panic!("expected DivByZero, got {err}");
        };
        let sym = sym.as_deref().expect("trap inside a linked function must symbolize");
        assert!(sym.starts_with("main+"), "trap symbolized to `{sym}`");
    }

    // Runaway recursion: the engines must agree on which trap ends it
    // (memory fault from the descending stack or the step limit) and on
    // its full payload.
    let program = compile_one("int f(int n) { return f(n + 1); } int main() { return f(0); }");
    let opts = SimOptions { max_steps: 200_000, ..SimOptions::default() };
    let err = both(&program.exe, &opts, "runaway recursion").unwrap_err();
    assert!(
        matches!(err, SimError::MemFault { .. } | SimError::StepLimit { .. }),
        "unexpected trap {err}"
    );
}

#[test]
fn engine_selection_is_observation_equivalent_through_the_driver() {
    // The driver-level entry points must route to the requested engine and
    // agree with each other.
    let w = ipra_workloads::by_name("war").expect("war workload");
    let mut cache = CompilationCache::new();
    let program = compile_configured(
        &w.sources,
        PaperConfig::E,
        &w.training_input,
        &CompileOptions::default(),
        &mut cache,
    )
    .expect("compile")
    .expect("training run");
    let fast = ipra_driver::run_program_on(&program, &w.input, Engine::Fast).expect("fast run");
    let reference =
        ipra_driver::run_program_on(&program, &w.input, Engine::Reference).expect("reference run");
    assert_eq!(fast, reference);
    // And the default is the fast engine.
    assert_eq!(Engine::default(), Engine::Fast);
}
