//! The on-disk artifact formats as a falsifiable contract.
//!
//! Two properties carry the whole separate-compilation story:
//!
//! 1. **Lossless, canonical serialization.** Every artifact kind
//!    (`.csum`, `.cdir`, `.vo`, `.vx`, `.vlib`) decodes back to an equal
//!    value and re-encodes to byte-identical text, for every workload
//!    under every paper configuration. Byte-determinism is what makes
//!    artifacts cacheable and diffs meaningful.
//! 2. **The pipeline is invisible.** Staging a build through artifact
//!    files — every stage re-reading its inputs from disk — produces an
//!    executable bit-identical to the in-memory `compile()`, with
//!    identical run statistics and a clean `ipra-verify` report.
//!
//! Plus the safety rail: a version or kind mismatch in an artifact header
//! is a clean typed error, never a panic and never a silent misparse.

use ipra_artifact::{
    ArtifactError, ArtifactKind, DirectivesArtifact, ExecutableArtifact, LibraryArtifact,
    LibraryMember, ObjectArtifact, SummaryArtifact,
};
use ipra_core::PaperConfig;
use ipra_driver::separate::artifact_build_configured;
use ipra_driver::{compile_configured, CompilationCache, CompileOptions};
use std::fmt::Debug;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ipra-artifacts-{tag}-{}", std::process::id()))
}

/// Encode → decode → compare → re-encode → compare bytes.
fn round_trip<T>(kind: ArtifactKind, payload: &T, what: &str)
where
    T: serde::Serialize + serde::Deserialize + PartialEq + Debug,
{
    let text = ipra_artifact::encode(kind, payload);
    let back: T =
        ipra_artifact::decode(kind, &text).unwrap_or_else(|e| panic!("{what}: decode: {e}"));
    assert_eq!(&back, payload, "{what}: decode must invert encode");
    assert_eq!(
        ipra_artifact::encode(kind, &back),
        text,
        "{what}: re-encoding the decoded value must be byte-identical"
    );
}

/// Every artifact kind round-trips losslessly and canonically for every
/// workload under every paper configuration. Fingerprint fields get
/// boundary values (`0`, `u64::MAX`) on top of the real ones, so the JSON
/// layer's full-range `u64` handling is on trial too.
#[test]
fn every_format_round_trips_across_workloads_and_configs() {
    for w in ipra_workloads::all() {
        let mut cache = CompilationCache::new();
        for config in PaperConfig::ALL {
            let program = compile_configured(
                &w.sources,
                config,
                &w.training_input,
                &CompileOptions::default(),
                &mut cache,
            )
            .unwrap_or_else(|e| panic!("{} [{config}]: {e}", w.name))
            .unwrap_or_else(|e| panic!("{} [{config}]: training trap {e}", w.name));
            let what = format!("{} [{config}]", w.name);

            for (i, summary) in program.summary.modules.iter().enumerate() {
                let fp = [0u64, u64::MAX, 0x1234_5678_9abc_def0][i % 3];
                round_trip(
                    ArtifactKind::Summary,
                    &SummaryArtifact { summary: summary.clone(), source_fp: fp, ir_fp: !fp },
                    &format!("{what} .csum[{i}]"),
                );
            }
            round_trip(
                ArtifactKind::Directives,
                &DirectivesArtifact {
                    config: config.to_string(),
                    database: program.database.clone(),
                },
                &format!("{what} .cdir"),
            );
            for (i, object) in program.objects.iter().enumerate() {
                round_trip(
                    ArtifactKind::Object,
                    &ObjectArtifact { object: object.clone(), ir_fp: u64::MAX, dir_fp: 0 },
                    &format!("{what} .vo[{i}]"),
                );
            }
            round_trip(
                ArtifactKind::Executable,
                &ExecutableArtifact { exe: program.exe.clone() },
                &format!("{what} .vx"),
            );
            let library = LibraryArtifact {
                members: program
                    .objects
                    .iter()
                    .zip(&program.summary.modules)
                    .map(|(o, s)| LibraryMember { object: o.clone(), summary: s.clone() })
                    .collect(),
            };
            round_trip(ArtifactKind::Library, &library, &format!("{what} .vlib"));
        }
    }
}

/// The artifact-staged pipeline (`.csum` → `.cdir` → `.vo` → `.vx`, every
/// stage re-reading from disk) is invisible: bit-identical executable,
/// identical run behavior down to the instruction counts, clean
/// verification of the on-disk objects against the on-disk database — for
/// every workload under every paper configuration.
#[test]
fn artifact_pipeline_matches_in_memory_compile_everywhere() {
    let root = tmpdir("pipeline");
    for w in ipra_workloads::all() {
        let mut mem_cache = CompilationCache::new();
        let mut disk_cache = CompilationCache::new();
        for config in PaperConfig::ALL {
            let what = format!("{} [{config}]", w.name);
            let in_memory = compile_configured(
                &w.sources,
                config,
                &w.training_input,
                &CompileOptions::default(),
                &mut mem_cache,
            )
            .unwrap_or_else(|e| panic!("{what}: {e}"))
            .unwrap_or_else(|e| panic!("{what}: training trap {e}"));

            let dir = root.join(w.name).join(config.to_string());
            let staged = artifact_build_configured(
                &w.sources,
                config,
                &w.training_input,
                &dir,
                &mut disk_cache,
            )
            .unwrap_or_else(|e| panic!("{what}: artifact build: {e}"))
            .unwrap_or_else(|e| panic!("{what}: artifact training trap {e}"));

            assert_eq!(
                serde_json::to_string(&staged.exe).unwrap(),
                serde_json::to_string(&in_memory.exe).unwrap(),
                "{what}: staged .vx must be bit-identical to the in-memory executable"
            );

            let sim = vpr::SimOptions { input: w.input.clone(), ..vpr::SimOptions::default() };
            let rs = vpr::run_with(&staged.exe, &sim).unwrap_or_else(|e| panic!("{what}: {e}"));
            let rm = vpr::run_with(&in_memory.exe, &sim).unwrap();
            assert_eq!(rs.output, rm.output, "{what}: output");
            assert_eq!(rs.exit, rm.exit, "{what}: exit");
            assert_eq!(rs.stats, rm.stats, "{what}: run statistics");

            // Verify what is actually on disk, not what we remember
            // writing: re-read the objects and the database.
            let objects: Vec<vpr::ObjectModule> = staged
                .object_paths
                .iter()
                .map(|p| {
                    let a: ObjectArtifact =
                        ipra_artifact::read_file(ArtifactKind::Object, p).unwrap();
                    a.object
                })
                .collect();
            let dirs: DirectivesArtifact =
                ipra_artifact::read_file(ArtifactKind::Directives, &staged.directives_path)
                    .unwrap();
            let report = ipra_verify::verify_modules(&objects, &dirs.database);
            assert!(report.is_clean(), "{what}: on-disk objects failed verification:\n{report}");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Header problems are clean typed errors: wrong version, wrong kind,
/// unknown kind, bad magic, corrupt body. `sniff` still reads headers
/// from future format versions (that is how `objdump` stays useful).
#[test]
fn header_mismatches_are_clean_errors() {
    let payload = ExecutableArtifact {
        exe: {
            let program = ipra_driver::compile(
                &[ipra_driver::SourceFile::new("m", "int main() { return 7; }")],
                &CompileOptions::default(),
            )
            .unwrap();
            program.exe
        },
    };
    let good = ipra_artifact::encode(ArtifactKind::Executable, &payload);

    // Wrong kind requested.
    match ipra_artifact::decode::<DirectivesArtifact>(ArtifactKind::Directives, &good) {
        Err(ArtifactError::WrongKind { expected, found }) => {
            assert_eq!(expected, ArtifactKind::Directives);
            assert_eq!(found, ArtifactKind::Executable);
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }

    // Future version: decode refuses, sniff still works.
    let future = good.replacen(" v2 ", " v999 ", 1);
    match ipra_artifact::decode::<ExecutableArtifact>(ArtifactKind::Executable, &future) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 999);
            assert_eq!(supported, ipra_artifact::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert_eq!(
        ipra_artifact::sniff(&future).unwrap(),
        (ArtifactKind::Executable, 999, vpr::TargetId::Vpr)
    );

    // Unknown kind tag.
    let unknown = good.replacen(" executable ", " hologram ", 1);
    match ipra_artifact::sniff(&unknown) {
        Err(ArtifactError::UnknownKind { tag }) => assert_eq!(tag, "hologram"),
        other => panic!("expected UnknownKind, got {other:?}"),
    }

    // Not an artifact at all.
    assert!(matches!(ipra_artifact::sniff("{}"), Err(ArtifactError::BadMagic)));
    assert!(matches!(
        ipra_artifact::decode::<ExecutableArtifact>(ArtifactKind::Executable, ""),
        Err(ArtifactError::BadMagic)
    ));

    // Body tampering: the header fingerprint catches it before the parser
    // ever sees the body.
    let tampered = good.replacen("\n{", "\n {", 1);
    assert!(matches!(
        ipra_artifact::decode::<ExecutableArtifact>(ArtifactKind::Executable, &tampered),
        Err(ArtifactError::Corrupt { .. })
    ));

    // A truncated file (e.g. a crashed writer) is an error, not a panic.
    let truncated = &good[..good.len() / 2];
    assert!(
        ipra_artifact::decode::<ExecutableArtifact>(ArtifactKind::Executable, truncated).is_err()
    );
}
