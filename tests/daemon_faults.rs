//! Fault injection for `cmind`: the daemon must degrade — never lie,
//! never die.
//!
//! Three failure families from the issue, each pushed through a live
//! daemon: corrupted/truncated persistent-cache files (degrade to cache
//! misses, count `cache.disk.corrupt`, rebuild the right bytes), hostile
//! and truncated wire frames (typed protocol errors, connection-local
//! damage only), and clients that vanish mid-exchange (the daemon logs a
//! disconnect counter and keeps serving everyone else).

use ipra_daemon::protocol::{self, BuildRequest, Request, WireSource};
use ipra_daemon::{Client, Server, ServerOptions};
use ipra_driver::{compile, CompileOptions, SourceFile};
use ipra_workloads::scaled::{perturb, scaled_program};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cmind-fault-{tag}-{}.sock", std::process::id()))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmind-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn wire_sources(sources: &[SourceFile]) -> Vec<WireSource> {
    sources.iter().map(|s| WireSource { name: s.name.clone(), text: s.text.clone() }).collect()
}

fn request_for(sources: &[SourceFile]) -> BuildRequest {
    BuildRequest {
        config: "L2".to_string(),
        optimize: true,
        sources: wire_sources(sources),
        training_input: Vec::new(),
    }
}

fn local_vx(sources: &[SourceFile]) -> String {
    let program = compile(sources, &CompileOptions::default()).expect("local compile");
    protocol::executable_artifact(&program.exe).0
}

/// Overwrites or truncates every cached phase artifact under `dir`,
/// alternating damage modes; returns how many files were vandalized.
fn corrupt_cache_files(dir: &Path) -> usize {
    let mut hit = 0;
    for tier in ["p1", "p2"] {
        let Ok(entries) = std::fs::read_dir(dir.join(tier)) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if hit % 2 == 0 {
                std::fs::write(&path, b"not a cache entry").expect("corrupt");
            } else {
                let bytes = std::fs::read(&path).expect("read entry");
                std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
            }
            hit += 1;
        }
    }
    hit
}

fn counter(client: &mut Client, name: &str) -> u64 {
    let counters = client.stats().expect("stats");
    counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
}

/// Waits until `name` reaches at least `want` (counters are updated by
/// detached worker threads, so a freshly-sent request may not have
/// landed yet).
fn wait_for_counter(client: &mut Client, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let got = counter(client, name);
        if got >= want || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Corrupt and truncate cache files between requests: the daemon must
/// fall back to recompiling (counting the damage) and still serve bytes
/// identical to a pristine cold compile.
#[test]
fn corrupted_cache_files_degrade_to_misses_with_correct_bytes() {
    let cache_dir = tmpdir("cache");
    let opts = ServerOptions {
        cache_dir: Some(cache_dir.clone()),
        // Memory tier holds one module per phase: later requests must go
        // through the (vandalized) disk tier.
        capacity: Some(1),
        ..ServerOptions::new(sock("cache"))
    };
    let server = Server::start(opts).expect("server start");
    let mut client = Client::connect(server.socket()).expect("connect");

    let sources_a = scaled_program(6);
    let mut sources_b = scaled_program(6);
    perturb(&mut sources_b, 3, 77);
    let expected_a = local_vx(&sources_a);
    let expected_b = local_vx(&sources_b);

    let built = client.build(&request_for(&sources_a)).expect("build a");
    assert_eq!(built.vx, expected_a);
    let built = client.build(&request_for(&sources_b)).expect("build b");
    assert_eq!(built.vx, expected_b);

    let vandalized = corrupt_cache_files(&cache_dir);
    assert!(vandalized > 0, "the first builds should have persisted cache entries");

    // Round two against a poisoned disk tier: every answer must still be
    // byte-identical, and the daemon must have noticed the damage.
    let built = client.build(&request_for(&sources_a)).expect("rebuild a");
    assert_eq!(built.vx, expected_a, "corrupt cache must not change output bytes");
    let built = client.build(&request_for(&sources_b)).expect("rebuild b");
    assert_eq!(built.vx, expected_b, "corrupt cache must not change output bytes");

    assert!(counter(&mut client, "cache.disk.corrupt") > 0, "disk damage goes unlogged");

    client.shutdown().expect("shutdown");
    server.wait();
}

/// Hostile frames and vanishing clients are connection-local events: the
/// daemon counts them, drops the one connection, and keeps serving.
#[test]
fn wire_faults_and_client_disconnects_do_not_take_the_daemon_down() {
    let server = Server::start(ServerOptions::new(sock("wire"))).expect("server start");
    let socket = server.socket().to_path_buf();

    // 1. Pure garbage where a header should be.
    {
        let mut s = UnixStream::connect(&socket).expect("connect");
        s.write_all(b"GARBAGE-GARBAGE-GARBAGE").expect("write garbage");
        let _ = s.shutdown(std::net::Shutdown::Write);
    }
    // 2. A frame that promises 4096 payload bytes and delivers 10.
    {
        let sources = scaled_program(2);
        let mut frame = protocol::encode_request(&Request::Build(request_for(&sources)));
        frame[6..10].copy_from_slice(&4096u32.to_le_bytes());
        frame.truncate(protocol::HEADER_LEN + 10);
        let mut s = UnixStream::connect(&socket).expect("connect");
        s.write_all(&frame).expect("write truncated frame");
        // Dropping the stream here is the "client died mid-request" case.
    }
    // 3. A well-formed build request whose client hangs up without
    //    reading the response: the daemon's write fails and is counted.
    let sources = scaled_program(4);
    {
        let frame = protocol::encode_request(&Request::Build(request_for(&sources)));
        let mut s = UnixStream::connect(&socket).expect("connect");
        s.write_all(&frame).expect("write request");
        // Drop without reading: the build proceeds, the response bounces.
    }

    let mut client = Client::connect(&socket).expect("connect");
    let errors = wait_for_counter(&mut client, "daemon.protocol_errors", 2);
    assert!(errors >= 2, "expected >= 2 protocol errors, saw {errors}");
    let builds = wait_for_counter(&mut client, "daemon.builds", 1);
    assert!(builds >= 1, "abandoned request still builds");
    let dropped = wait_for_counter(&mut client, "daemon.client_disconnects", 1);
    assert!(dropped >= 1, "response to a dead client goes uncounted");

    // The daemon is still healthy: a well-behaved client gets correct bytes.
    let built = client.build(&request_for(&sources)).expect("build after faults");
    assert_eq!(built.vx, local_vx(&sources), "daemon still serves exact bytes");

    client.shutdown().expect("shutdown");
    server.wait();
}
