//! Property-based tests over the analyzer's structural invariants, on
//! randomly generated call graphs (not programs — raw summaries, so the
//! graphs include shapes the source language cannot easily produce:
//! dense recursion, deep diamonds, indirect-call fans).
//!
//! Each property runs over a fixed fan of seeds (the offline toolchain has
//! no proptest, and derived seeds cover the same shape space a proptest
//! `any::<u64>()` run would).

use ipra_core::analyzer::{analyze, AnalyzerOptions, PromotionMode};
use ipra_core::callgraph::CallGraph;
use ipra_core::cluster::{identify_clusters, ClusterHeuristics};
use ipra_core::color::{color_webs, interferes, prioritize, ColoringStrategy, DiscardHeuristics};
use ipra_core::dataflow::{Eligibility, RefSets};
use ipra_core::regsets::compute_register_sets;
use ipra_core::webs::identify_webs;
use ipra_summary::{CallRef, GlobalFact, GlobalRef, ModuleSummary, ProcSummary, ProgramSummary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpr::regs::RegSet;

/// Seeds for one property run: 64 well-spread 64-bit values.
fn seeds() -> impl Iterator<Item = u64> {
    (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03)
}

/// A random program summary: `n` procedures with random call edges (cycles
/// allowed), `g` globals with random reference sets.
fn random_summary(seed: u64) -> ProgramSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(3..25usize);
    let g = rng.gen_range(1..8usize);
    let procs = (0..n)
        .map(|i| {
            let n_calls = rng.gen_range(0..4usize);
            let calls = (0..n_calls)
                .map(|_| CallRef {
                    callee: format!("p{}", rng.gen_range(0..n)),
                    freq: rng.gen_range(1..200),
                })
                .collect();
            let n_refs = rng.gen_range(0..3usize.min(g) + 1);
            let global_refs = (0..n_refs)
                .map(|_| GlobalRef {
                    sym: format!("g{}", rng.gen_range(0..g)),
                    freq: rng.gen_range(1..100),
                    written: rng.gen_bool(0.7),
                    ptr_mod: rng.gen_bool(0.05),
                    ptr_ref: rng.gen_bool(0.05),
                    escapes: rng.gen_bool(0.05),
                })
                .collect();
            ProcSummary {
                name: format!("p{i}"),
                module: format!("m{}", i % 3),
                global_refs,
                calls,
                taken_addresses: if rng.gen_bool(0.1) {
                    vec![format!("p{}", rng.gen_range(0..n))]
                } else {
                    vec![]
                },
                makes_indirect_calls: rng.gen_bool(0.1),
                callee_saves_estimate: rng.gen_range(0..8),
                caller_saves_estimate: 2,
                alias: Default::default(),
            }
        })
        .collect::<Vec<_>>();
    let globals = (0..g)
        .map(|i| GlobalFact {
            sym: format!("g{i}"),
            size: 1,
            is_array: false,
            is_static: false,
            module: "m0".into(),
            init: vec![],
        })
        .collect();
    ProgramSummary { modules: vec![ModuleSummary { module: "m0".into(), procs, globals }] }
}

/// Web invariants (paper §4.1.2): per-variable webs are disjoint; entry
/// nodes have no predecessor inside the web; internal nodes have no
/// predecessor outside it.
#[test]
fn web_invariants() {
    for seed in seeds() {
        let s = random_summary(seed);
        let graph = CallGraph::build(&s, None);
        let elig = Eligibility::compute(&graph, &s);
        let refs = RefSets::compute(&graph, &elig);
        let (webs, _) = identify_webs(&graph, &elig, &refs);
        for (i, a) in webs.iter().enumerate() {
            for b in webs.iter().skip(i + 1) {
                if a.global == b.global {
                    assert!(
                        a.nodes.iter().all(|n| !b.contains(*n)),
                        "seed {seed}: webs for the same global overlap"
                    );
                }
            }
            for &n in &a.nodes {
                let internal_preds = graph.predecessors(n).filter(|p| a.contains(*p)).count();
                let external_preds = graph.predecessors(n).filter(|p| !a.contains(*p)).count();
                if a.is_entry(n) {
                    assert_eq!(internal_preds, 0, "seed {seed}: entry with internal pred");
                } else {
                    assert_eq!(external_preds, 0, "seed {seed}: internal node with external pred");
                }
            }
        }
    }
}

/// Coloring validity: interfering webs never share a register, and the
/// reserved-K strategy uses at most K registers.
#[test]
fn coloring_validity() {
    for seed in seeds() {
        let k = 1 + (seed % 6) as u32;
        let s = random_summary(seed);
        let graph = CallGraph::build(&s, None);
        let elig = Eligibility::compute(&graph, &s);
        let refs = RefSets::compute(&graph, &elig);
        let (webs, _) = identify_webs(&graph, &elig, &refs);
        let prio = prioritize(&webs, &graph, &elig, &DiscardHeuristics::default());
        let coloring = color_webs(&webs, &prio, ColoringStrategy::Reserved { count: k }, &graph);
        let mut used = std::collections::HashSet::new();
        for (i, a) in webs.iter().enumerate() {
            if let Some(r) = coloring.assignment[i] {
                used.insert(r);
                assert!(r.is_callee_saves(), "seed {seed}");
                for (j, b) in webs.iter().enumerate().skip(i + 1) {
                    if interferes(a, b) {
                        assert_ne!(Some(r), coloring.assignment[j], "seed {seed}");
                    }
                }
            }
        }
        assert!(used.len() <= k as usize, "seed {seed}: used {} > k {k}", used.len());
    }
}

/// Cluster invariants (paper §4.2.1): the root dominates every member,
/// non-root members have all predecessors inside the cluster, and no
/// member lies on a recursive chain.
#[test]
fn cluster_invariants() {
    for seed in seeds() {
        let s = random_summary(seed);
        let graph = CallGraph::build(&s, None);
        let clustering = identify_clusters(&graph, &ClusterHeuristics::default());
        for c in &clustering.clusters {
            for &m in &c.members {
                assert!(!graph.is_recursive(m), "seed {seed}: recursive member");
                assert!(graph.node(m).defined, "seed {seed}: undefined member");
                for p in graph.predecessors(m) {
                    assert!(c.contains(p), "seed {seed}: member {m} has external pred {p}");
                }
                assert!(
                    ipra_core::cluster::cg_dominates(
                        &(0..graph.len() as u32)
                            .map(|i| clustering.idom(ipra_core::NodeId(i)))
                            .collect::<Vec<_>>(),
                        c.root,
                        m
                    ),
                    "seed {seed}: root does not dominate member"
                );
            }
        }
    }
}

/// Register-set invariants (paper §4.2.3): classes are disjoint, MSPILL
/// appears only at cluster roots, and every FREE register of a member is
/// spilled by a root on its cluster chain.
#[test]
fn register_set_invariants() {
    for seed in seeds() {
        let s = random_summary(seed);
        let graph = CallGraph::build(&s, None);
        let clustering = identify_clusters(&graph, &ClusterHeuristics::default());
        let web_regs = vec![RegSet::new(); graph.len()];
        let usage = compute_register_sets(&graph, &clustering, &web_regs, false);
        for n in graph.node_ids() {
            let u = &usage[n.index()];
            assert!(u.free.is_disjoint(u.caller), "seed {seed}");
            assert!(u.free.is_disjoint(u.callee), "seed {seed}");
            assert!(u.caller.is_disjoint(u.callee), "seed {seed}");
            assert!(u.free.is_subset(RegSet::callee_saves()), "seed {seed}");
            assert!(u.mspill.is_subset(RegSet::callee_saves()), "seed {seed}");
            if !u.mspill.is_empty() {
                assert!(clustering.is_root(n), "seed {seed}");
            }
        }
        for c in &clustering.clusters {
            // Union of MSPILL along the enclosing-roots chain.
            let mut chain = usage[c.root.index()].mspill;
            let mut roots = vec![c.root];
            loop {
                let mut grew = false;
                for outer in &clustering.clusters {
                    if roots.iter().any(|r| outer.members.contains(r))
                        && !roots.contains(&outer.root)
                    {
                        roots.push(outer.root);
                        chain |= usage[outer.root.index()].mspill;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            for &m in &c.members {
                assert!(
                    usage[m.index()].free.is_subset(chain),
                    "seed {seed}: member FREE not covered by chain MSPILL"
                );
            }
        }
    }
}

/// The full analyzer never panics and produces a database covering all
/// defined procedures, whatever the configuration.
#[test]
fn analyzer_total_on_random_graphs() {
    for seed in seeds().take(32) {
        let s = random_summary(seed);
        for mode in 0u8..4 {
            let promotion = match mode {
                0 => PromotionMode::Off,
                1 => PromotionMode::Coloring { registers: 6 },
                2 => PromotionMode::Greedy,
                _ => PromotionMode::Blanket { count: 4 },
            };
            let opts = AnalyzerOptions { promotion, ..AnalyzerOptions::default() };
            let analysis = analyze(&s, &opts);
            assert_eq!(analysis.database.len(), s.procs().count(), "seed {seed} mode {mode}");
        }
    }
}
