//! Regression tests for the interprocedural alias analysis (config P).
//!
//! The blanket address-taken flags demote a global the moment any
//! procedure mentions `&g`, even if that procedure is never called. The
//! points-to solver only believes facts derivable from the reachable
//! program, so a dead-code-only escape must not block promotion under P —
//! while behavior stays bit-identical and the verifier stays clean.

use ipra_core::PaperConfig;
use ipra_driver::{compile, interpret_sources, run_program, CompileOptions, SourceFile};
use std::collections::BTreeSet;

fn src(name: &str, text: &str) -> SourceFile {
    SourceFile::new(name, text)
}

/// Globals promoted anywhere in the program, by link name.
fn promoted_syms(db: &ipra_core::ProgramDatabase) -> BTreeSet<String> {
    db.iter().flat_map(|d| d.promotions.iter().map(|p| p.sym.clone())).collect()
}

/// A two-module program where `counter`'s address escapes only inside a
/// static procedure that nothing ever calls. The hot loop in `main` reads
/// and writes `counter` directly, so promotion is clearly profitable.
fn dead_escape_program() -> Vec<SourceFile> {
    vec![
        src(
            "hot",
            "int counter;
             int step(int k) { counter = counter + k; return counter; }
             static int never_called(int x) {
                 int p = &counter;
                 *p = x;
                 return (*p);
             }",
        ),
        src(
            "app",
            "extern int counter;
             extern int step(int);
             int main() {
                 for (int i = 0; i < 40; i = i + 1) { step(i); }
                 out(counter);
                 return counter;
             }",
        ),
    ]
}

#[test]
fn dead_code_escape_blocks_c_but_not_p() {
    let sources = dead_escape_program();
    let c = compile(&sources, &CompileOptions::paper(PaperConfig::C)).unwrap();
    let p = compile(&sources, &CompileOptions::paper(PaperConfig::P)).unwrap();

    let promoted_c = promoted_syms(&c.database);
    let promoted_p = promoted_syms(&p.database);
    assert!(
        !promoted_c.contains("counter"),
        "blanket flags must demote the address-taken global, got {promoted_c:?}"
    );
    assert!(
        promoted_p.contains("counter"),
        "the alias solver must see the escape is dead code, got {promoted_p:?}"
    );
    assert!(
        promoted_p.is_superset(&promoted_c),
        "P must promote a superset of C: {promoted_p:?} vs {promoted_c:?}"
    );
}

#[test]
fn p_and_c_agree_with_the_interpreter_on_the_dead_escape_program() {
    let sources = dead_escape_program();
    let oracle = interpret_sources(&sources, &[]).unwrap().unwrap();
    for config in [PaperConfig::C, PaperConfig::P] {
        let program = compile(&sources, &CompileOptions::paper(config)).unwrap();
        let report = ipra_driver::verify_program(&program);
        assert!(report.is_clean(), "{config} failed verification:\n{report}");
        let r = run_program(&program, &[]).unwrap();
        assert_eq!(r.output, oracle.output, "{config} output diverged");
        assert_eq!(r.exit, oracle.exit, "{config} exit diverged");
    }
}

/// Read-only aliasing: a live procedure reads a never-written global
/// through a pointer. The memory home stays current forever, so P may
/// keep the global in a register at its direct-read sites.
#[test]
fn read_only_aliasing_does_not_block_promotion_under_p() {
    let sources = vec![src(
        "ro",
        "int limit;
         int seven;
         int peek(int p) { return (*p); }
         int main() {
             limit = 90;
             int acc = 0;
             for (int i = 0; i < limit; i = i + 1) { acc = acc + peek(&limit); }
             out(acc);
             return 0;
         }",
    )];
    let oracle = interpret_sources(&sources, &[]).unwrap().unwrap();
    let c = compile(&sources, &CompileOptions::paper(PaperConfig::C)).unwrap();
    let p = compile(&sources, &CompileOptions::paper(PaperConfig::P)).unwrap();
    // `limit` is written in main and its address flows into a live callee
    // that dereferences it: ind_ref + direct write means it must stay
    // demoted even under P (the callee reads the memory home).
    assert!(!promoted_syms(&p.database).contains("limit"));
    assert!(promoted_syms(&p.database).is_superset(&promoted_syms(&c.database)));
    for (config, program) in [(PaperConfig::C, &c), (PaperConfig::P, &p)] {
        let report = ipra_driver::verify_program(program);
        assert!(report.is_clean(), "{config} failed verification:\n{report}");
        let r = run_program(program, &[]).unwrap();
        assert_eq!(r.output, oracle.output, "{config} output diverged");
    }
}

/// An indirect write through a live pointer must demote under P too — the
/// solver is precise about *which* globals a pointer may target.
#[test]
fn live_indirect_write_still_demotes_under_p() {
    let sources = vec![src(
        "iw",
        "int tally;
         int other;
         int poke(int p, int v) { *p = v; return (*p); }
         int main() {
             for (int i = 0; i < 25; i = i + 1) {
                 poke(&tally, i);
                 other = other + tally;
             }
             out(tally);
             out(other);
             return 0;
         }",
    )];
    let oracle = interpret_sources(&sources, &[]).unwrap().unwrap();
    let p = compile(&sources, &CompileOptions::paper(PaperConfig::P)).unwrap();
    let promoted = promoted_syms(&p.database);
    assert!(!promoted.contains("tally"), "indirectly-written global promoted: {promoted:?}");
    // `other` is never address-taken anywhere; P keeps promoting it.
    assert!(promoted.contains("other"), "clean global lost its promotion: {promoted:?}");
    let report = ipra_driver::verify_program(&p);
    assert!(report.is_clean(), "P failed verification:\n{report}");
    let r = run_program(&p, &[]).unwrap();
    assert_eq!(r.output, oracle.output);
}
