#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build + test suite.
# Everything runs offline against the vendored stub crates; a clean exit
# here is what CI (and the next PR) expects to inherit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release -q
# The root build only compiles dependency *libraries*; the cminc binary
# lives in the cli crate and must be requested explicitly so the
# report smoke below never runs a stale binary.
cargo build --release -q -p ipra-cli

echo "==> tier-1: cargo test"
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> compile-time benchmark smoke (tiny workload, cache checks on)"
cargo run --release -q -p ipra-bench --bin compile_bench -- --modules 8 --check --out BENCH_compile.json
test -s BENCH_compile.json

echo "==> cminc report smoke (two runs must be byte-identical)"
report_dir="$(mktemp -d)"
trap 'rm -rf "$report_dir"' EXIT
cat > "$report_dir/counter.cmin" <<'EOF'
static int hits;
int total;
int bump(int k) { hits = hits + 1; total = total + k; return total; }
int hits_of() { return hits; }
EOF
cat > "$report_dir/app.cmin" <<'EOF'
extern int total;
extern int bump(int);
extern int hits_of();
int main() {
    for (int i = 0; i < 50; i = i + 1) { bump(i); }
    out(total);
    out(hits_of());
    return total;
}
EOF
cminc=target/release/cminc
for i in 1 2; do
  "$cminc" report "$report_dir/counter.cmin" "$report_dir/app.cmin" \
    --config-b C --json "$report_dir/report$i.json" > "$report_dir/table$i.txt"
done
cmp "$report_dir/report1.json" "$report_dir/report2.json"
cmp "$report_dir/table1.txt" "$report_dir/table2.txt"
grep -q '"reasons"' "$report_dir/report1.json"

echo "==> fuzz smoke (fixed seed, two jobs widths must agree byte-for-byte)"
"$cminc" fuzz --seed 1 --iters 150 --jobs 2 > "$report_dir/fuzz2.txt"
"$cminc" fuzz --seed 1 --iters 150 --jobs 8 > "$report_dir/fuzz8.txt"
cmp "$report_dir/fuzz2.txt" "$report_dir/fuzz8.txt"
grep -q '150 iterations, 0 failure(s)' "$report_dir/fuzz2.txt"

echo "==> regression corpus replay"
cargo test -q --test corpus

echo "All checks passed."
