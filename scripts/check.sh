#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build + test suite.
# Everything runs offline against the vendored stub crates; a clean exit
# here is what CI (and the next PR) expects to inherit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release -q

echo "==> tier-1: cargo test"
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> compile-time benchmark smoke (tiny workload, cache checks on)"
cargo run --release -q -p ipra-bench --bin compile_bench -- --modules 8 --check --out BENCH_compile.json
test -s BENCH_compile.json

echo "All checks passed."
