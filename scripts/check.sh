#!/usr/bin/env bash
# Repository gate: formatting, lints, and the tier-1 build + test suite.
# Everything runs offline against the vendored stub crates; a clean exit
# here is what CI (and the next PR) expects to inherit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release -q
# The root build only compiles dependency *libraries*; the cminc binary
# lives in the cli crate and must be requested explicitly so the
# report smoke below never runs a stale binary.
cargo build --release -q -p ipra-cli

echo "==> tier-1: cargo test"
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> simulator benchmark (both engines, parity gated)"
cargo run --release -q -p ipra-bench --bin sim_bench -- --check --out BENCH_sim.json
test -s BENCH_sim.json

echo "==> compile-time benchmark (8/64/256 modules, cache checks on, sim regime folded in)"
cargo run --release -q -p ipra-bench --bin compile_bench -- --check \
  --sim-json BENCH_sim.json --out BENCH_compile.json
test -s BENCH_compile.json
grep -q '"sim"' BENCH_compile.json

echo "==> cminc report smoke (two runs must be byte-identical)"
report_dir="$(mktemp -d)"
trap 'rm -rf "$report_dir"' EXIT
cat > "$report_dir/counter.cmin" <<'EOF'
static int hits;
int total;
int bump(int k) { hits = hits + 1; total = total + k; return total; }
int hits_of() { return hits; }
EOF
cat > "$report_dir/app.cmin" <<'EOF'
extern int total;
extern int bump(int);
extern int hits_of();
int main() {
    for (int i = 0; i < 50; i = i + 1) { bump(i); }
    out(total);
    out(hits_of());
    return total;
}
EOF
cminc=target/release/cminc
for i in 1 2; do
  "$cminc" report "$report_dir/counter.cmin" "$report_dir/app.cmin" \
    --config-b C --json "$report_dir/report$i.json" > "$report_dir/table$i.txt"
done
cmp "$report_dir/report1.json" "$report_dir/report2.json"
cmp "$report_dir/table1.txt" "$report_dir/table2.txt"
grep -q '"reasons"' "$report_dir/report1.json"

echo "==> fuzz smoke (fixed seed, two jobs widths must agree byte-for-byte)"
"$cminc" fuzz --seed 1 --iters 150 --jobs 2 > "$report_dir/fuzz2.txt"
"$cminc" fuzz --seed 1 --iters 150 --jobs 8 > "$report_dir/fuzz8.txt"
cmp "$report_dir/fuzz2.txt" "$report_dir/fuzz8.txt"
grep -q '150 iterations, 0 failure(s)' "$report_dir/fuzz2.txt"

echo "==> regression corpus replay"
cargo test -q --test corpus

echo "==> separate-compile smoke (artifact pipeline == one-shot build, byte-for-byte)"
# A Figure-3-shaped program: main(A) -> {B, C}, B -> {D, E}, C -> {F, G},
# G -> H, with shared globals g1-g3 split across two modules.
sep="$report_dir/sep"
mkdir -p "$sep"
cat > "$sep/m1.cmin" <<'EOF'
int g1;
int g2;
int g3;
extern int cc(int);
int dd(int x) { g1 = g1 + x; return g1; }
int ee(int x) { g2 = g2 + x; return g2; }
int bb(int x) { return dd(x) + ee(x + 1); }
int main() {
    int t = 0;
    for (int i = 0; i < 10; i = i + 1) { t = t + bb(i) + cc(i); }
    out(t);
    out(g1);
    out(g2);
    out(g3);
    return 0;
}
EOF
cat > "$sep/m2.cmin" <<'EOF'
extern int g1;
extern int g3;
static int h_calls;
int hh(int x) { h_calls = h_calls + 1; return x + h_calls; }
int gg(int x) { g3 = g3 + hh(x); return g3; }
int ff(int x) { return x * 2 + g1; }
int cc(int x) { return ff(x) + gg(x); }
EOF
ccache="$sep/.ccache"
"$cminc" c "$sep/m1.cmin" -o "$sep/m1.vo" --summary "$sep/m1.csum" --cache-dir "$ccache" 2>/dev/null
"$cminc" c "$sep/m2.cmin" -o "$sep/m2.vo" --summary "$sep/m2.csum" --cache-dir "$ccache" 2>/dev/null
"$cminc" analyze "$sep/m1.csum" "$sep/m2.csum" --config C -o "$sep/prog.cdir"
"$cminc" c "$sep/m1.cmin" -o "$sep/m1.vo" --dir "$sep/prog.cdir" --cache-dir "$ccache" 2>/dev/null
"$cminc" c "$sep/m2.cmin" -o "$sep/m2.vo" --dir "$sep/prog.cdir" --cache-dir "$ccache" 2>/dev/null
"$cminc" link "$sep/m1.vo" "$sep/m2.vo" -o "$sep/prog.vx"
"$cminc" verify "$sep/m1.vo" "$sep/m2.vo" --db "$sep/prog.cdir"
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C -o "$sep/prog2.vx" > /dev/null
cmp "$sep/prog.vx" "$sep/prog2.vx"
"$cminc" run "$sep/prog.vx" 2>/dev/null > "$sep/sep-run.txt"
"$cminc" run "$sep/prog2.vx" 2>/dev/null > "$sep/build-run.txt"
cmp "$sep/sep-run.txt" "$sep/build-run.txt"

echo "==> engine parity smoke (fast vs reference: identical output, stats, attribution)"
"$cminc" run "$sep/prog.vx" --engine fast --stats-json "$sep/fast-stats.json" 2>/dev/null > "$sep/fast-run.txt"
"$cminc" run "$sep/prog.vx" --engine ref --stats-json "$sep/ref-stats.json" 2>/dev/null > "$sep/ref-run.txt"
cmp "$sep/fast-run.txt" "$sep/ref-run.txt"
cmp "$sep/fast-stats.json" "$sep/ref-stats.json"
"$cminc" objdump "$sep/prog.vx" > /dev/null
"$cminc" objdump "$sep/prog.cdir" > /dev/null

echo "==> cross-target smoke (vpr bytes match the golden; rv32 builds, verifies, runs identically)"
# The machine-description refactor must never move a VPR byte: the linked
# executable is compared against the pre-refactor golden.
cmp "$sep/prog.vx" scripts/goldens/sep_C.vx
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C --target rv32 --verify \
  -o "$sep/prog-rv32.vx" > /dev/null
"$cminc" run "$sep/prog-rv32.vx" 2>/dev/null > "$sep/rv32-run.txt"
cmp "$sep/sep-run.txt" "$sep/rv32-run.txt"
# Headers name the target (objdump output lands in a file first: `grep -q`
# on a pipe would close it mid-print and SIGPIPE the tool under pipefail).
"$cminc" objdump "$sep/prog-rv32.vx" > "$sep/rv32-dump.txt"
grep -q 'target rv32' "$sep/rv32-dump.txt"
"$cminc" objdump "$sep/prog.vx" > "$sep/vpr-dump.txt"
grep -q 'target vpr' "$sep/vpr-dump.txt"

echo "==> telemetry smoke (Chrome-trace shape; metrics byte-identical across jobs widths)"
tele="$report_dir/tele"
mkdir -p "$tele"
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C --run -j 4 \
  --trace-out "$tele/trace.json" --metrics-out "$tele/m1.json" \
  --stats-json "$tele/stats.json" > /dev/null 2>&1
python3 - "$tele/trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty trace"
stacks = {}
for e in events:
    assert e["pid"] == 1, "pid is always 1"
    assert isinstance(e["tid"], int) and isinstance(e["ts"], int)
    stack = stacks.setdefault(e["tid"], [])
    if e["ph"] == "B":
        stack.append(e["name"])
    elif e["ph"] == "E":
        assert stack and stack.pop() == e["name"], f"unbalanced span {e['name']}"
    else:
        raise AssertionError(f"unexpected ph {e['ph']!r}")
assert all(not s for s in stacks.values()), "unfinished spans"
names = {e["name"] for e in events}
for want in ("build", "phase1", "analyze", "phase2", "link"):
    assert want in names, f"missing {want} span"
assert any(e["tid"] != 0 for e in events), "no worker-lane spans"
print(f"trace ok: {len(events)} events across {len(stacks)} lanes")
EOF
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C --run -j 1 \
  --metrics-out "$tele/m2.json" > /dev/null 2>&1
cmp "$tele/m1.json" "$tele/m2.json"
grep -q '"sim.cycles"' "$tele/m1.json"
grep -q '"schema": "ipra-build-stats-v1"' "$tele/stats.json"
# The profiler must render identically on both engines.
"$cminc" profile "$sep/prog.vx" --top 5 > "$tele/profile-fast.txt" 2>/dev/null
"$cminc" profile "$sep/prog.vx" --top 5 --engine ref > "$tele/profile-ref.txt" 2>/dev/null
cmp "$tele/profile-fast.txt" "$tele/profile-ref.txt"
grep -q 'procedures (self cycles):' "$tele/profile-fast.txt"
"$cminc" stats "$sep/m1.cmin" "$sep/m2.cmin" --config C --run > "$tele/stats-run.json" 2>/dev/null
grep -q '"sim.op.' "$tele/stats-run.json"
"$cminc" fuzz --seed 1 --iters 5 --metrics-out "$tele/fuzz.json" > /dev/null 2>&1
grep -q '"fuzz.iterations": 5' "$tele/fuzz.json"

echo "==> persistent cache smoke (second process recompiles only the edited module)"
bcache="$sep/.bcache"
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C --cache-dir "$bcache" -o "$sep/cache1.vx" > /dev/null
sed -i 's/x \* 2/x \* 3/' "$sep/m2.cmin"
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C --cache-dir "$bcache" --stats \
  -o "$sep/cache2.vx" > "$sep/cache-stats.txt" 2>&1
grep -q 'recompiled: m2$' "$sep/cache-stats.txt"
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C -o "$sep/nocache.vx" > /dev/null
cmp "$sep/cache2.vx" "$sep/nocache.vx"

echo "==> .vlib link smoke (unresolved library callee: clean failure, then trap stubs)"
cat > "$sep/libm.cmin" <<'EOF'
extern int ghost(int);
int helper(int k) { if (k) { return ghost(k); } return k + 5; }
EOF
cat > "$sep/app.cmin" <<'EOF'
extern int helper(int);
int main() { out(helper(in())); return 0; }
EOF
"$cminc" c "$sep/libm.cmin" -o "$sep/libm.vo" --summary "$sep/libm.csum" 2>/dev/null
"$cminc" lib "$sep/libm.vo" -o "$sep/mylib.vlib"
"$cminc" c "$sep/app.cmin" -o "$sep/app.vo" --summary "$sep/app.csum" 2>/dev/null
if "$cminc" link "$sep/app.vo" "$sep/mylib.vlib" -o "$sep/bad.vx" 2> "$sep/link-err.txt"; then
  echo "link with an unresolved callee unexpectedly succeeded" >&2
  exit 1
fi
grep -q 'ghost' "$sep/link-err.txt"
"$cminc" link "$sep/app.vo" "$sep/mylib.vlib" --allow-undefined -o "$sep/app.vx"
"$cminc" run "$sep/app.vx" --input "0" 2>/dev/null | grep -qx '5'
"$cminc" objdump "$sep/mylib.vlib" > /dev/null

echo "==> alias precision smoke (config P promotes strictly more than C on pointer code)"
al="$report_dir/alias"
mkdir -p "$al"
cat > "$al/hot.cmin" <<'EOF'
int counter;
int scratch;
int step(int k) { counter = counter + k; return counter; }
int peek(int p) { return (*p); }
static int never_called(int x) {
    int p = &counter;
    *p = x;
    return (*p);
}
EOF
cat > "$al/papp.cmin" <<'EOF'
extern int counter;
extern int scratch;
extern int step(int);
extern int peek(int);
int main() {
    for (int i = 0; i < 40; i = i + 1) {
        step(i);
        scratch = scratch + peek(&scratch);
    }
    out(counter);
    out(scratch);
    return 0;
}
EOF
# Behavior must be bit-identical across the two configurations.
"$cminc" build "$al/hot.cmin" "$al/papp.cmin" --config C -o "$al/c.vx" > /dev/null
"$cminc" build "$al/hot.cmin" "$al/papp.cmin" --config P -o "$al/p.vx" > /dev/null
"$cminc" run "$al/c.vx" 2>/dev/null > "$al/c-run.txt"
"$cminc" run "$al/p.vx" 2>/dev/null > "$al/p-run.txt"
cmp "$al/c-run.txt" "$al/p-run.txt"
# The points-to solver must promote strictly more globals than the blanket
# address-taken flags: `counter` only escapes in dead code.
"$cminc" c "$al/hot.cmin" -o "$al/hot.vo" --summary "$al/hot.csum" 2>/dev/null
"$cminc" c "$al/papp.cmin" -o "$al/papp.vo" --summary "$al/papp.csum" 2>/dev/null
"$cminc" analyze "$al/hot.csum" "$al/papp.csum" --config C -o "$al/c.cdir"
"$cminc" analyze "$al/hot.csum" "$al/papp.csum" --config P -o "$al/p.cdir"
count_promoted() {
  # `|| true`: a database with zero promotions is a legal count, not an error.
  "$cminc" objdump "$1" | { grep '^  promote' || true; } | awk '{print $2}' | sort -u | wc -l
}
nc="$(count_promoted "$al/c.cdir")"
np="$(count_promoted "$al/p.cdir")"
if [ "$np" -le "$nc" ]; then
  echo "alias smoke: P promoted $np globals, expected strictly more than C's $nc" >&2
  exit 1
fi
# The alias-aware report must be byte-deterministic, like the C one above.
for i in 1 2; do
  "$cminc" report "$al/hot.cmin" "$al/papp.cmin" \
    --config-b P --json "$al/report$i.json" > "$al/table$i.txt"
done
cmp "$al/report1.json" "$al/report2.json"
cmp "$al/table1.txt" "$al/table2.txt"

echo "==> daemon smoke (serve, concurrent remote builds == local build, drain, fallback)"
dm="$report_dir/daemon"
mkdir -p "$dm"
dsock="$dm/cmind.sock"
"$cminc" serve --socket "$dsock" --shards 2 --cap 64 2> "$dm/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$dsock" ] && break
  sleep 0.1
done
[ -S "$dsock" ] || { echo "daemon socket never appeared" >&2; exit 1; }
"$cminc" remote ping --socket "$dsock" | grep -qx 'pong'
# Two concurrent clients submitting the same program: both must return
# bytes identical to each other and to a plain local `cminc build`.
"$cminc" remote build --socket "$dsock" "$sep/m1.cmin" "$sep/m2.cmin" \
  --config C -o "$dm/r1.vx" 2>/dev/null &
c1=$!
"$cminc" remote build --socket "$dsock" "$sep/m1.cmin" "$sep/m2.cmin" \
  --config C -o "$dm/r2.vx" 2>/dev/null &
c2=$!
wait "$c1" "$c2"
"$cminc" build "$sep/m1.cmin" "$sep/m2.cmin" --config C -o "$dm/local.vx" > /dev/null
cmp "$dm/r1.vx" "$dm/r2.vx"
cmp "$dm/r1.vx" "$dm/local.vx"
"$cminc" remote stats --socket "$dsock" > "$dm/stats.json"
grep -q '"daemon.builds"' "$dm/stats.json"
"$cminc" remote shutdown --socket "$dsock"
wait "$serve_pid"
[ ! -e "$dsock" ] || { echo "daemon left its socket file behind" >&2; exit 1; }
# Daemon gone: `remote build` must degrade to a byte-identical local compile.
"$cminc" remote build --socket "$dsock" "$sep/m1.cmin" "$sep/m2.cmin" \
  --config C -o "$dm/fallback.vx" 2> "$dm/fallback.log"
grep -q 'building locally' "$dm/fallback.log"
cmp "$dm/fallback.vx" "$dm/local.vx"

echo "==> daemon benchmark (cold/warm/N-client throughput, dedup gated)"
cargo run --release -q -p ipra-bench --bin daemon_bench -- --check \
  --out BENCH_daemon.json
test -s BENCH_daemon.json
grep -q '"warm_n_over_cold_1"' BENCH_daemon.json

echo "All checks passed."
