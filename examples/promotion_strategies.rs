//! Comparing the promotion strategies of the paper's evaluation (Table 4
//! columns C, D and E): reserved-register web coloring vs. greedy coloring
//! vs. Wall-style blanket promotion, on a program whose globals are hot in
//! *disjoint phases* — the shape where webs beat a dedicated register per
//! global.
//!
//! ```sh
//! cargo run --example promotion_strategies
//! ```

use ipra_core::PaperConfig;
use ipra_driver::{compile, run_program, CompileOptions, SourceFile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three phases, each with its own hot globals. A blanket scheme must
    // dedicate one register per global for the whole program; web coloring
    // reuses the same registers phase by phase.
    let sources = [SourceFile::new(
        "phases",
        "int p1_a; int p1_b; int p1_c;
         int p2_a; int p2_b; int p2_c;
         int p3_a; int p3_b; int p3_c;
         int phase1(int n) {
             for (int i = 0; i < n; i = i + 1) {
                 p1_a = p1_a + i; p1_b = p1_b + p1_a; p1_c = p1_c + p1_b % 97;
             }
             return p1_c;
         }
         int phase2(int n) {
             for (int i = 0; i < n; i = i + 1) {
                 p2_a = p2_a + 2 * i; p2_b = p2_b + p2_a; p2_c = p2_c + p2_b % 89;
             }
             return p2_c;
         }
         int phase3(int n) {
             for (int i = 0; i < n; i = i + 1) {
                 p3_a = p3_a + 3 * i; p3_b = p3_b + p3_a; p3_c = p3_c + p3_b % 83;
             }
             return p3_c;
         }
         int main() {
             int n = 2000;
             out(phase1(n));
             out(phase2(n));
             out(phase3(n));
             return 0;
         }",
    )];

    let baseline = compile(&sources, &CompileOptions::paper(PaperConfig::L2))?;
    let rb = run_program(&baseline, &[])?;

    println!("nine hot globals, three disjoint phases, three registers of headroom:\n");
    println!("{:<26} {:>8} {:>10} {:>10} {:>8}", "strategy", "webs", "colored", "cycles", "refs");
    for (label, config) in [
        ("C: web coloring (6 regs)", PaperConfig::C),
        ("D: greedy coloring", PaperConfig::D),
        ("E: blanket promotion (6)", PaperConfig::E),
    ] {
        let p = compile(&sources, &CompileOptions::paper(config))?;
        let r = run_program(&p, &[])?;
        assert_eq!(r.output, rb.output, "{label} changed behavior");
        println!(
            "{label:<26} {:>8} {:>10} {:>10} {:>8}",
            p.stats.webs_total,
            p.stats.webs_colored,
            r.stats.cycles,
            r.stats.singleton_refs()
        );
    }
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>8}",
        "L2 baseline",
        "-",
        "-",
        rb.stats.cycles,
        rb.stats.singleton_refs()
    );
    println!("\nweb coloring promotes all nine globals with six registers; blanket");
    println!("promotion covers only the six hottest — the paper's §6.2 observation");
    println!("that \"in larger applications ... web coloring is advantageous\".");
    Ok(())
}
