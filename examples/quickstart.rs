//! Quickstart: compile a two-module program through the full two-pass
//! pipeline, run it on the simulator, and compare the baseline against
//! interprocedural register allocation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ipra_core::PaperConfig;
use ipra_driver::{compile, run_program, CompileOptions, SourceFile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little two-module program: a counter module with a module-private
    // (static) global and an application that hammers it.
    let sources = [
        SourceFile::new(
            "counter",
            "static int hits;
             int total;
             int bump(int k) { hits = hits + 1; total = total + k; return total; }
             int hits_seen() { return hits; }",
        ),
        SourceFile::new(
            "app",
            "extern int total;
             extern int bump(int);
             extern int hits_seen();
             int main() {
                 for (int i = 0; i < 1000; i = i + 1) { bump(i % 10); }
                 out(total);
                 out(hits_seen());
                 return 0;
             }",
        ),
    ];

    println!("== two-pass pipeline (paper Figure 1) ==");
    println!("phase 1: parse, check, optimize, summarize each module");
    println!("analyzer: build call graph, promote webs, move spill code");
    println!("phase 2: allocate registers under the directives, emit, link\n");

    let baseline = compile(&sources, &CompileOptions::paper(PaperConfig::L2))?;
    let rb = run_program(&baseline, &[])?;

    let optimized = compile(&sources, &CompileOptions::paper(PaperConfig::C))?;
    let ro = run_program(&optimized, &[])?;

    assert_eq!(rb.output, ro.output, "optimization must not change behavior");
    println!("program output: {:?}\n", ro.output);

    println!("analyzer statistics (config C):");
    println!("  call graph nodes: {}", optimized.stats.nodes);
    println!("  eligible globals: {}", optimized.stats.eligible_globals);
    println!(
        "  webs: {} found, {} colored",
        optimized.stats.webs_total, optimized.stats.webs_colored
    );
    println!("  clusters: {}\n", optimized.stats.clusters);

    let cyc_gain =
        100.0 * (rb.stats.cycles as f64 - ro.stats.cycles as f64) / rb.stats.cycles as f64;
    let ref_gain = 100.0 * (rb.stats.singleton_refs() as f64 - ro.stats.singleton_refs() as f64)
        / rb.stats.singleton_refs() as f64;
    println!("            {:>14} {:>14}", "L2 baseline", "config C");
    println!("cycles      {:>14} {:>14}", rb.stats.cycles, ro.stats.cycles);
    println!("singleton   {:>14} {:>14}", rb.stats.singleton_refs(), ro.stats.singleton_refs());
    println!("\nimprovement: {cyc_gain:.1}% cycles, {ref_gain:.1}% singleton memory references");

    // Show the directives the analyzer computed for the hot procedure.
    let bump = optimized.database.lookup("bump");
    println!("\ndirectives for `bump`:");
    for p in &bump.promotions {
        println!(
            "  promote {} -> {} ({})",
            p.sym,
            p.reg,
            if p.is_entry { "web entry" } else { "member" }
        );
    }
    println!("  FREE   = {}", bump.usage.free);
    println!("  CALLER = {}", bump.usage.caller);
    println!("  CALLEE = {}", bump.usage.callee);
    println!("  MSPILL = {}", bump.usage.mspill);
    Ok(())
}
