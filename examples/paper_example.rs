//! The paper's §4.1.4 worked example, end to end: builds the Figure 3 call
//! graph (procedures A–H, globals g1–g3), runs the program analyzer, and
//! prints the reproduction of Table 1 (reference sets) and Table 2 (webs
//! and their two-register coloring).
//!
//! ```sh
//! cargo run --example paper_example
//! ```

use ipra_core::analyzer::{analyze, AnalyzerOptions, PromotionMode};
use ipra_core::callgraph::CallGraph;
use ipra_core::dataflow::{Eligibility, RefSets};
use ipra_summary::{CallRef, GlobalFact, GlobalRef, ModuleSummary, ProcSummary, ProgramSummary};

fn figure3() -> ProgramSummary {
    let proc = |name: &str, calls: &[&str], refs: &[&str]| ProcSummary {
        name: name.into(),
        module: "fig3".into(),
        global_refs: refs
            .iter()
            .map(|g| GlobalRef {
                sym: g.to_string(),
                freq: 10,
                written: true,
                ptr_mod: false,
                ptr_ref: false,
                escapes: false,
            })
            .collect(),
        calls: calls.iter().map(|c| CallRef { callee: c.to_string(), freq: 1 }).collect(),
        taken_addresses: vec![],
        makes_indirect_calls: false,
        callee_saves_estimate: 2,
        caller_saves_estimate: 2,
        alias: Default::default(),
    };
    let global = |sym: &str| GlobalFact {
        sym: sym.into(),
        size: 1,
        is_array: false,
        is_static: false,
        module: "fig3".into(),
        init: vec![],
    };
    ProgramSummary {
        modules: vec![ModuleSummary {
            module: "fig3".into(),
            procs: vec![
                proc("A", &["B", "C"], &["g3"]),
                proc("B", &["D", "E"], &["g1", "g3"]),
                proc("C", &["F", "G"], &["g2", "g3"]),
                proc("D", &[], &["g1"]),
                proc("E", &[], &["g1", "g2"]),
                proc("F", &[], &["g2"]),
                proc("G", &["H"], &["g2"]),
                proc("H", &[], &[]),
            ],
            globals: vec![global("g1"), global("g2"), global("g3")],
        }],
    }
}

fn main() {
    let summary = figure3();
    let graph = CallGraph::build(&summary, None);
    let elig = Eligibility::compute(&graph, &summary);
    let refs = RefSets::compute(&graph, &elig);

    println!("== Table 1: reference sets over the Figure 3 call graph ==\n");
    println!("{:<10} {:<12} {:<12} {:<12}", "Procedure", "L_REF", "C_REF", "P_REF");
    for node in graph.node_ids() {
        let name = &graph.node(node).name;
        let set = |kind: u8| {
            elig.ids()
                .filter(|&g| match kind {
                    0 => refs.in_l(node, g),
                    1 => refs.in_c(node, g),
                    _ => refs.in_p(node, g),
                })
                .map(|g| elig.global(g).sym.clone())
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("{name:<10} {:<12} {:<12} {:<12}", set(0), set(1), set(2));
    }

    let analysis = analyze(
        &summary,
        &AnalyzerOptions {
            promotion: PromotionMode::Coloring { registers: 2 },
            spill_motion: false,
            ..AnalyzerOptions::default()
        },
    );

    println!("\n== Table 2: webs and their coloring (2 reserved registers) ==\n");
    println!("{:<5} {:<9} {:<12} {:<10} {:<8}", "Web", "Variable", "Nodes", "Entries", "Register");
    for (i, w) in analysis.webs.iter().enumerate() {
        println!(
            "{:<5} {:<9} {:<12} {:<10} {:<8}",
            i + 1,
            w.sym,
            w.nodes.join(" "),
            w.entries.join(" "),
            w.reg.map(|r| r.to_string()).unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "\n{} webs colored with 2 callee-saves registers (paper: all four).",
        analysis.stats.webs_colored
    );
}
