//! Spill code motion in action (paper §4.2, Figure 4): a call-intensive
//! region where a root procedure executes the callee-saves spill code for
//! its hot children, who then use the registers for free.
//!
//! ```sh
//! cargo run --example spill_motion
//! ```

use ipra_core::PaperConfig;
use ipra_driver::{compile, run_program, CompileOptions, SourceFile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // R is entered once per outer iteration but calls S and T in a hot
    // loop; S and T each need callee-saves registers (values live across
    // their own calls to W).
    let sources = [SourceFile::new(
        "cluster",
        "int acc;
         int w(int x) { return x + 1; }
         int s(int a, int b) {
             int keep1 = a * 2;
             int keep2 = b * 3;
             int r = w(a);
             return keep1 + keep2 + r;
         }
         int t(int a) {
             int keep = a * 5;
             int r = w(a);
             return keep - r;
         }
         int r(int n) {
             int sum = 0;
             for (int i = 0; i < n; i = i + 1) {
                 sum = sum + s(i, n) + t(i);
             }
             return sum;
         }
         int main() {
             acc = 0;
             for (int outer = 0; outer < 20; outer = outer + 1) {
                 acc = acc + r(50);
             }
             out(acc);
             return 0;
         }",
    )];

    let baseline = compile(&sources, &CompileOptions::paper(PaperConfig::L2))?;
    let moved = compile(&sources, &CompileOptions::paper(PaperConfig::A))?;

    println!("== cluster identification (config A: spill motion only) ==\n");
    println!("clusters found: {}", moved.stats.clusters);
    println!("average cluster size: {:.1} (paper reports 2-4)\n", moved.stats.avg_cluster_size);

    for name in ["main", "r", "s", "t", "w"] {
        let d = moved.database.lookup(name);
        println!(
            "{name:<5} root={:<5} FREE={:<16} MSPILL={:<16} CALLEE={}",
            d.is_cluster_root,
            d.usage.free.to_string(),
            d.usage.mspill.to_string(),
            d.usage.callee
        );
    }

    let rb = run_program(&baseline, &[])?;
    let rm = run_program(&moved, &[])?;
    assert_eq!(rb.output, rm.output);

    println!("\n== effect (Figure 4's intuition) ==\n");
    println!("            {:>12} {:>12}", "L2", "A (motion)");
    println!("cycles      {:>12} {:>12}", rb.stats.cycles, rm.stats.cycles);
    println!("spill refs  {:>12} {:>12}", rb.stats.singleton_refs(), rm.stats.singleton_refs());
    let gain = 100.0 * (rb.stats.singleton_refs() as f64 - rm.stats.singleton_refs() as f64)
        / rb.stats.singleton_refs() as f64;
    println!("\nthe root now saves the registers once per entry; its children");
    println!("run save/restore-free: {gain:.1}% fewer singleton memory references");
    Ok(())
}
