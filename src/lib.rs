//! Re-exports for the IPRA reproduction workspace.
pub use cmin_codegen as codegen;
pub use cmin_frontend as frontend;
pub use cmin_ir as ir;
pub use ipra_core as core;
pub use ipra_driver as driver;
pub use ipra_summary as summary;
pub use ipra_workloads as workloads;
pub use vpr;
