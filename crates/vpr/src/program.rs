//! Machine functions, object modules, and the linker.
//!
//! The compiler second phase produces one [`ObjectModule`] per source module,
//! exactly as in the paper's Figure 1; [`link`] binds the modules together,
//! lays out the global data segment, resolves relocatable pseudo
//! instructions, and produces an [`Executable`] for the
//! [simulator](crate::sim).

use crate::inst::{AluOp, Inst, Label, MemClass};
use crate::target::{TargetDesc, TargetId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// First word address of the global data segment. `DP` points here.
pub const GLOBALS_BASE: i64 = 16;

/// Largest displacement reachable from `DP` in a single `LDW`/`STW`
/// (models PA-RISC's 14-bit displacement field). Globals laid out beyond
/// this need an extra base-setup instruction (`ADDIL` in the paper).
pub const DP_DISP_LIMIT: i64 = 2048;

/// Default simulated memory size in words.
pub const DEFAULT_MEM_WORDS: usize = 1 << 21;

/// A compiled procedure: a straight-line vector of instructions plus a label
/// table mapping [`Label`] ids to instruction indices within the function.
///
/// # Examples
///
/// ```
/// use vpr::program::MachineFunction;
/// use vpr::inst::Inst;
/// use vpr::regs::Reg;
/// let mut f = MachineFunction::new("main");
/// f.push(Inst::Ldi { rd: Reg::RV, imm: 42 });
/// f.push(Inst::Bv { base: Reg::RP });
/// assert_eq!(f.insts().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineFunction {
    name: String,
    insts: Vec<Inst>,
    labels: Vec<Option<usize>>,
}

impl MachineFunction {
    /// Creates an empty function named `name`.
    pub fn new(name: impl Into<String>) -> MachineFunction {
        MachineFunction { name: name.into(), insts: Vec::new(), labels: Vec::new() }
    }

    /// The procedure's (module-qualified) link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction vector.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the instruction vector (used by peephole cleanups).
    pub fn insts_mut(&mut self) -> &mut Vec<Inst> {
        &mut self.insts
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Reserves a fresh, not-yet-placed label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label((self.labels.len() - 1) as u32)
    }

    /// Binds `label` to the *next* instruction to be pushed.
    ///
    /// # Panics
    ///
    /// Panics if the label is unknown or already bound.
    pub fn bind_label(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(self.insts.len());
    }

    /// The instruction index a label is bound to, if bound.
    pub fn label_target(&self, label: Label) -> Option<usize> {
        self.labels.get(label.0 as usize).copied().flatten()
    }

    /// Number of labels allocated so far.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Deletes every [`Inst::Nop`], shifting label bindings to keep them on
    /// the same following instruction. Used by peephole cleanups that blank
    /// out instructions in place.
    pub fn remove_nops(&mut self) {
        // new_pos[i] = index of instruction i after compaction (or of the
        // next surviving instruction, for labels bound to a removed NOP).
        let mut new_pos = Vec::with_capacity(self.insts.len() + 1);
        let mut kept = 0usize;
        for inst in &self.insts {
            new_pos.push(kept);
            if !matches!(inst, Inst::Nop) {
                kept += 1;
            }
        }
        new_pos.push(kept);
        for slot in self.labels.iter_mut().flatten() {
            *slot = new_pos[*slot];
        }
        self.insts.retain(|i| !matches!(i, Inst::Nop));
    }
}

/// A global variable definition contributed by one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalDef {
    /// Link name (module-qualified for `static` globals).
    pub sym: String,
    /// Size in words (1 for scalars).
    pub size: usize,
    /// Static initializer, padded with zeros to `size`.
    pub init: Vec<i64>,
}

/// The output of compiling one source module: functions plus global
/// definitions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectModule {
    /// Module name (diagnostic only).
    pub name: String,
    /// Compiled procedures.
    pub functions: Vec<MachineFunction>,
    /// Globals *defined* by this module (not mere `extern` references).
    pub globals: Vec<GlobalDef>,
    /// The target the module was compiled for. The linker refuses to mix
    /// targets. Serialized only when not [`TargetId::Vpr`], so VPR `.vo`
    /// artifacts keep their pre-machine-description bytes.
    #[serde(default, skip_default)]
    pub target: TargetId,
}

impl ObjectModule {
    /// A VPR-target module with the given functions and no globals (the
    /// common test and doc-example shape).
    pub fn new(name: impl Into<String>, functions: Vec<MachineFunction>) -> ObjectModule {
        ObjectModule {
            name: name.into(),
            functions,
            globals: Vec::new(),
            target: TargetId::default(),
        }
    }
}

/// Information about one linked procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncInfo {
    /// Link name.
    pub name: String,
    /// Absolute entry address.
    pub entry: usize,
    /// Number of instructions.
    pub len: usize,
}

/// Information about one linked global.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalInfo {
    /// Link name.
    pub sym: String,
    /// Absolute word address.
    pub addr: i64,
    /// Size in words.
    pub size: usize,
}

/// A fully linked program, ready for the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Executable {
    insts: Vec<Inst>,
    funcs: Vec<FuncInfo>,
    globals: Vec<GlobalInfo>,
    data_init: Vec<(i64, i64)>,
    // Ordered so serialized executables are byte-stable run-to-run.
    entry_to_func: BTreeMap<usize, usize>,
    // Serialized only when not VPR, keeping pre-existing `.vx` bytes.
    #[serde(default, skip_default)]
    target: TargetId,
}

impl Executable {
    /// The linked instruction stream. Execution starts at address 0.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The target the program was linked for. The simulators fetch their
    /// role registers (`sp`, `dp`, `rp`, `rv`) from this.
    pub fn target(&self) -> TargetId {
        self.target
    }

    /// Per-procedure link information, in link order.
    pub fn funcs(&self) -> &[FuncInfo] {
        &self.funcs
    }

    /// Per-global link information, in layout order.
    pub fn globals(&self) -> &[GlobalInfo] {
        &self.globals
    }

    /// `(address, value)` pairs of statically initialized data words.
    pub fn data_init(&self) -> &[(i64, i64)] {
        &self.data_init
    }

    /// Finds a function's index by its entry address (used by the profiler).
    pub fn func_at_entry(&self, entry: usize) -> Option<usize> {
        self.entry_to_func.get(&entry).copied()
    }

    /// Finds a function by name.
    pub fn func_named(&self, name: &str) -> Option<&FuncInfo> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a global's address by name.
    pub fn global_addr(&self, sym: &str) -> Option<i64> {
        self.globals.iter().find(|g| g.sym == sym).map(|g| g.addr)
    }

    /// Resolves a code address to `proc+offset` via the function table.
    /// Returns `None` for addresses outside any linked procedure (the
    /// two-instruction startup stub, or a wild pc).
    pub fn symbolize(&self, pc: usize) -> Option<String> {
        let (&entry, &idx) = self.entry_to_func.range(..=pc).next_back()?;
        let f = &self.funcs[idx];
        if pc < entry + f.len {
            Some(format!("{}+{}", f.name, pc - entry))
        } else {
            None
        }
    }

    /// Total static code size in instructions.
    pub fn code_len(&self) -> usize {
        self.insts.len()
    }
}

/// Errors produced while linking object modules.
#[allow(missing_docs)] // variant fields are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The same global was defined by two modules.
    DuplicateGlobal(String),
    /// The same procedure was defined by two modules.
    DuplicateFunction(String),
    /// An instruction referenced an undefined global.
    UndefinedGlobal { sym: String, in_func: String },
    /// A call or address-of referenced an undefined procedure.
    UndefinedFunction { name: String, in_func: String },
    /// No `main` procedure was linked.
    NoMain,
    /// A branch used a label that was never bound.
    UnboundLabel { label: Label, in_func: String },
    /// Object modules compiled for different targets were linked together.
    TargetMismatch { expected: TargetId, found: TargetId, module: String },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateGlobal(s) => write!(f, "global `{s}` defined more than once"),
            LinkError::DuplicateFunction(s) => {
                write!(f, "procedure `{s}` defined more than once")
            }
            LinkError::UndefinedGlobal { sym, in_func } => {
                write!(f, "undefined global `{sym}` referenced from `{in_func}`")
            }
            LinkError::UndefinedFunction { name, in_func } => {
                write!(f, "undefined procedure `{name}` referenced from `{in_func}`")
            }
            LinkError::NoMain => write!(f, "no `main` procedure"),
            LinkError::UnboundLabel { label, in_func } => {
                write!(f, "unbound label {label} in `{in_func}`")
            }
            LinkError::TargetMismatch { expected, found, module } => {
                write!(
                    f,
                    "module `{module}` was compiled for target `{found}`, expected `{expected}`"
                )
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Linker options (see [`link_with`]).
#[derive(Debug, Clone, Default)]
pub struct LinkOptions {
    /// Permit procedure references no linked module defines — the
    /// library-build case where a `.vlib` member calls back into code the
    /// final program never provides. Each unresolved procedure gets a
    /// one-instruction *trap stub* appended after all real code, so the
    /// link succeeds, `symbolize` names it, and actually calling it raises
    /// a memory fault at `sym+0` instead of executing garbage. Undefined
    /// *globals* always stay hard errors.
    pub allow_undefined_functions: bool,
}

/// Links object modules into an [`Executable`].
///
/// Layout: a two-instruction startup stub (`CALL main; HALT`) at address 0,
/// followed by each module's functions in order. Globals are laid out from
/// [`GLOBALS_BASE`] in definition order, scalars first so that as many as
/// possible stay within single-instruction reach of `DP`.
///
/// # Errors
///
/// Returns a [`LinkError`] for duplicate or missing definitions, a missing
/// `main`, or an unbound branch label.
///
/// # Examples
///
/// ```
/// # use vpr::program::{link, MachineFunction, ObjectModule};
/// # use vpr::inst::Inst;
/// # use vpr::regs::Reg;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut f = MachineFunction::new("main");
/// f.push(Inst::Bv { base: Reg::RP });
/// let module = ObjectModule { name: "m".into(), functions: vec![f], globals: vec![], ..Default::default() };
/// let exe = link(&[module])?;
/// assert_eq!(exe.func_named("main").unwrap().entry, 2);
/// # Ok(())
/// # }
/// ```
pub fn link(modules: &[ObjectModule]) -> Result<Executable, LinkError> {
    link_with(modules, &LinkOptions::default())
}

/// [`link`] with explicit [`LinkOptions`].
///
/// Symbol resolution happens *before* emission: duplicate definitions,
/// a missing `main`, and undefined references are all diagnosed from the
/// modules' [symbol tables](crate::object::program_symbols) up front, in
/// module order. With
/// [`allow_undefined_functions`](LinkOptions::allow_undefined_functions),
/// unresolved procedures link against synthesized trap stubs (appended in
/// name order after all real code) instead of failing.
///
/// # Errors
///
/// Returns a [`LinkError`] as for [`link`]; undefined procedures are
/// errors only when not allowed by `opts`.
pub fn link_with(modules: &[ObjectModule], opts: &LinkOptions) -> Result<Executable, LinkError> {
    // 0. Every module must agree on the target; the executable carries it
    //    so the simulators can fetch their role registers.
    let target = modules.first().map(|m| m.target).unwrap_or_default();
    for m in modules {
        if m.target != target {
            return Err(LinkError::TargetMismatch {
                expected: target,
                found: m.target,
                module: m.name.clone(),
            });
        }
    }
    let desc = target.desc();

    // 1. Lay out globals: scalars first, then aggregates.
    let mut globals: Vec<GlobalInfo> = Vec::new();
    let mut global_addr: HashMap<&str, i64> = HashMap::new();
    let mut data_init: Vec<(i64, i64)> = Vec::new();
    let mut next = GLOBALS_BASE;
    let mut defs: Vec<&GlobalDef> = Vec::new();
    for m in modules {
        for g in &m.globals {
            defs.push(g);
        }
    }
    defs.sort_by_key(|g| g.size > 1); // stable: scalars first, otherwise module order
    for g in defs {
        if global_addr.contains_key(g.sym.as_str()) {
            return Err(LinkError::DuplicateGlobal(g.sym.clone()));
        }
        global_addr.insert(&g.sym, next);
        globals.push(GlobalInfo { sym: g.sym.clone(), addr: next, size: g.size });
        for (i, &v) in g.init.iter().enumerate().take(g.size) {
            if v != 0 {
                data_init.push((next + i as i64, v));
            }
        }
        next += g.size as i64;
    }

    // 2. Collect procedure definitions (duplicates are errors) and check
    //    for `main` — a stub never satisfies the entry point.
    let mut defined: HashSet<&str> = HashSet::new();
    for m in modules {
        for f in &m.functions {
            if !defined.insert(f.name()) {
                return Err(LinkError::DuplicateFunction(f.name().to_string()));
            }
        }
    }
    if !defined.contains("main") {
        return Err(LinkError::NoMain);
    }

    // 3. Resolve every relocation up front, in (module, function,
    //    instruction) order, collecting trap stubs where allowed.
    let mut stubs: BTreeSet<String> = BTreeSet::new();
    for m in modules {
        for r in m.relocations() {
            if r.kind.is_function() {
                if !defined.contains(r.sym.as_str()) && !stubs.contains(&r.sym) {
                    if opts.allow_undefined_functions {
                        stubs.insert(r.sym);
                    } else {
                        return Err(LinkError::UndefinedFunction { name: r.sym, in_func: r.func });
                    }
                }
            } else if !global_addr.contains_key(r.sym.as_str()) {
                return Err(LinkError::UndefinedGlobal { sym: r.sym, in_func: r.func });
            }
        }
    }

    // 4. Measure expanded function sizes to fix every entry address; trap
    //    stubs (one instruction each) go after all real code, in name order.
    let stub_len = 2usize;
    let mut func_entry: HashMap<&str, usize> = HashMap::new();
    let mut infos: Vec<FuncInfo> = Vec::new();
    let mut pc = stub_len;
    for m in modules {
        for f in &m.functions {
            let len: usize = f.insts().iter().map(|i| expansion_len(i, &global_addr)).sum();
            func_entry.insert(f.name(), pc);
            infos.push(FuncInfo { name: f.name().to_string(), entry: pc, len });
            pc += len;
        }
    }
    for s in &stubs {
        func_entry.insert(s.as_str(), pc);
        infos.push(FuncInfo { name: s.clone(), entry: pc, len: 1 });
        pc += 1;
    }
    let main_entry = func_entry["main"];

    // 5. Emit, resolving pseudos and labels.
    let mut insts: Vec<Inst> = Vec::with_capacity(pc);
    insts.push(Inst::CallAbs { entry: main_entry as u32 });
    insts.push(Inst::Halt);
    for m in modules {
        for f in &m.functions {
            emit_function(f, desc, &global_addr, &func_entry, &mut insts)?;
        }
    }
    for _ in &stubs {
        // Unconditional memory fault: address −1 is below every mapped
        // word, so an activated stub traps at `sym+0` (see `symbolize`).
        insts.push(Inst::Ldw {
            rd: desc.scratch1,
            base: desc.zero,
            disp: -1,
            class: MemClass::Indirect,
        });
    }
    debug_assert_eq!(insts.len(), pc);

    let entry_to_func = infos.iter().enumerate().map(|(i, fi)| (fi.entry, i)).collect();
    Ok(Executable { insts, funcs: infos, globals, data_init, entry_to_func, target })
}

/// How many real instructions `inst` expands to once linked.
fn expansion_len(inst: &Inst, global_addr: &HashMap<&str, i64>) -> usize {
    match inst {
        Inst::Ldg { sym, offset, .. } | Inst::Stg { sym, offset, .. } => {
            match global_addr.get(sym.as_str()) {
                Some(addr) => {
                    let disp = addr - GLOBALS_BASE + offset;
                    if disp < DP_DISP_LIMIT {
                        1
                    } else {
                        2 // needs an ADDIL-style base setup
                    }
                }
                None => 1, // error reported during emission
            }
        }
        _ => 1,
    }
}

fn emit_function(
    f: &MachineFunction,
    desc: &TargetDesc,
    global_addr: &HashMap<&str, i64>,
    func_entry: &HashMap<&str, usize>,
    out: &mut Vec<Inst>,
) -> Result<(), LinkError> {
    let base = out.len();
    // Map original instruction index -> emitted absolute address.
    let mut pos = Vec::with_capacity(f.insts().len() + 1);
    let mut pc = base;
    for inst in f.insts() {
        pos.push(pc);
        pc += expansion_len(inst, global_addr);
    }
    pos.push(pc); // labels may point one past the end

    let resolve_label = |l: Label| -> Result<Label, LinkError> {
        let idx = f
            .label_target(l)
            .ok_or_else(|| LinkError::UnboundLabel { label: l, in_func: f.name().to_string() })?;
        Ok(Label(pos[idx] as u32))
    };
    let resolve_global = |sym: &str| -> Result<i64, LinkError> {
        global_addr.get(sym).copied().ok_or_else(|| LinkError::UndefinedGlobal {
            sym: sym.to_string(),
            in_func: f.name().to_string(),
        })
    };
    let resolve_func = |name: &str| -> Result<usize, LinkError> {
        func_entry.get(name).copied().ok_or_else(|| LinkError::UndefinedFunction {
            name: name.to_string(),
            in_func: f.name().to_string(),
        })
    };

    for inst in f.insts() {
        match inst {
            Inst::Ldg { rd, sym, offset, class } => {
                let addr = resolve_global(sym)?;
                let disp = addr - GLOBALS_BASE + offset;
                if disp < DP_DISP_LIMIT {
                    out.push(Inst::Ldw { rd: *rd, base: desc.dp, disp, class: *class });
                } else {
                    // Base setup through the assembler temporary.
                    out.push(Inst::Alui {
                        op: AluOp::Add,
                        rd: desc.scratch1,
                        rs1: desc.dp,
                        imm: disp,
                    });
                    out.push(Inst::Ldw { rd: *rd, base: desc.scratch1, disp: 0, class: *class });
                }
            }
            Inst::Stg { rs, sym, offset, class } => {
                let addr = resolve_global(sym)?;
                let disp = addr - GLOBALS_BASE + offset;
                if disp < DP_DISP_LIMIT {
                    out.push(Inst::Stw { rs: *rs, base: desc.dp, disp, class: *class });
                } else {
                    out.push(Inst::Alui {
                        op: AluOp::Add,
                        rd: desc.scratch1,
                        rs1: desc.dp,
                        imm: disp,
                    });
                    out.push(Inst::Stw { rs: *rs, base: desc.scratch1, disp: 0, class: *class });
                }
            }
            Inst::Lga { rd, sym, offset } => {
                let addr = resolve_global(sym)?;
                out.push(Inst::Ldi { rd: *rd, imm: addr + offset });
            }
            Inst::Ldfa { rd, func } => {
                let entry = resolve_func(func)?;
                out.push(Inst::Ldi { rd: *rd, imm: entry as i64 });
            }
            Inst::Call { target } => {
                let entry = resolve_func(target)?;
                out.push(Inst::CallAbs { entry: entry as u32 });
            }
            Inst::B { target } => out.push(Inst::B { target: resolve_label(*target)? }),
            Inst::Comb { cond, rs1, rs2, target } => out.push(Inst::Comb {
                cond: *cond,
                rs1: *rs1,
                rs2: *rs2,
                target: resolve_label(*target)?,
            }),
            other => out.push(other.clone()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, MemClass};
    use crate::regs::Reg;

    fn ret_fn(name: &str) -> MachineFunction {
        let mut f = MachineFunction::new(name);
        f.push(Inst::Bv { base: Reg::RP });
        f
    }

    #[test]
    fn link_requires_main() {
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![ret_fn("f")],
            globals: vec![],
            ..Default::default()
        };
        assert_eq!(link(&[m]).unwrap_err(), LinkError::NoMain);
    }

    #[test]
    fn link_rejects_duplicates() {
        let m1 = ObjectModule {
            name: "a".into(),
            functions: vec![ret_fn("main")],
            globals: vec![],
            ..Default::default()
        };
        let m2 = ObjectModule {
            name: "b".into(),
            functions: vec![ret_fn("main")],
            globals: vec![],
            ..Default::default()
        };
        assert!(matches!(
            link(&[m1, m2]).unwrap_err(),
            LinkError::DuplicateFunction(name) if name == "main"
        ));

        let g = GlobalDef { sym: "g".into(), size: 1, init: vec![] };
        let m1 = ObjectModule {
            name: "a".into(),
            functions: vec![ret_fn("main")],
            globals: vec![g.clone()],
            ..Default::default()
        };
        let m2 = ObjectModule {
            name: "b".into(),
            functions: vec![],
            globals: vec![g],
            ..Default::default()
        };
        assert!(matches!(link(&[m1, m2]).unwrap_err(), LinkError::DuplicateGlobal(_)));
    }

    #[test]
    fn scalars_precede_aggregates_in_layout() {
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![ret_fn("main")],
            globals: vec![
                GlobalDef { sym: "arr".into(), size: 100, init: vec![] },
                GlobalDef { sym: "x".into(), size: 1, init: vec![7] },
            ],
            ..Default::default()
        };
        let exe = link(&[m]).unwrap();
        let x = exe.global_addr("x").unwrap();
        let arr = exe.global_addr("arr").unwrap();
        assert_eq!(x, GLOBALS_BASE);
        assert_eq!(arr, GLOBALS_BASE + 1);
        assert_eq!(exe.data_init(), &[(x, 7)]);
    }

    #[test]
    fn near_global_is_one_instruction_far_global_two() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldg {
            rd: Reg::RV,
            sym: "near".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        f.push(Inst::Ldg { rd: Reg::RV, sym: "far".into(), offset: 0, class: MemClass::Aggregate });
        f.push(Inst::Bv { base: Reg::RP });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![
                GlobalDef { sym: "near".into(), size: 1, init: vec![] },
                GlobalDef { sym: "pad".into(), size: DP_DISP_LIMIT as usize + 8, init: vec![] },
                GlobalDef { sym: "far".into(), size: 4, init: vec![] },
            ],
            ..Default::default()
        };
        let exe = link(&[m]).unwrap();
        let main = exe.func_named("main").unwrap();
        // 1 (near load) + 2 (far: base setup + load) + 1 (return)
        assert_eq!(main.len, 4);
        assert!(matches!(exe.insts()[main.entry], Inst::Ldw { base, .. } if base == Reg::DP));
        assert!(matches!(exe.insts()[main.entry + 1], Inst::Alui { .. }));
    }

    #[test]
    fn labels_resolve_across_pseudo_expansion() {
        let mut f = MachineFunction::new("main");
        let l = f.new_label();
        // Branch over a far global store (which expands to 2 instructions).
        f.push(Inst::Comb { cond: Cond::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, target: l });
        f.push(Inst::Stg {
            rs: Reg::ZERO,
            sym: "far".into(),
            offset: 0,
            class: MemClass::Aggregate,
        });
        f.bind_label(l);
        f.push(Inst::Bv { base: Reg::RP });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![
                GlobalDef { sym: "pad".into(), size: DP_DISP_LIMIT as usize, init: vec![] },
                GlobalDef { sym: "far".into(), size: 4, init: vec![] },
            ],
            ..Default::default()
        };
        let exe = link(&[m]).unwrap();
        let main = exe.func_named("main").unwrap();
        match &exe.insts()[main.entry] {
            Inst::Comb { target, .. } => {
                // Should land on the Bv, which sits after the 2-inst expansion.
                assert_eq!(target.0 as usize, main.entry + 3);
                assert!(matches!(exe.insts()[target.0 as usize], Inst::Bv { .. }));
            }
            other => panic!("expected Comb, got {other:?}"),
        }
    }

    #[test]
    fn symbolize_resolves_proc_plus_offset() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldi { rd: Reg::RV, imm: 1 });
        f.push(Inst::Bv { base: Reg::RP });
        let m1 = ObjectModule {
            name: "a".into(),
            functions: vec![ret_fn("f")],
            globals: vec![],
            ..Default::default()
        };
        let m2 = ObjectModule {
            name: "b".into(),
            functions: vec![f],
            globals: vec![],
            ..Default::default()
        };
        let exe = link(&[m1, m2]).unwrap();
        // Layout: stub (0..2), f (2..3), main (3..5).
        assert_eq!(exe.symbolize(0), None); // startup stub
        assert_eq!(exe.symbolize(1), None);
        assert_eq!(exe.symbolize(2).as_deref(), Some("f+0"));
        assert_eq!(exe.symbolize(3).as_deref(), Some("main+0"));
        assert_eq!(exe.symbolize(4).as_deref(), Some("main+1"));
        assert_eq!(exe.symbolize(5), None); // past the end
        assert_eq!(exe.symbolize(1000), None);
    }

    #[test]
    fn undefined_symbols_are_reported() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Call { target: "ghost".into() });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![],
            ..Default::default()
        };
        assert!(matches!(
            link(&[m]).unwrap_err(),
            LinkError::UndefinedFunction { name, .. } if name == "ghost"
        ));

        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldg {
            rd: Reg::RV,
            sym: "ghost".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![],
            ..Default::default()
        };
        assert!(matches!(link(&[m]).unwrap_err(), LinkError::UndefinedGlobal { .. }));
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut f = MachineFunction::new("main");
        let l = f.new_label();
        f.push(Inst::B { target: l });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![],
            ..Default::default()
        };
        assert!(matches!(link(&[m]).unwrap_err(), LinkError::UnboundLabel { .. }));
    }

    #[test]
    fn allow_undefined_links_trap_stubs() {
        // main takes `ghost_b`'s address and would call `ghost_a` only
        // down a branch that never executes.
        let mut f = MachineFunction::new("main");
        let done = f.new_label();
        f.push(Inst::Comb { cond: Cond::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, target: done });
        f.push(Inst::Call { target: "ghost_a".into() });
        f.bind_label(done);
        f.push(Inst::Ldfa { rd: Reg::AT, func: "ghost_b".into() });
        f.push(Inst::Bv { base: Reg::RP });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f, ret_fn("present")],
            globals: vec![],
            ..Default::default()
        };

        // Without the option the link still fails.
        assert!(matches!(
            link(std::slice::from_ref(&m)).unwrap_err(),
            LinkError::UndefinedFunction { name, .. } if name == "ghost_a"
        ));

        let opts = LinkOptions { allow_undefined_functions: true };
        let exe = link_with(&[m], &opts).unwrap();
        // Stubs are appended after all real code, in name order, and are
        // symbolized like any procedure.
        let a = exe.func_named("ghost_a").unwrap();
        let b = exe.func_named("ghost_b").unwrap();
        assert_eq!((a.len, b.len), (1, 1));
        assert!(a.entry > exe.func_named("present").unwrap().entry);
        assert_eq!(b.entry, a.entry + 1);
        assert_eq!(exe.symbolize(a.entry).as_deref(), Some("ghost_a+0"));
        // The program never activates a stub, so it runs cleanly.
        let r = crate::sim::run(&exe).unwrap();
        assert_eq!(r.exit, 0);
    }

    #[test]
    fn activated_stub_traps_with_symbolized_fault() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Call { target: "ghost".into() });
        f.push(Inst::Bv { base: Reg::RP });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![],
            ..Default::default()
        };
        let exe = link_with(&[m], &LinkOptions { allow_undefined_functions: true }).unwrap();
        match crate::sim::run(&exe).unwrap_err() {
            crate::sim::SimError::MemFault { sym, addr, .. } => {
                assert_eq!(sym.as_deref(), Some("ghost+0"));
                assert_eq!(addr, -1);
            }
            other => panic!("expected a memory fault, got {other:?}"),
        }
    }

    #[test]
    fn undefined_globals_stay_errors_even_when_allowed() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldg {
            rd: Reg::RV,
            sym: "ghost".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![],
            ..Default::default()
        };
        assert!(matches!(
            link_with(&[m], &LinkOptions { allow_undefined_functions: true }).unwrap_err(),
            LinkError::UndefinedGlobal { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_binding_panics() {
        let mut f = MachineFunction::new("f");
        let l = f.new_label();
        f.bind_label(l);
        f.bind_label(l);
    }
}
