//! The VPR instruction set.
//!
//! VPR is a word-addressed load/store architecture in the spirit of PA-RISC:
//! every instruction executes in a single cycle, ALU operations are
//! three-operand register-to-register, memory is reached only through
//! `LDW`/`STW` with a base register and an immediate displacement, and
//! compare-and-branch is a single instruction (`COMB`).
//!
//! Instructions referring to symbols (globals, procedure entries, local
//! branch labels) are *relocatable pseudo instructions*; the
//! [linker](crate::program::link) rewrites them into their absolute forms, so
//! a linked [`Executable`](crate::program::Executable) contains only
//! resolved instructions.

use crate::regs::{Reg, RegSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A branch target local to one [`MachineFunction`](crate::program::MachineFunction).
///
/// Before linking a `Label` is an index into the function's label table;
/// after linking every label has been rewritten to an absolute instruction
/// address, so executables never contain `Label`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Three-operand ALU operations.
#[allow(missing_docs)] // variant names are the operations themselves
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl AluOp {
    /// Evaluates the operation on two word values.
    ///
    /// # Errors
    ///
    /// Returns `None` for division or remainder by zero (the simulator
    /// converts this into a trap).
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            AluOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        })
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Signed comparison conditions for `COMB` and `CMP`.
#[allow(missing_docs)] // variant names are the conditions themselves
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Evaluates the condition on two word values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition testing the opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// The condition with operands swapped (`a ? b` ⇔ `b ?.swap() a`).
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "=",
            Cond::Ne => "<>",
            Cond::Lt => "<",
            Cond::Le => "<=",
            Cond::Gt => ">",
            Cond::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Classifies a memory reference for the simulator's accounting.
///
/// The paper's Table 5 counts *singleton* memory references: accesses of a
/// simple scalar variable (not an array or structure element). Spill
/// save/restore traffic targets a named scalar home location, so it counts as
/// singleton too — that is exactly the traffic spill code motion removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemClass {
    /// A named scalar global variable.
    ScalarGlobal,
    /// A named scalar local (home location in the frame).
    ScalarLocal,
    /// Register save/restore or spill traffic.
    Spill,
    /// Array or aggregate element access.
    Aggregate,
    /// Access through a computed pointer.
    Indirect,
    /// Frame bookkeeping (saved RP, outgoing argument slots).
    Frame,
}

impl MemClass {
    /// Does this reference count as a *singleton* memory reference
    /// in the sense of the paper's Table 5?
    pub fn is_singleton(self) -> bool {
        matches!(
            self,
            MemClass::ScalarGlobal | MemClass::ScalarLocal | MemClass::Spill | MemClass::Frame
        )
    }
}

/// A single VPR instruction.
///
/// Variants marked *pseudo* carry unresolved symbols and may only appear in
/// a [`MachineFunction`](crate::program::MachineFunction); the linker
/// replaces them. Variants marked *resolved* may only appear in an
/// [`Executable`](crate::program::Executable).
#[allow(missing_docs)] // operand fields (rd, rs, base, disp, …) are self-describing
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `rd ← imm`.
    Ldi { rd: Reg, imm: i64 },
    /// `rd ← rs`.
    Copy { rd: Reg, rs: Reg },
    /// `rd ← rs1 op rs2`.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd ← rs1 op imm`.
    Alui { op: AluOp, rd: Reg, rs1: Reg, imm: i64 },
    /// `rd ← (rs1 cond rs2) ? 1 : 0`.
    Cmp { cond: Cond, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd ← mem[rs(base) + disp]`.
    Ldw { rd: Reg, base: Reg, disp: i64, class: MemClass },
    /// `mem[rs(base) + disp] ← rs`.
    Stw { rs: Reg, base: Reg, disp: i64, class: MemClass },
    /// *pseudo*: load the word of global `sym` (+`offset` words).
    Ldg { rd: Reg, sym: String, offset: i64, class: MemClass },
    /// *pseudo*: store to the word of global `sym` (+`offset` words).
    Stg { rs: Reg, sym: String, offset: i64, class: MemClass },
    /// *pseudo*: `rd ← &sym + offset` (address of a global).
    Lga { rd: Reg, sym: String, offset: i64 },
    /// *pseudo*: `rd ← entry address of procedure `func``.
    Ldfa { rd: Reg, func: String },
    /// *pseudo*: direct call; deposits the return address in `RP`.
    Call { target: String },
    /// *resolved*: direct call to absolute address `entry`.
    CallAbs { entry: u32 },
    /// Indirect call through `base`; deposits the return address in `RP`.
    CallInd { base: Reg },
    /// Indirect jump through `base` (procedure return is `Bv RP`).
    Bv { base: Reg },
    /// Unconditional branch to a local label (absolute address once linked).
    B { target: Label },
    /// Compare-and-branch: `if rs1 cond rs2 goto target`.
    Comb { cond: Cond, rs1: Reg, rs2: Reg, target: Label },
    /// Emit the value of `rs` to the output stream.
    Out { rs: Reg },
    /// Read the next input value into `rd` (−1 at end of input).
    In { rd: Reg },
    /// Stop execution (only the startup stub uses this).
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// Is this a relocatable pseudo instruction that the linker must resolve?
    pub fn is_pseudo(&self) -> bool {
        matches!(
            self,
            Inst::Ldg { .. }
                | Inst::Stg { .. }
                | Inst::Lga { .. }
                | Inst::Ldfa { .. }
                | Inst::Call { .. }
        )
    }

    /// Does this instruction reference memory (and with what class)?
    pub fn mem_class(&self) -> Option<MemClass> {
        match self {
            Inst::Ldw { class, .. }
            | Inst::Stw { class, .. }
            | Inst::Ldg { class, .. }
            | Inst::Stg { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// The registers this instruction reads, as written in its operands.
    ///
    /// This is the *syntactic* use set: calls do not list the linkage
    /// registers they consume by convention (argument registers, `SP`,
    /// `DP`), and `Bv RP` does not list the values a return leaves live for
    /// the caller. ABI-aware use/def sets are the business of analyses
    /// layered on top (such as the `ipra-verify` checker); here an
    /// instruction only knows what its own operand fields name.
    pub fn uses(&self) -> RegSet {
        let mut s = RegSet::new();
        match *self {
            Inst::Copy { rs, .. } | Inst::Out { rs } => {
                s.insert(rs);
            }
            Inst::Alu { rs1, rs2, .. } | Inst::Cmp { rs1, rs2, .. } => {
                s.insert(rs1);
                s.insert(rs2);
            }
            Inst::Alui { rs1, .. } => {
                s.insert(rs1);
            }
            Inst::Ldw { base, .. } => {
                s.insert(base);
            }
            Inst::Stw { rs, base, .. } => {
                s.insert(rs);
                s.insert(base);
            }
            Inst::Stg { rs, .. } => {
                s.insert(rs);
            }
            Inst::CallInd { base } | Inst::Bv { base } => {
                s.insert(base);
            }
            Inst::Comb { rs1, rs2, .. } => {
                s.insert(rs1);
                s.insert(rs2);
            }
            Inst::Ldi { .. }
            | Inst::Ldg { .. }
            | Inst::Lga { .. }
            | Inst::Ldfa { .. }
            | Inst::Call { .. }
            | Inst::CallAbs { .. }
            | Inst::B { .. }
            | Inst::In { .. }
            | Inst::Halt
            | Inst::Nop => {}
        }
        s
    }

    /// Is this a call instruction (direct, absolute, or indirect)?
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallAbs { .. } | Inst::CallInd { .. })
    }

    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Ldi { rd, .. }
            | Inst::Copy { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::Alui { rd, .. }
            | Inst::Cmp { rd, .. }
            | Inst::Ldw { rd, .. }
            | Inst::Ldg { rd, .. }
            | Inst::Lga { rd, .. }
            | Inst::Ldfa { rd, .. }
            | Inst::In { rd } => Some(rd),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), Some(5));
        assert_eq!(AluOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(AluOp::Mul.eval(-4, 3), Some(-12));
        assert_eq!(AluOp::Div.eval(7, 2), Some(3));
        assert_eq!(AluOp::Rem.eval(7, 2), Some(1));
        assert_eq!(AluOp::Div.eval(7, 0), None);
        assert_eq!(AluOp::Rem.eval(7, 0), None);
        assert_eq!(AluOp::Shl.eval(1, 4), Some(16));
        assert_eq!(AluOp::Shr.eval(-16, 2), Some(-4));
    }

    #[test]
    fn alu_eval_wraps() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(AluOp::Mul.eval(i64::MAX, 2), Some(-2));
        // i64::MIN / -1 overflows in two's complement; wrapping_div yields MIN.
        assert_eq!(AluOp::Div.eval(i64::MIN, -1), Some(i64::MIN));
    }

    #[test]
    fn cond_negate_is_involutive_and_exact() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
                assert_eq!(c.eval(a, b), c.swap().eval(b, a));
            }
        }
    }

    #[test]
    fn singleton_classification() {
        assert!(MemClass::ScalarGlobal.is_singleton());
        assert!(MemClass::ScalarLocal.is_singleton());
        assert!(MemClass::Spill.is_singleton());
        assert!(MemClass::Frame.is_singleton());
        assert!(!MemClass::Aggregate.is_singleton());
        assert!(!MemClass::Indirect.is_singleton());
    }

    #[test]
    fn pseudo_detection() {
        assert!(Inst::Call { target: "f".into() }.is_pseudo());
        assert!(Inst::Ldg {
            rd: Reg::RV,
            sym: "g".into(),
            offset: 0,
            class: MemClass::ScalarGlobal
        }
        .is_pseudo());
        assert!(!Inst::CallAbs { entry: 3 }.is_pseudo());
        assert!(!Inst::Nop.is_pseudo());
    }

    #[test]
    fn def_register() {
        assert_eq!(Inst::Ldi { rd: Reg::RV, imm: 1 }.def(), Some(Reg::RV));
        assert_eq!(Inst::Out { rs: Reg::RV }.def(), None);
        assert_eq!(Inst::Halt.def(), None);
    }

    #[test]
    fn use_registers() {
        let r = |i| Reg::new(i);
        let uses = |i: Inst| i.uses().iter().map(|r| r.index()).collect::<Vec<_>>();
        assert_eq!(uses(Inst::Copy { rd: r(4), rs: r(5) }), vec![5]);
        assert_eq!(uses(Inst::Alu { op: AluOp::Add, rd: r(4), rs1: r(6), rs2: r(7) }), vec![6, 7]);
        assert_eq!(
            uses(Inst::Stw { rs: r(9), base: Reg::SP, disp: 1, class: MemClass::Spill }),
            vec![9, Reg::SP.index()]
        );
        assert_eq!(uses(Inst::Bv { base: Reg::RP }), vec![Reg::RP.index()]);
        assert_eq!(uses(Inst::Ldi { rd: r(4), imm: 0 }), Vec::<usize>::new());
        // A register named twice appears once: the result is a set.
        assert_eq!(uses(Inst::Cmp { cond: Cond::Eq, rd: r(4), rs1: r(5), rs2: r(5) }), vec![5]);
    }

    #[test]
    fn call_detection() {
        assert!(Inst::Call { target: "f".into() }.is_call());
        assert!(Inst::CallAbs { entry: 0 }.is_call());
        assert!(Inst::CallInd { base: Reg::new(19) }.is_call());
        assert!(!Inst::Bv { base: Reg::RP }.is_call());
        assert!(!Inst::B { target: Label(0) }.is_call());
    }
}
