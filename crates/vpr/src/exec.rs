//! The fast VPR execution engine: pre-decoded direct-threaded dispatch.
//!
//! [`decode`] lowers a linked [`Executable`] once into a [`DecodedProgram`]:
//! a flat, dense array of fixed-size [`Op`]s with every source of per-step
//! overhead resolved away —
//!
//! * pseudo-instruction variants and their `String` symbols are gone (an
//!   unresolved pseudo decodes to a dedicated trap op),
//! * branch targets are raw instruction indices,
//! * each call site carries its callee's function index, precomputed from
//!   the executable's entry table, so the per-call profile update is two
//!   array bumps instead of a `BTreeMap` walk.
//!
//! The dispatch loop is a single `match` over the 16-byte `Copy` op — a
//! jump table after codegen — with the accounting restructured to keep the
//! loop tight while staying *bit-identical* to the reference interpreter
//! ([`crate::sim`]) in every observable:
//!
//! * call/edge counters are dense `Vec`s ([`CallCounters`], shared with the
//!   reference engine) folded into the `BTreeMap`-shaped [`RunStats`] only
//!   at `HALT`;
//! * attribution charges cycles by *segment*: instead of bumping the
//!   current procedure's counter every cycle, the loop tracks the cycle at
//!   which the procedure on top of the shadow stack last changed and folds
//!   the elapsed delta into its cost only at call/return/`HALT` boundaries.
//!   Since the reference charges each instruction — including the
//!   transferring call/`Bv` itself — to the procedure that was on top when
//!   it executed, the segment sums are exactly equal, cycle for cycle.
//!
//! Parity is enforced by the sim tests below (every reference test rerun on
//! this engine), the `engines` parity suite (workloads × configs ×
//! attribution, trap symbolization, step-limit equivalence), and the fuzz
//! oracle's cross-engine differential layer.

use crate::inst::{AluOp, Cond, Inst};
use crate::program::{Executable, GLOBALS_BASE};
use crate::regs::Reg;
use crate::sim::{
    AttrState, CallCounters, RunResult, RunStats, SimError, SimOptions, STARTUP_PROC,
};
use std::collections::BTreeMap;

/// A pre-decoded instruction: fixed-size, `Copy`, symbol-free.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `rd ← imm`.
    Ldi { rd: u8, imm: i64 },
    /// `rd ← rs`.
    Copy { rd: u8, rs: u8 },
    /// `rd ← rs1 op rs2`.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← rs1 op imm`.
    Alui { op: AluOp, rd: u8, rs1: u8, imm: i64 },
    /// `rd ← (rs1 cond rs2) ? 1 : 0`.
    Cmp { cond: Cond, rd: u8, rs1: u8, rs2: u8 },
    /// `rd ← mem[rs(base) + disp]`.
    Ld { rd: u8, base: u8, singleton: bool, disp: i64 },
    /// `mem[rs(base) + disp] ← rs`.
    St { rs: u8, base: u8, singleton: bool, disp: i64 },
    /// Direct call: `entry` is the target address, `callee` the target's
    /// function index (`u32::MAX` if the entry starts no linked function).
    Call { entry: u32, callee: u32 },
    /// Indirect call through `base`; the callee index is looked up in the
    /// dense per-pc entry table at run time.
    CallInd { base: u8 },
    /// Indirect jump through `base` (procedure return is `Bv RP`).
    Bv { base: u8 },
    /// Unconditional branch.
    Jmp { target: u32 },
    /// Compare-and-branch.
    JmpIf { cond: Cond, rs1: u8, rs2: u8, target: u32 },
    /// Emit `rs` to the output stream.
    Out { rs: u8 },
    /// Read the next input word into `rd` (−1 at end of input).
    In { rd: u8 },
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
    /// An unresolved pseudo instruction reached the decoder; executing the
    /// op traps exactly like the reference interpreter's pseudo arm.
    Unresolved,
}

/// A linked executable lowered for the fast engine. Decoding is a cheap
/// linear pass; reuse one `DecodedProgram` to amortize it across runs.
pub struct DecodedProgram<'a> {
    exe: &'a Executable,
    ops: Vec<Op>,
    /// `entry_func[pc]` = index of the function entered at `pc`, or
    /// `u32::MAX` — the dense mirror of the executable's entry map, used to
    /// classify indirect call targets without a `BTreeMap` probe.
    entry_func: Vec<u32>,
    nfuncs: usize,
}

/// Lowers `exe` into a [`DecodedProgram`] for the fast engine.
pub fn decode(exe: &Executable) -> DecodedProgram<'_> {
    let code = exe.insts();
    let mut entry_func = vec![u32::MAX; code.len()];
    for (i, f) in exe.funcs().iter().enumerate() {
        if let Some(slot) = entry_func.get_mut(f.entry) {
            *slot = i as u32;
        }
    }
    let r = |r: Reg| r.index() as u8;
    let ops = code
        .iter()
        .map(|inst| match *inst {
            Inst::Ldi { rd, imm } => Op::Ldi { rd: r(rd), imm },
            Inst::Copy { rd, rs } => Op::Copy { rd: r(rd), rs: r(rs) },
            Inst::Alu { op, rd, rs1, rs2 } => Op::Alu { op, rd: r(rd), rs1: r(rs1), rs2: r(rs2) },
            Inst::Alui { op, rd, rs1, imm } => Op::Alui { op, rd: r(rd), rs1: r(rs1), imm },
            Inst::Cmp { cond, rd, rs1, rs2 } => {
                Op::Cmp { cond, rd: r(rd), rs1: r(rs1), rs2: r(rs2) }
            }
            Inst::Ldw { rd, base, disp, class } => {
                Op::Ld { rd: r(rd), base: r(base), singleton: class.is_singleton(), disp }
            }
            Inst::Stw { rs, base, disp, class } => {
                Op::St { rs: r(rs), base: r(base), singleton: class.is_singleton(), disp }
            }
            Inst::CallAbs { entry } => Op::Call {
                entry,
                callee: entry_func.get(entry as usize).copied().unwrap_or(u32::MAX),
            },
            Inst::CallInd { base } => Op::CallInd { base: r(base) },
            Inst::Bv { base } => Op::Bv { base: r(base) },
            Inst::B { target } => Op::Jmp { target: target.0 },
            Inst::Comb { cond, rs1, rs2, target } => {
                Op::JmpIf { cond, rs1: r(rs1), rs2: r(rs2), target: target.0 }
            }
            Inst::Out { rs } => Op::Out { rs: r(rs) },
            Inst::In { rd } => Op::In { rd: r(rd) },
            Inst::Halt => Op::Halt,
            Inst::Nop => Op::Nop,
            Inst::Ldg { .. }
            | Inst::Stg { .. }
            | Inst::Lga { .. }
            | Inst::Ldfa { .. }
            | Inst::Call { .. } => Op::Unresolved,
        })
        .collect();
    DecodedProgram { exe, ops, entry_func, nfuncs: exe.funcs().len() }
}

#[inline(always)]
fn get(regs: &[i64; Reg::COUNT], r: u8) -> i64 {
    // Registers decode from `Reg`, so `r < 32` by construction; the mask
    // keeps the hot loop free of bounds-check branches.
    regs[(r as usize) & (Reg::COUNT - 1)]
}

#[inline(always)]
fn set(regs: &mut [i64; Reg::COUNT], r: u8, v: i64) {
    // Writes to r0 are ignored (it reads as zero forever).
    if r != 0 {
        regs[(r as usize) & (Reg::COUNT - 1)] = v;
    }
}

impl DecodedProgram<'_> {
    /// Runs the decoded program. `opts.engine` is ignored: this *is* the
    /// fast engine.
    ///
    /// # Errors
    ///
    /// See [`SimError`] — identical kinds, pcs, and symbolization as the
    /// reference interpreter.
    pub fn run_with(&self, opts: &SimOptions) -> Result<RunResult, SimError> {
        match (opts.attribute, opts.profile) {
            (false, false) => self.exec::<false, false>(opts),
            (false, true) => self.exec::<false, true>(opts),
            (true, false) => self.exec::<true, false>(opts),
            (true, true) => self.exec::<true, true>(opts),
        }
    }

    /// The dispatch loop, monomorphized on whether attribution and
    /// profiling are on so the plain configuration pays nothing for them.
    fn exec<const ATTR: bool, const PROF: bool>(
        &self,
        opts: &SimOptions,
    ) -> Result<RunResult, SimError> {
        let ops = &self.ops[..];
        let nfuncs = self.nfuncs;
        let mut mem = vec![0i64; opts.mem_words];
        for &(addr, v) in self.exe.data_init() {
            if (addr as usize) < mem.len() {
                mem[addr as usize] = v;
            }
        }
        // Both supported targets hardwire index 0 to zero (`set` relies on
        // it); the data/stack/link/return roles come from the description.
        let desc = self.exe.target().desc();
        let rp_idx = desc.rp.index() as u8;
        let rv_idx = desc.rv.index() as u8;
        let mut regs = [0i64; Reg::COUNT];
        regs[desc.dp.index()] = GLOBALS_BASE;
        regs[desc.sp.index()] = opts.mem_words as i64;

        let max_steps = opts.max_steps;
        let input = &opts.input[..];
        let mut input_pos = 0usize;
        let mut output: Vec<i64> = Vec::new();

        // One counter serves as both the step budget and `stats.cycles`
        // (every instruction is one cycle on this machine).
        let mut cycles: u64 = 0;
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut singleton_loads = 0u64;
        let mut singleton_stores = 0u64;
        let mut total_calls = 0u64;
        let mut counters = CallCounters::new(nfuncs);

        // Shadow stack of *attribution slots* (function index, or `nfuncs`
        // for "outside any function"). The reference stores raw indices
        // with a `usize::MAX` sentinel; clamping at push time is equivalent
        // because only the clamped value is ever observed.
        let mut shadow: Vec<u32> = vec![nfuncs as u32];

        // Segment-based attribution (see module docs): `cur_slot` owns all
        // cycles since `seg_start`. Allocated unconditionally (three tiny
        // vectors), touched only when `ATTR`.
        let mut attr = AttrState::new(nfuncs);
        let mut cur_slot = nfuncs;
        let mut seg_start: u64 = 0;

        // Per-pc execution counts; empty (never touched) unless `PROF`.
        let mut prof: Vec<u64> = vec![0; if PROF { ops.len() } else { 0 }];

        let mut pc = 0usize;
        loop {
            if cycles >= max_steps {
                return Err(SimError::StepLimit { limit: max_steps });
            }
            let op = match ops.get(pc) {
                Some(&op) => op,
                None => return Err(SimError::BadPc { pc, sym: self.exe.symbolize(pc) }),
            };
            cycles += 1;
            if PROF {
                prof[pc] += 1;
            }
            let mut next = pc + 1;
            match op {
                Op::Ldi { rd, imm } => set(&mut regs, rd, imm),
                Op::Copy { rd, rs } => {
                    let v = get(&regs, rs);
                    set(&mut regs, rd, v);
                }
                Op::Alu { op, rd, rs1, rs2 } => {
                    let v = match op.eval(get(&regs, rs1), get(&regs, rs2)) {
                        Some(v) => v,
                        None => {
                            return Err(SimError::DivByZero { pc, sym: self.exe.symbolize(pc) })
                        }
                    };
                    set(&mut regs, rd, v);
                }
                Op::Alui { op, rd, rs1, imm } => {
                    let v = match op.eval(get(&regs, rs1), imm) {
                        Some(v) => v,
                        None => {
                            return Err(SimError::DivByZero { pc, sym: self.exe.symbolize(pc) })
                        }
                    };
                    set(&mut regs, rd, v);
                }
                Op::Cmp { cond, rd, rs1, rs2 } => {
                    let v = cond.eval(get(&regs, rs1), get(&regs, rs2)) as i64;
                    set(&mut regs, rd, v);
                }
                Op::Ld { rd, base, singleton, disp } => {
                    let addr = get(&regs, base).wrapping_add(disp);
                    // A negative address casts to ≥ 2⁶³ and fails the
                    // length test, so one compare covers both bounds.
                    let Some(&v) = mem.get(addr as usize) else {
                        return Err(SimError::MemFault { pc, addr, sym: self.exe.symbolize(pc) });
                    };
                    loads += 1;
                    singleton_loads += singleton as u64;
                    if ATTR {
                        attr.cost[cur_slot].loads += 1;
                        attr.cost[cur_slot].singleton_loads += singleton as u64;
                    }
                    set(&mut regs, rd, v);
                }
                Op::St { rs, base, singleton, disp } => {
                    let addr = get(&regs, base).wrapping_add(disp);
                    let Some(slot) = mem.get_mut(addr as usize) else {
                        return Err(SimError::MemFault { pc, addr, sym: self.exe.symbolize(pc) });
                    };
                    *slot = get(&regs, rs);
                    stores += 1;
                    singleton_stores += singleton as u64;
                    if ATTR {
                        attr.cost[cur_slot].stores += 1;
                        attr.cost[cur_slot].singleton_stores += singleton as u64;
                    }
                }
                Op::Call { entry, callee } => {
                    set(&mut regs, rp_idx, next as i64);
                    total_calls += 1;
                    let callee_slot =
                        if (callee as usize) < nfuncs { callee as usize } else { nfuncs };
                    let caller_slot = shadow.last().map_or(nfuncs, |&s| s as usize);
                    counters.record_slots(caller_slot, callee_slot);
                    shadow.push(callee_slot as u32);
                    if ATTR {
                        attr.cost[callee_slot].calls += 1;
                        attr.depth[callee_slot] += 1;
                        if attr.depth[callee_slot] == 1 {
                            attr.entered_at[callee_slot] = cycles;
                        }
                        // The call instruction's own cycle belongs to the
                        // caller's segment, which closes here.
                        attr.cost[cur_slot].cycles += cycles - seg_start;
                        seg_start = cycles;
                        cur_slot = callee_slot;
                    }
                    next = entry as usize;
                }
                Op::CallInd { base } => {
                    let entry = get(&regs, base);
                    if entry < 0 || entry as usize >= ops.len() {
                        return Err(SimError::BadPc { pc, sym: self.exe.symbolize(pc) });
                    }
                    set(&mut regs, rp_idx, next as i64);
                    total_calls += 1;
                    let callee = self.entry_func[entry as usize];
                    let callee_slot =
                        if (callee as usize) < nfuncs { callee as usize } else { nfuncs };
                    let caller_slot = shadow.last().map_or(nfuncs, |&s| s as usize);
                    counters.record_slots(caller_slot, callee_slot);
                    shadow.push(callee_slot as u32);
                    if ATTR {
                        attr.cost[callee_slot].calls += 1;
                        attr.depth[callee_slot] += 1;
                        if attr.depth[callee_slot] == 1 {
                            attr.entered_at[callee_slot] = cycles;
                        }
                        attr.cost[cur_slot].cycles += cycles - seg_start;
                        seg_start = cycles;
                        cur_slot = callee_slot;
                    }
                    next = entry as usize;
                }
                Op::Bv { base } => {
                    let target = get(&regs, base);
                    if target < 0 || target as usize >= ops.len() {
                        return Err(SimError::BadPc { pc, sym: self.exe.symbolize(pc) });
                    }
                    if let Some(slot) = shadow.pop() {
                        if ATTR {
                            let slot = slot as usize;
                            if attr.depth[slot] > 0 {
                                attr.depth[slot] -= 1;
                                if attr.depth[slot] == 0 {
                                    attr.cost[slot].inclusive_cycles +=
                                        cycles - attr.entered_at[slot];
                                }
                            }
                            // The `Bv` cycle belongs to the returning
                            // procedure's segment, which closes here.
                            attr.cost[cur_slot].cycles += cycles - seg_start;
                            seg_start = cycles;
                            cur_slot = shadow.last().map_or(nfuncs, |&s| s as usize);
                        }
                    }
                    next = target as usize;
                }
                Op::Jmp { target } => next = target as usize,
                Op::JmpIf { cond, rs1, rs2, target } => {
                    if cond.eval(get(&regs, rs1), get(&regs, rs2)) {
                        next = target as usize;
                    }
                }
                Op::Out { rs } => output.push(get(&regs, rs)),
                Op::In { rd } => {
                    let v = input.get(input_pos).copied().unwrap_or(-1);
                    input_pos += 1;
                    set(&mut regs, rd, v);
                }
                Op::Halt => {
                    let exit = get(&regs, rv_idx);
                    let mut stats = RunStats {
                        cycles,
                        loads,
                        stores,
                        singleton_loads,
                        singleton_stores,
                        calls: total_calls,
                        ..RunStats::default()
                    };
                    counters.fold_into(&mut stats);
                    let attribution = if ATTR {
                        attr.cost[cur_slot].cycles += cycles - seg_start;
                        for slot in 0..attr.cost.len() {
                            if attr.depth[slot] > 0 {
                                attr.cost[slot].inclusive_cycles += cycles - attr.entered_at[slot];
                                attr.depth[slot] = 0;
                            }
                        }
                        let mut procs = BTreeMap::new();
                        for (i, f) in self.exe.funcs().iter().enumerate() {
                            procs.insert(f.name.clone(), attr.cost[i]);
                        }
                        procs.insert(STARTUP_PROC.to_string(), attr.cost[nfuncs]);
                        Some(crate::sim::Attribution { procs })
                    } else {
                        None
                    };
                    let profile = PROF.then_some(crate::profile::ExecProfile { pc_counts: prof });
                    return Ok(RunResult { output, exit, stats, attribution, profile });
                }
                Op::Nop => {}
                Op::Unresolved => {
                    return Err(SimError::UnresolvedPseudo { pc, sym: self.exe.symbolize(pc) });
                }
            }
            pc = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::MemClass;
    use crate::program::{link, GlobalDef, MachineFunction, ObjectModule};
    use crate::sim::Engine;

    #[test]
    fn ops_are_small_and_copy() {
        // The whole point of pre-decoding: a dense array of small ops.
        assert!(std::mem::size_of::<Op>() <= 16, "{}", std::mem::size_of::<Op>());
    }

    /// Runs `exe` under both engines with the given options and demands
    /// bit-identical outcomes (including traps).
    fn both(exe: &Executable, opts: &SimOptions) -> Result<RunResult, SimError> {
        let fast = crate::sim::run_with(exe, &SimOptions { engine: Engine::Fast, ..opts.clone() });
        let reference =
            crate::sim::run_with(exe, &SimOptions { engine: Engine::Reference, ..opts.clone() });
        assert_eq!(fast, reference);
        fast
    }

    fn exe_of(functions: Vec<MachineFunction>, globals: Vec<GlobalDef>) -> Executable {
        link(&[ObjectModule { name: "t".into(), functions, globals, ..Default::default() }])
            .unwrap()
    }

    /// A small program exercising calls, recursion, memory, globals, and
    /// I/O: rec(n) sums inputs into a global, main calls it twice.
    fn busy_exe() -> Executable {
        let mut rec = MachineFunction::new("rec");
        let done = rec.new_label();
        rec.push(Inst::Alui { op: AluOp::Sub, rd: Reg::SP, rs1: Reg::SP, imm: 1 });
        rec.push(Inst::Stw { rs: Reg::RP, base: Reg::SP, disp: 0, class: MemClass::Frame });
        rec.push(Inst::Comb { cond: Cond::Eq, rs1: Reg::ARGS[0], rs2: Reg::ZERO, target: done });
        rec.push(Inst::In { rd: Reg::AT });
        rec.push(Inst::Ldg {
            rd: Reg::RV,
            sym: "acc".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        rec.push(Inst::Alu { op: AluOp::Add, rd: Reg::RV, rs1: Reg::RV, rs2: Reg::AT });
        rec.push(Inst::Stg {
            rs: Reg::RV,
            sym: "acc".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        rec.push(Inst::Alui { op: AluOp::Sub, rd: Reg::ARGS[0], rs1: Reg::ARGS[0], imm: 1 });
        rec.push(Inst::Call { target: "rec".into() });
        rec.bind_label(done);
        rec.push(Inst::Ldw { rd: Reg::RP, base: Reg::SP, disp: 0, class: MemClass::Frame });
        rec.push(Inst::Alui { op: AluOp::Add, rd: Reg::SP, rs1: Reg::SP, imm: 1 });
        rec.push(Inst::Bv { base: Reg::RP });

        let mut f = MachineFunction::new("main");
        f.push(Inst::Copy { rd: Reg::new(3), rs: Reg::RP });
        f.push(Inst::Ldi { rd: Reg::ARGS[0], imm: 3 });
        f.push(Inst::Call { target: "rec".into() });
        f.push(Inst::Ldfa { rd: Reg::new(19), func: "rec".into() });
        f.push(Inst::Ldi { rd: Reg::ARGS[0], imm: 2 });
        f.push(Inst::CallInd { base: Reg::new(19) });
        f.push(Inst::Ldg {
            rd: Reg::RV,
            sym: "acc".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        f.push(Inst::Out { rs: Reg::RV });
        f.push(Inst::Copy { rd: Reg::RP, rs: Reg::new(3) });
        f.push(Inst::Bv { base: Reg::RP });

        let acc = GlobalDef { sym: "acc".into(), size: 1, init: vec![100] };
        exe_of(vec![rec, f], vec![acc])
    }

    #[test]
    fn engines_agree_on_busy_program() {
        let exe = busy_exe();
        for attribute in [false, true] {
            let opts =
                SimOptions { input: vec![7, 8, 9, 10, 11], attribute, ..SimOptions::default() };
            let r = both(&exe, &opts).unwrap();
            assert_eq!(r.output, vec![100 + 7 + 8 + 9 + 10 + 11]);
            if attribute {
                let a = r.attribution.unwrap();
                assert!(a.matches(&r.stats), "{a:?}");
            }
        }
    }

    #[test]
    fn engines_agree_on_every_step_limit() {
        // Sweep max_steps across the whole run: the StepLimit/Ok frontier
        // must sit at exactly the same step in both engines.
        let exe = busy_exe();
        let total = crate::sim::run(&exe).unwrap().stats.cycles;
        for limit in (0..=total + 1).step_by(7).chain([total - 1, total, total + 1]) {
            let opts = SimOptions { max_steps: limit, attribute: true, ..SimOptions::default() };
            let r = both(&exe, &opts);
            assert_eq!(r.is_ok(), limit >= total, "limit {limit} vs total {total}");
        }
    }

    #[test]
    fn engines_agree_on_traps() {
        // Division by zero, symbolized.
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldi { rd: Reg::new(19), imm: 0 });
        f.push(Inst::Alu { op: AluOp::Div, rd: Reg::RV, rs1: Reg::ZERO, rs2: Reg::new(19) });
        let err = both(&exe_of(vec![f], vec![]), &SimOptions::default()).unwrap_err();
        assert!(
            matches!(&err, SimError::DivByZero { pc: _, sym } if sym.as_deref() == Some("main+1"))
        );

        // Load fault and store fault.
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldw { rd: Reg::RV, base: Reg::ZERO, disp: -1, class: MemClass::Indirect });
        let err = both(&exe_of(vec![f], vec![]), &SimOptions::default()).unwrap_err();
        assert!(
            matches!(&err, SimError::MemFault { addr: -1, sym, .. } if sym.as_deref() == Some("main+0"))
        );

        let mut f = MachineFunction::new("main");
        f.push(Inst::Stw { rs: Reg::ZERO, base: Reg::ZERO, disp: -2, class: MemClass::Indirect });
        let err = both(&exe_of(vec![f], vec![]), &SimOptions::default()).unwrap_err();
        assert!(matches!(&err, SimError::MemFault { addr: -2, .. }));

        // Bad pc via an indirect jump, and via an indirect call.
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldi { rd: Reg::new(19), imm: 99_999 });
        f.push(Inst::Bv { base: Reg::new(19) });
        let err = both(&exe_of(vec![f], vec![]), &SimOptions::default()).unwrap_err();
        assert!(matches!(&err, SimError::BadPc { sym, .. } if sym.as_deref() == Some("main+1")));

        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldi { rd: Reg::new(19), imm: -5 });
        f.push(Inst::CallInd { base: Reg::new(19) });
        let err = both(&exe_of(vec![f], vec![]), &SimOptions::default()).unwrap_err();
        assert!(matches!(&err, SimError::BadPc { sym, .. } if sym.as_deref() == Some("main+1")));
    }

    #[test]
    fn decode_reuse_matches_one_shot_runs() {
        // One DecodedProgram reused across different inputs must behave
        // like fresh runs (the decoder holds no per-run state).
        let exe = busy_exe();
        let decoded = decode(&exe);
        for input in [vec![], vec![1, 2, 3], vec![-1, -2, -3, -4, -5, -6]] {
            let opts = SimOptions { input, attribute: true, ..SimOptions::default() };
            let reused = decoded.run_with(&opts).unwrap();
            let fresh =
                crate::sim::run_with(&exe, &SimOptions { engine: Engine::Reference, ..opts })
                    .unwrap();
            assert_eq!(reused, fresh);
        }
    }
}
