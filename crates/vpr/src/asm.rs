//! Textual assembly rendering for VPR code.
//!
//! Purely diagnostic: the driver's `--emit asm` mode and failing-test output
//! use this to show what the code generator produced.

use crate::inst::Inst;
use crate::program::{Executable, MachineFunction};
use crate::regs::Reg;
use crate::target::TargetDesc;
use std::fmt;

/// An instruction paired with an optional machine description: with one,
/// registers render as their ABI names (`a0`, `sp`, `rv`, …); without,
/// as raw `r<N>`.
struct InstWith<'a> {
    inst: &'a Inst,
    desc: Option<&'a TargetDesc>,
}

impl InstWith<'_> {
    fn reg(&self, r: Reg) -> String {
        match self.desc {
            Some(d) => d.reg_name(r).to_string(),
            None => r.to_string(),
        }
    }
}

impl fmt::Display for InstWith<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = |x: Reg| self.reg(x);
        match self.inst {
            Inst::Ldi { rd, imm } => write!(f, "ldi     {}, {imm}", r(*rd)),
            Inst::Copy { rd, rs } => write!(f, "copy    {}, {}", r(*rd), r(*rs)),
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{op:<7} {}, {}, {}", r(*rd), r(*rs1), r(*rs2))
            }
            Inst::Alui { op, rd, rs1, imm } => write!(
                f,
                "{op}i{:<width$} {}, {}, {imm}",
                "",
                r(*rd),
                r(*rs1),
                width = 6usize.saturating_sub(op.to_string().len() + 1)
            ),
            Inst::Cmp { cond, rd, rs1, rs2 } => {
                write!(f, "cmp{cond:<4} {}, {}, {}", r(*rd), r(*rs1), r(*rs2))
            }
            Inst::Ldw { rd, base, disp, class } => {
                write!(f, "ldw     {}, {disp}({})  ; {class:?}", r(*rd), r(*base))
            }
            Inst::Stw { rs, base, disp, class } => {
                write!(f, "stw     {}, {disp}({})  ; {class:?}", r(*rs), r(*base))
            }
            Inst::Ldg { rd, sym, offset, class } => {
                write!(f, "ldg     {}, {sym}+{offset}  ; {class:?}", r(*rd))
            }
            Inst::Stg { rs, sym, offset, class } => {
                write!(f, "stg     {}, {sym}+{offset}  ; {class:?}", r(*rs))
            }
            Inst::Lga { rd, sym, offset } => write!(f, "lga     {}, {sym}+{offset}", r(*rd)),
            Inst::Ldfa { rd, func } => write!(f, "ldfa    {}, {func}", r(*rd)),
            Inst::Call { target } => write!(f, "call    {target}"),
            Inst::CallAbs { entry } => write!(f, "call    @{entry}"),
            Inst::CallInd { base } => write!(f, "callind ({})", r(*base)),
            Inst::Bv { base } => write!(f, "bv      ({})", r(*base)),
            Inst::B { target } => write!(f, "b       {target}"),
            Inst::Comb { cond, rs1, rs2, target } => {
                write!(f, "comb{cond:<3} {}, {}, {target}", r(*rs1), r(*rs2))
            }
            Inst::Out { rs } => write!(f, "out     {}", r(*rs)),
            Inst::In { rd } => write!(f, "in      {}", r(*rd)),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        InstWith { inst: self, desc: None }.fmt(f)
    }
}

/// Renders one instruction with `desc`'s ABI register names.
pub fn inst_asm(inst: &Inst, desc: &TargetDesc) -> String {
    InstWith { inst, desc: Some(desc) }.to_string()
}

/// Renders a single pre-link function, with label markers and raw `r<N>`
/// register names.
pub fn function_asm(f: &MachineFunction) -> String {
    function_asm_impl(f, None)
}

/// [`function_asm`] with `desc`'s ABI register names.
pub fn function_asm_for(f: &MachineFunction, desc: &TargetDesc) -> String {
    function_asm_impl(f, Some(desc))
}

fn function_asm_impl(f: &MachineFunction, desc: Option<&TargetDesc>) -> String {
    use std::fmt::Write;
    let mut labels_at: Vec<Vec<usize>> = vec![Vec::new(); f.insts().len() + 1];
    for l in 0..f.label_count() {
        if let Some(idx) = f.label_target(crate::inst::Label(l as u32)) {
            labels_at[idx].push(l);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}:", f.name());
    for (i, inst) in f.insts().iter().enumerate() {
        for l in &labels_at[i] {
            let _ = writeln!(out, "  L{l}:");
        }
        let _ = writeln!(out, "    {}", InstWith { inst, desc });
    }
    for l in &labels_at[f.insts().len()] {
        let _ = writeln!(out, "  L{l}:");
    }
    out
}

/// Renders a full linked executable with function headers and addresses.
/// Registers render as the ABI names of the executable's own target.
pub fn executable_asm(exe: &Executable) -> String {
    use std::fmt::Write;
    let desc = exe.target().desc();
    let mut out = String::new();
    let _ = writeln!(out, "; --- startup stub ({}) ---", desc.id.name());
    for (pc, inst) in exe.insts().iter().enumerate() {
        if let Some(fi) = exe.funcs().iter().find(|fi| fi.entry == pc) {
            let _ = writeln!(out, "\n{}:  ; @{}", fi.name, fi.entry);
        }
        let _ = writeln!(out, "  {pc:6}  {}", InstWith { inst, desc: Some(desc) });
    }
    let _ = writeln!(out, "\n; --- data ---");
    for g in exe.globals() {
        let _ = writeln!(out, ";   {} @ {} ({} words)", g.sym, g.addr, g.size);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond, Label};
    use crate::program::{link, ObjectModule};
    use crate::regs::Reg;

    #[test]
    fn instruction_display_is_nonempty_and_distinct() {
        let insts = vec![
            Inst::Ldi { rd: Reg::RV, imm: 1 },
            Inst::Copy { rd: Reg::RV, rs: Reg::ZERO },
            Inst::Alu { op: AluOp::Add, rd: Reg::RV, rs1: Reg::ZERO, rs2: Reg::ZERO },
            Inst::Comb { cond: Cond::Lt, rs1: Reg::ZERO, rs2: Reg::RV, target: Label(0) },
            Inst::Halt,
            Inst::Nop,
        ];
        let mut seen = std::collections::HashSet::new();
        for i in &insts {
            let s = i.to_string();
            assert!(!s.is_empty());
            assert!(seen.insert(s));
        }
    }

    #[test]
    fn function_asm_shows_labels() {
        let mut f = MachineFunction::new("loopy");
        let top = f.new_label();
        f.bind_label(top);
        f.push(Inst::B { target: top });
        let text = function_asm(&f);
        assert!(text.contains("loopy:"));
        assert!(text.contains("L0:"));
        assert!(text.contains("b       L0"));
    }

    #[test]
    fn executable_asm_lists_functions_and_globals() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Bv { base: Reg::RP });
        let m = ObjectModule {
            name: "m".into(),
            functions: vec![f],
            globals: vec![crate::program::GlobalDef { sym: "g".into(), size: 2, init: vec![] }],
            ..Default::default()
        };
        let exe = link(&[m]).unwrap();
        let text = executable_asm(&exe);
        assert!(text.contains("main:"));
        assert!(text.contains("g @ 16 (2 words)"));
    }
}
