//! The VPR register file and software linkage convention.
//!
//! VPR mirrors the PA-RISC general register organization described in the
//! paper: 32 general-purpose registers, of which 16 are designated
//! callee-saves by software convention. The contents of a *callee-saves*
//! register must be preserved by any procedure that modifies it; a
//! *caller-saves* register may be clobbered freely by a callee, so a caller
//! must save it around calls if its value is live afterwards.
//!
//! Layout (loosely after PA-RISC):
//!
//! | register | role | class |
//! |---|---|---|
//! | `r0` | hardwired zero | special |
//! | `r1` | assembler temporary (`AT`) | scratch, never allocated |
//! | `r2` | return pointer (`RP`) | special |
//! | `r3..=r18` | callee-saves | allocatable |
//! | `r19..=r22` | caller-saves temporaries | allocatable |
//! | `r23..=r26` | argument registers (`ARG3..ARG0`) | caller-saves, allocatable |
//! | `r27` | global data pointer (`DP`) | special |
//! | `r28` | return value (`RV`) | caller-saves, allocatable |
//! | `r29` | caller-saves temporary | allocatable |
//! | `r30` | stack pointer (`SP`) | special |
//! | `r31` | caller-saves temporary | allocatable |

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the 32 VPR general-purpose registers.
///
/// # Examples
///
/// ```
/// use vpr::regs::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert!(r.is_callee_saves());
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Total number of general-purpose registers.
    pub const COUNT: usize = 32;

    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary, reserved for code-generation scratch sequences.
    pub const AT: Reg = Reg(1);
    /// Return pointer: call instructions deposit the return address here.
    pub const RP: Reg = Reg(2);
    /// Global data pointer: base register for global-variable access.
    pub const DP: Reg = Reg(27);
    /// Return value register.
    pub const RV: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(30);

    /// Argument registers, first argument first (`ARG0` = `r26`, matching
    /// PA-RISC's descending argument register numbering).
    pub const ARGS: [Reg; 4] = [Reg(26), Reg(25), Reg(24), Reg(23)];

    /// Creates a register from its index (`const` so machine descriptions
    /// can be statics).
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    pub const fn new(index: u8) -> Reg {
        assert!((index as usize) < Reg::COUNT, "register index out of range");
        Reg(index)
    }

    /// The register's index in `0..32`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this one of the 16 callee-saves registers (`r3..=r18`)?
    pub fn is_callee_saves(self) -> bool {
        (3..=18).contains(&self.0)
    }

    /// Is this a caller-saves register allocatable for local values?
    pub fn is_caller_saves(self) -> bool {
        matches!(self.0, 19..=26 | 28 | 29 | 31)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A set of registers, represented as a 64-bit mask (bit *i* ⇔ `r{i}`).
///
/// `RegSet` is the currency of the paper's §4.2.3 register usage sets
/// (`FREE`, `CALLER`, `CALLEE`, `MSPILL`) and of the analyzer's `AVAIL`
/// bookkeeping, so it implements the full set algebra.
///
/// The backing is 64-bit so a target description may define register files
/// wider than VPR's 32 without a representation change; every mask a
/// 32-register target produces fits in the low half, so serialized sets
/// (decimal integers in the JSON codecs) are byte-identical to the
/// historical 32-bit encoding.
///
/// # Examples
///
/// ```
/// use vpr::regs::{Reg, RegSet};
/// let a: RegSet = [Reg::new(3), Reg::new(4)].into_iter().collect();
/// let b = RegSet::callee_saves();
/// assert!(a.is_subset(b));
/// assert_eq!((b - a).len(), 14);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty register set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Creates an empty set.
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// The 16 callee-saves registers `r3..=r18`.
    pub fn callee_saves() -> RegSet {
        let mut s = RegSet::new();
        for i in 3..=18 {
            s.insert(Reg(i));
        }
        s
    }

    /// The allocatable caller-saves registers
    /// (`r19..=r26`, `r28`, `r29`, `r31`).
    pub fn caller_saves() -> RegSet {
        let mut s = RegSet::new();
        for i in 0..Reg::COUNT as u8 {
            if Reg(i).is_caller_saves() {
                s.insert(Reg(i));
            }
        }
        s
    }

    /// Raw bitmask accessor (bit *i* set ⇔ `r{i}` in the set). Widened
    /// from `u32` with the 64-bit backing; the low 32 bits carry the
    /// historical layout unchanged.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds a set from a raw bitmask (`const` so target descriptions can
    /// precompute their partitions as statics).
    pub const fn from_bits(bits: u64) -> RegSet {
        RegSet(bits)
    }

    /// Inserts a register; returns `true` if it was newly added.
    pub fn insert(&mut self, r: Reg) -> bool {
        let added = !self.contains(r);
        self.0 |= 1u64 << r.0;
        added
    }

    /// Removes a register; returns `true` if it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        let present = self.contains(r);
        self.0 &= !(1u64 << r.0);
        present
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1u64 << r.0) != 0
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(self, other: RegSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Do the sets share no register?
    pub fn is_disjoint(self, other: RegSet) -> bool {
        self.0 & other.0 == 0
    }

    /// The lowest-numbered register in the set, if any.
    pub fn first(self) -> Option<Reg> {
        if self.is_empty() {
            None
        } else {
            Some(Reg(self.0.trailing_zeros() as u8))
        }
    }

    /// Removes and returns the lowest-numbered register.
    pub fn pop_first(&mut self) -> Option<Reg> {
        let r = self.first()?;
        self.remove(r);
        Some(r)
    }

    /// Iterates over members in ascending register order.
    pub fn iter(self) -> Iter {
        Iter(self)
    }
}

/// Iterator over the registers of a [`RegSet`], ascending.
#[derive(Debug, Clone)]
pub struct Iter(RegSet);

impl Iterator for Iter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        self.0.pop_first()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for RegSet {
    type Item = Reg;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl std::ops::BitOr for RegSet {
    type Output = RegSet;
    fn bitor(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for RegSet {
    fn bitor_assign(&mut self, rhs: RegSet) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for RegSet {
    type Output = RegSet;
    fn bitand(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 & rhs.0)
    }
}

impl std::ops::BitAndAssign for RegSet {
    fn bitand_assign(&mut self, rhs: RegSet) {
        self.0 &= rhs.0;
    }
}

impl std::ops::Sub for RegSet {
    type Output = RegSet;
    fn sub(self, rhs: RegSet) -> RegSet {
        RegSet(self.0 & !rhs.0)
    }
}

impl std::ops::SubAssign for RegSet {
    fn sub_assign(&mut self, rhs: RegSet) {
        self.0 &= !rhs.0;
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegSet{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_classes_partition_the_file() {
        let callee = RegSet::callee_saves();
        let caller = RegSet::caller_saves();
        assert_eq!(callee.len(), 16);
        assert_eq!(caller.len(), 11);
        assert!(callee.is_disjoint(caller));
        // The specials are in neither class.
        for special in [Reg::ZERO, Reg::AT, Reg::RP, Reg::DP, Reg::SP] {
            assert!(!callee.contains(special));
            assert!(!caller.contains(special));
        }
    }

    #[test]
    fn args_are_caller_saves() {
        for a in Reg::ARGS {
            assert!(a.is_caller_saves());
        }
        assert!(Reg::RV.is_caller_saves());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_validated() {
        let _ = Reg::new(32);
    }

    #[test]
    fn set_algebra() {
        let a: RegSet = [Reg::new(3), Reg::new(5), Reg::new(7)].into_iter().collect();
        let b: RegSet = [Reg::new(5), Reg::new(9)].into_iter().collect();
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b).len(), 1);
        assert_eq!((a - b).len(), 2);
        assert!((a & b).contains(Reg::new(5)));
        assert!(!(a - b).contains(Reg::new(5)));
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let s: RegSet = [Reg::new(9), Reg::new(3), Reg::new(31)].into_iter().collect();
        let v: Vec<usize> = s.iter().map(Reg::index).collect();
        assert_eq!(v, vec![3, 9, 31]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn pop_first_drains() {
        let mut s = RegSet::callee_saves();
        let mut n = 0;
        while s.pop_first().is_some() {
            n += 1;
        }
        assert_eq!(n, 16);
        assert!(s.is_empty());
    }

    #[test]
    fn display_formats() {
        let s: RegSet = [Reg::new(3), Reg::new(4)].into_iter().collect();
        assert_eq!(s.to_string(), "{r3, r4}");
        assert_eq!(RegSet::EMPTY.to_string(), "{}");
        assert_eq!(format!("{:?}", RegSet::EMPTY), "RegSet{}");
    }

    /// The 64-bit widening must not move a single bit: bit *i* is `r{i}`,
    /// exactly as in the historical `u32` backing, and the convention
    /// masks are pinned as raw integers so any layout drift is loud.
    #[test]
    fn bit_layout_golden() {
        for i in 0..Reg::COUNT as u8 {
            let mut s = RegSet::new();
            s.insert(Reg::new(i));
            assert_eq!(s.bits(), 1u64 << i, "r{i} must map to bit {i}");
        }
        assert_eq!(RegSet::callee_saves().bits(), 0x0007_fff8); // r3..=r18
        assert_eq!(RegSet::caller_saves().bits(), 0xb7f8_0000); // r19..=r26, r28, r29, r31
        assert_eq!(RegSet::from_bits(0x0007_fff8), RegSet::callee_saves());
    }

    /// Serialized sets are decimal integers; every mask a 32-register
    /// target can produce fits in 32 bits, so `.cdir`/`.csum` artifacts
    /// written before the widening read back (and re-serialize) unchanged.
    #[test]
    fn serialization_stable_across_widening() {
        let callee = RegSet::callee_saves();
        assert_eq!(serde_json::to_string(&callee).unwrap(), "524280");
        let top: RegSet = [Reg::new(31)].into_iter().collect();
        assert_eq!(serde_json::to_string(&top).unwrap(), "2147483648");
        let back: RegSet = serde_json::from_str("524280").unwrap();
        assert_eq!(back, callee);
    }

    #[test]
    fn subset_and_disjoint() {
        let callee = RegSet::callee_saves();
        let six: RegSet = (3..9).map(Reg::new).collect();
        assert!(six.is_subset(callee));
        assert!(!callee.is_subset(six));
        assert!(RegSet::EMPTY.is_subset(six));
        assert!(RegSet::EMPTY.is_disjoint(RegSet::EMPTY));
    }
}
