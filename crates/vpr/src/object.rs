//! Symbolic views of object modules: relocations and symbol tables.
//!
//! An [`ObjectModule`](crate::program::ObjectModule) carries its external
//! references as relocatable *pseudo* instructions (`LDG`/`STG`/`LGA`/
//! `LDFA`/`CALL`). This module exposes that implicit structure explicitly:
//! [`ObjectModule::relocations`] lists every symbolic reference with its
//! site, and [`ObjectModule::symbol_table`] / [`program_symbols`] split the
//! involved names into defined and undefined sets — what the
//! [linker](crate::program::link_with) resolves up front and what archive
//! member selection and `objdump` report on.

use crate::inst::Inst;
use crate::program::ObjectModule;
use std::collections::BTreeSet;
use std::fmt;

/// What kind of reference a relocation site makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RelocKind {
    /// `CALL sym` — a direct procedure call.
    Call,
    /// `LDFA rd, sym` — taking a procedure's address.
    FuncAddr,
    /// `LDG rd, sym+off` — a load from a global.
    GlobalLoad,
    /// `STG rs, sym+off` — a store to a global.
    GlobalStore,
    /// `LGA rd, sym+off` — taking a global's address.
    GlobalAddr,
}

impl RelocKind {
    /// Does this relocation name a procedure (as opposed to a global)?
    pub fn is_function(self) -> bool {
        matches!(self, RelocKind::Call | RelocKind::FuncAddr)
    }
}

impl fmt::Display for RelocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelocKind::Call => "call",
            RelocKind::FuncAddr => "funcaddr",
            RelocKind::GlobalLoad => "load",
            RelocKind::GlobalStore => "store",
            RelocKind::GlobalAddr => "addr",
        };
        f.write_str(s)
    }
}

/// One symbolic reference site inside an object module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relocation {
    /// The referencing procedure.
    pub func: String,
    /// Instruction index within the procedure (pre-link numbering).
    pub inst: usize,
    /// Reference kind.
    pub kind: RelocKind,
    /// The referenced symbol.
    pub sym: String,
}

/// Defined and undefined symbol sets of one module (or a whole program —
/// see [`program_symbols`]). Ordered sets so every rendering is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    /// Procedures defined here.
    pub defined_funcs: BTreeSet<String>,
    /// Globals defined here.
    pub defined_globals: BTreeSet<String>,
    /// Procedures referenced but not defined here.
    pub undefined_funcs: BTreeSet<String>,
    /// Globals referenced but not defined here.
    pub undefined_globals: BTreeSet<String>,
}

impl SymbolTable {
    /// Are there no unresolved references?
    pub fn is_closed(&self) -> bool {
        self.undefined_funcs.is_empty() && self.undefined_globals.is_empty()
    }
}

impl ObjectModule {
    /// Every symbolic reference site, in (function, instruction) order.
    pub fn relocations(&self) -> Vec<Relocation> {
        let mut out = Vec::new();
        for f in &self.functions {
            for (i, inst) in f.insts().iter().enumerate() {
                let (kind, sym) = match inst {
                    Inst::Call { target } => (RelocKind::Call, target),
                    Inst::Ldfa { func, .. } => (RelocKind::FuncAddr, func),
                    Inst::Ldg { sym, .. } => (RelocKind::GlobalLoad, sym),
                    Inst::Stg { sym, .. } => (RelocKind::GlobalStore, sym),
                    Inst::Lga { sym, .. } => (RelocKind::GlobalAddr, sym),
                    _ => continue,
                };
                out.push(Relocation {
                    func: f.name().to_string(),
                    inst: i,
                    kind,
                    sym: sym.clone(),
                });
            }
        }
        out
    }

    /// The module's defined/undefined symbol split.
    pub fn symbol_table(&self) -> SymbolTable {
        program_symbols(std::slice::from_ref(self))
    }
}

/// The combined symbol table of a set of modules, as the linker sees them:
/// definitions are unioned, and a reference is undefined only if no module
/// in the set defines it.
pub fn program_symbols(modules: &[ObjectModule]) -> SymbolTable {
    let mut t = SymbolTable::default();
    for m in modules {
        for f in &m.functions {
            t.defined_funcs.insert(f.name().to_string());
        }
        for g in &m.globals {
            t.defined_globals.insert(g.sym.clone());
        }
    }
    for m in modules {
        for r in m.relocations() {
            if r.kind.is_function() {
                if !t.defined_funcs.contains(&r.sym) {
                    t.undefined_funcs.insert(r.sym);
                }
            } else if !t.defined_globals.contains(&r.sym) {
                t.undefined_globals.insert(r.sym);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::MemClass;
    use crate::program::{GlobalDef, MachineFunction};
    use crate::regs::Reg;

    fn module() -> ObjectModule {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldg {
            rd: Reg::RV,
            sym: "g".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        f.push(Inst::Stg {
            rs: Reg::RV,
            sym: "h".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        f.push(Inst::Lga { rd: Reg::RV, sym: "g".into(), offset: 0 });
        f.push(Inst::Ldfa { rd: Reg::RV, func: "helper".into() });
        f.push(Inst::Call { target: "ext".into() });
        f.push(Inst::Bv { base: Reg::RP });
        let mut helper = MachineFunction::new("helper");
        helper.push(Inst::Bv { base: Reg::RP });
        ObjectModule {
            name: "m".into(),
            functions: vec![f, helper],
            globals: vec![GlobalDef { sym: "g".into(), size: 1, init: vec![] }],
            ..Default::default()
        }
    }

    #[test]
    fn relocations_list_every_symbolic_site_in_order() {
        let relocs = module().relocations();
        let kinds: Vec<(RelocKind, &str)> =
            relocs.iter().map(|r| (r.kind, r.sym.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (RelocKind::GlobalLoad, "g"),
                (RelocKind::GlobalStore, "h"),
                (RelocKind::GlobalAddr, "g"),
                (RelocKind::FuncAddr, "helper"),
                (RelocKind::Call, "ext"),
            ]
        );
        assert!(relocs.iter().all(|r| r.func == "main"));
        assert_eq!(relocs[0].inst, 0);
        assert_eq!(relocs[4].inst, 4);
    }

    #[test]
    fn symbol_table_splits_defined_and_undefined() {
        let t = module().symbol_table();
        assert!(t.defined_funcs.contains("main") && t.defined_funcs.contains("helper"));
        assert!(t.defined_globals.contains("g"));
        assert_eq!(t.undefined_funcs.iter().collect::<Vec<_>>(), vec!["ext"]);
        assert_eq!(t.undefined_globals.iter().collect::<Vec<_>>(), vec!["h"]);
        assert!(!t.is_closed());
    }

    #[test]
    fn program_symbols_resolve_across_modules() {
        let mut ext = MachineFunction::new("ext");
        ext.push(Inst::Bv { base: Reg::RP });
        let lib = ObjectModule {
            name: "lib".into(),
            functions: vec![ext],
            globals: vec![GlobalDef { sym: "h".into(), size: 1, init: vec![] }],
            ..Default::default()
        };
        let t = program_symbols(&[module(), lib]);
        assert!(t.is_closed(), "{t:?}");
    }
}
