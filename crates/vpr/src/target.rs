//! Machine descriptions: the register-file and calling-convention facts
//! the rest of the system consumes instead of hardcoded `regs` constants.
//!
//! The paper's §2 claims the analyzer is target independent — its
//! directives (webs, clusters, FREE/CALLER/CALLEE/MSPILL sets) are
//! expressed over an *abstract* linkage convention. This module makes the
//! claim literal. A [`TargetDesc`] names every role the compiler,
//! analyzer, linker, verifier and simulator need:
//!
//! * the special registers — hardwired zero, return pointer, stack
//!   pointer, global data pointer, return value, and the two
//!   code-generation scratch registers;
//! * the argument registers, first argument first;
//! * the callee/caller-saves partition;
//! * the caller-saves *claim pool* the §6 caller-preallocation protocol
//!   hands out bottom-up;
//! * ABI register names for diagnostics (`objdump`, `explain`).
//!
//! Two descriptions exist: [`VPR`], the PA-RISC-flavored original, and
//! [`RV32`], a RISC-V-flavored convention over the same instruction set
//! (`a0–a7` argument registers, `s*` callee-saves, `t*` caller-saves
//! temporaries). Both have 32 registers with the zero register at index
//! 0, which the execution engines rely on; see [`TargetDesc::validate`]
//! for the full list of structural guarantees a description must uphold.

use crate::regs::{Reg, RegSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a built-in target. The identifier travels in `.vo`/`.vx`
/// artifact headers and inside serialized executables; [`TargetId::Vpr`]
/// is the default everywhere so pre-existing artifacts (which never
/// mention a target) keep their meaning and their bytes.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum TargetId {
    /// The PA-RISC-flavored original: descending argument registers
    /// `r26..r23`, callee-saves `r3..=r18`.
    #[default]
    Vpr,
    /// The RISC-V-flavored convention: ascending argument registers
    /// `a0..a7` (`x10..x17`), callee-saves `s0..s11`, return value in
    /// `a0`.
    Rv32,
}

impl TargetId {
    /// Every built-in target, VPR first.
    pub const ALL: [TargetId; 2] = [TargetId::Vpr, TargetId::Rv32];

    /// The machine description for this target.
    pub fn desc(self) -> &'static TargetDesc {
        match self {
            TargetId::Vpr => &VPR,
            TargetId::Rv32 => &RV32,
        }
    }

    /// Short lowercase name (the `--target` spelling and the artifact
    /// header token).
    pub fn name(self) -> &'static str {
        match self {
            TargetId::Vpr => "vpr",
            TargetId::Rv32 => "rv32",
        }
    }

    /// Parses a `--target` spelling.
    pub fn parse(s: &str) -> Option<TargetId> {
        TargetId::ALL.into_iter().find(|t| t.name() == s)
    }
}

impl fmt::Display for TargetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A machine description: everything the target-parameterized layers
/// (codegen, the analyzer's register-set machinery, the linker, the
/// verifier, the simulators) know about a register file and its calling
/// convention.
#[derive(Debug)]
pub struct TargetDesc {
    /// The identifier this description belongs to.
    pub id: TargetId,
    /// Number of general-purpose registers (at most 64, the `RegSet`
    /// width; both built-in targets use 32).
    pub reg_count: usize,
    /// Hardwired zero register. Must be index 0 — both engines suppress
    /// writes to index 0 unconditionally.
    pub zero: Reg,
    /// Primary code-generation scratch (the "assembler temporary").
    /// Never allocated; the linker also uses it to lower global accesses
    /// whose displacement exceeds the addressing reach.
    pub scratch1: Reg,
    /// Secondary code-generation scratch, for two-address sequences
    /// (spill reload + operate). Never allocated.
    pub scratch2: Reg,
    /// Return pointer: call instructions deposit the return address here.
    pub rp: Reg,
    /// Global data pointer: base register for global-variable access.
    pub dp: Reg,
    /// Return value register. May alias the first argument register (it
    /// does on RV32, where both are `a0`); the allocator reserves both.
    pub rv: Reg,
    /// Stack pointer.
    pub sp: Reg,
    /// Registers that are *never* used by generated code or the linker:
    /// not a role, not allocatable, not in either saves class (RV32's
    /// `tp`/`x4`). Diagnostic renderers still name them.
    pub reserved: RegSet,
    /// Argument registers, first argument first. Arguments beyond
    /// `args.len()` travel on the stack.
    pub args: &'static [Reg],
    /// The callee-saves class: a procedure that writes one must restore
    /// it before returning.
    pub callee_saves: RegSet,
    /// The allocatable caller-saves class (includes the argument
    /// registers and `rv`, excludes the scratches-by-convention except
    /// `scratch2`, which codegen may clobber between any two
    /// instructions and is therefore unsafe across calls anyway).
    pub caller_saves: RegSet,
    /// The §6 caller-preallocation claim pool, in hand-out order: the
    /// caller-saves temporaries procedures claim bottom-up. Disjoint
    /// from `args` and `rv` so claimed registers survive call setup.
    pub claim_pool: &'static [Reg],
    /// ABI register names, indexed by register number, for diagnostics.
    pub reg_names: [&'static str; 32],
}

impl TargetDesc {
    /// ABI name of a register (`"a0"`, `"sp"`, `"rv"`, …).
    pub fn reg_name(&self, r: Reg) -> &'static str {
        self.reg_names[r.index()]
    }

    /// The callee-saves registers in ascending order — the coloring and
    /// allocation order every layer shares.
    pub fn callee_order(&self) -> Vec<Reg> {
        self.callee_saves.iter().collect()
    }

    /// The claim pool as a set.
    pub fn claim_pool_set(&self) -> RegSet {
        self.claim_pool.iter().copied().collect()
    }

    /// Checks the structural invariants the consuming layers rely on.
    /// Returns the violations (empty = valid); exercised by the
    /// description snapshot tests so a future target cannot silently
    /// break an engine or the allocator.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let mut err = |cond: bool, msg: &str| {
            if !cond {
                errs.push(msg.to_string());
            }
        };
        err(self.reg_count <= 64, "reg_count must fit the 64-bit RegSet");
        err(self.zero.index() == 0, "zero register must be index 0 (engines pin it)");
        err(self.callee_saves.is_disjoint(self.caller_saves), "saves classes must be disjoint");
        for (role, r) in [
            ("zero", self.zero),
            ("sp", self.sp),
            ("dp", self.dp),
            ("rp", self.rp),
            ("scratch1", self.scratch1),
            ("scratch2", self.scratch2),
        ] {
            err(!self.callee_saves.contains(r), &format!("{role} must not be callee-saves"));
            err(
                r == self.scratch2 || !self.caller_saves.contains(r),
                &format!("{role} must not be allocatable caller-saves"),
            );
        }
        err(self.caller_saves.contains(self.rv), "rv must be caller-saves");
        for &a in self.args {
            err(self.caller_saves.contains(a), "argument registers must be caller-saves");
        }
        let pool = self.claim_pool_set();
        err(pool.len() == self.claim_pool.len(), "claim pool must not repeat registers");
        err(pool.is_subset(self.caller_saves), "claim pool must be caller-saves");
        err(!pool.contains(self.rv), "claim pool must not contain rv");
        err(!pool.contains(self.scratch2), "claim pool must not contain the scratches");
        for &a in self.args {
            err(!pool.contains(a), "claim pool must not contain argument registers");
        }
        let roles: RegSet = [self.zero, self.scratch1, self.scratch2, self.rp, self.dp, self.sp]
            .into_iter()
            .collect();
        err(self.reserved.is_disjoint(roles), "reserved registers cannot carry a role");
        err(
            self.reserved.is_disjoint(self.callee_saves)
                && self.reserved.is_disjoint(self.caller_saves),
            "reserved registers cannot be allocatable",
        );
        errs
    }
}

/// The PA-RISC-flavored original target (see [`crate::regs`] for the full
/// layout table). This description is definitionally what the backend
/// hardcoded before the machine-description layer existed; the snapshot
/// test in this module pins every role so a drift is a test failure, and
/// the workload byte-identity goldens pin the emitted code.
pub static VPR: TargetDesc = TargetDesc {
    id: TargetId::Vpr,
    reg_count: 32,
    zero: Reg::ZERO,
    scratch1: Reg::AT,
    scratch2: Reg::new(31),
    rp: Reg::RP,
    dp: Reg::DP,
    rv: Reg::RV,
    sp: Reg::SP,
    reserved: RegSet::EMPTY,
    args: &[Reg::new(26), Reg::new(25), Reg::new(24), Reg::new(23)],
    callee_saves: RegSet::from_bits(0x0007_fff8), // r3..=r18
    caller_saves: RegSet::from_bits(0xb7f8_0000), // r19..=r26, r28, r29, r31
    claim_pool: &[Reg::new(19), Reg::new(20), Reg::new(21), Reg::new(22), Reg::new(29)],
    reg_names: [
        "zero", "at", "rp", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10",
        "s11", "s12", "s13", "s14", "s15", "t0", "t1", "t2", "t3", "a3", "a2", "a1", "a0", "dp",
        "rv", "t4", "sp", "at2",
    ],
};

/// The RISC-V-flavored second target: RV32I register roles and the
/// standard ilp32 split — `a0..a7` (`x10..x17`) ascending argument
/// registers with the return value in `a0`, callee-saves `s0..s11`
/// (`x8`, `x9`, `x18..x27`), caller-saves temporaries `t0..t6`. `ra`
/// (`x1`) is the return pointer, `gp` (`x3`) plays the global data
/// pointer, and `tp` (`x4`) is reserved — never touched by generated
/// code, exactly like a real thread pointer. `t5`/`t6` are the two
/// code-generation scratches, leaving `t0..t4` as the five-register
/// caller-preallocation claim pool (the same pool size as VPR, which
/// keeps the §6 protocol's behavior comparable across targets).
pub static RV32: TargetDesc = TargetDesc {
    id: TargetId::Rv32,
    reg_count: 32,
    zero: Reg::new(0),
    scratch1: Reg::new(30), // t5
    scratch2: Reg::new(31), // t6
    rp: Reg::new(1),        // ra
    dp: Reg::new(3),        // gp
    rv: Reg::new(10),       // a0 (aliases the first argument register)
    sp: Reg::new(2),
    reserved: RegSet::from_bits(1 << 4), // tp
    args: &[
        Reg::new(10),
        Reg::new(11),
        Reg::new(12),
        Reg::new(13),
        Reg::new(14),
        Reg::new(15),
        Reg::new(16),
        Reg::new(17),
    ],
    // s0..s11 = x8, x9, x18..x27.
    callee_saves: RegSet::from_bits(0x0ffc_0300),
    // t0..t4 (x5..x7, x28, x29), a0..a7 (x10..x17), t6 (x31).
    caller_saves: RegSet::from_bits(0xb003_fce0),
    claim_pool: &[Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(28), Reg::new(29)],
    reg_names: [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_descriptions_validate() {
        for t in TargetId::ALL {
            let errs = t.desc().validate();
            assert!(errs.is_empty(), "{t}: {errs:?}");
        }
    }

    /// Golden snapshot of the VPR description: the ABI role table and the
    /// callee/caller partition must stay exactly what the backend
    /// hardcoded before the machine-description layer existed.
    #[test]
    fn vpr_description_snapshot() {
        let d = TargetId::Vpr.desc();
        assert_eq!(d.zero, Reg::new(0));
        assert_eq!(d.scratch1, Reg::new(1));
        assert_eq!(d.rp, Reg::new(2));
        assert_eq!(d.dp, Reg::new(27));
        assert_eq!(d.rv, Reg::new(28));
        assert_eq!(d.sp, Reg::new(30));
        assert_eq!(d.scratch2, Reg::new(31));
        assert_eq!(d.args, &[Reg::new(26), Reg::new(25), Reg::new(24), Reg::new(23)]);
        assert_eq!(d.callee_saves, RegSet::callee_saves());
        assert_eq!(d.caller_saves, RegSet::caller_saves());
        assert_eq!(d.callee_saves.len(), 16);
        assert_eq!(d.caller_saves.len(), 11);
        let pool: Vec<usize> = d.claim_pool.iter().map(|r| r.index()).collect();
        assert_eq!(pool, vec![19, 20, 21, 22, 29]);
        assert!(d.reserved.is_empty());
        // The legacy Reg convenience predicates agree with the description.
        for i in 0..32u8 {
            let r = Reg::new(i);
            assert_eq!(r.is_callee_saves(), d.callee_saves.contains(r), "r{i}");
            assert_eq!(r.is_caller_saves(), d.caller_saves.contains(r), "r{i}");
        }
        assert_eq!(d.reg_name(Reg::new(26)), "a0");
        assert_eq!(d.reg_name(Reg::new(30)), "sp");
        assert_eq!(d.reg_name(Reg::new(28)), "rv");
    }

    #[test]
    fn rv32_description_snapshot() {
        let d = TargetId::Rv32.desc();
        assert_eq!(d.rp, Reg::new(1), "ra");
        assert_eq!(d.sp, Reg::new(2));
        assert_eq!(d.dp, Reg::new(3), "gp");
        assert_eq!(d.rv, Reg::new(10), "a0");
        assert_eq!(d.rv, d.args[0], "RV32 returns in the first argument register");
        let args: Vec<usize> = d.args.iter().map(|r| r.index()).collect();
        assert_eq!(args, (10..18).collect::<Vec<_>>());
        assert_eq!(d.callee_saves.len(), 12, "s0..s11");
        let callee: Vec<usize> = d.callee_saves.iter().map(Reg::index).collect();
        assert_eq!(callee, vec![8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27]);
        assert_eq!(d.caller_saves.len(), 14);
        assert_eq!(d.claim_pool.len(), VPR.claim_pool.len(), "same §6 pool size as VPR");
        assert!(d.reserved.contains(Reg::new(4)), "tp is reserved");
        assert_eq!(d.reg_name(Reg::new(10)), "a0");
        assert_eq!(d.reg_name(Reg::new(8)), "s0");
        assert_eq!(d.reg_name(Reg::new(2)), "sp");
    }

    #[test]
    fn target_id_round_trips() {
        for t in TargetId::ALL {
            assert_eq!(TargetId::parse(t.name()), Some(t));
            assert_eq!(t.to_string(), t.name());
        }
        assert_eq!(TargetId::parse("pdp11"), None);
        assert_eq!(TargetId::default(), TargetId::Vpr);
    }
}
