//! The VPR simulator.
//!
//! An interpreter over a linked [`Executable`] that charges one cycle per
//! instruction (the paper's Table 4 measures "total cycles measured by a
//! simulator, excluding cache miss penalties" on a single-cycle RISC) and
//! keeps the dynamic accounting the paper's evaluation needs:
//!
//! * total cycles / instructions,
//! * dynamic loads and stores, split into *singleton* and other references
//!   (Table 5),
//! * per-procedure and per-call-graph-edge call counts — the moral
//!   equivalent of the paper's `gprof` profile feed for analyzer
//!   configurations B and F.

use crate::inst::Inst;
use crate::program::{Executable, DEFAULT_MEM_WORDS, GLOBALS_BASE};
use crate::regs::Reg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which execution engine interprets the program.
///
/// Both engines are bit-identical in every observable — [`RunResult`]
/// (output, exit, stats, attribution) and [`SimError`] (kind, pc,
/// symbolization) — a property enforced by the cross-engine fuzz oracle
/// and the workloads×configs parity suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// The pre-decoded direct-threaded engine ([`crate::exec`]): the
    /// executable is lowered once into a flat fixed-size op array and run
    /// by a tight jump-table dispatch loop. The default.
    #[default]
    Fast,
    /// The original decode-and-dispatch interpreter over [`Inst`], kept as
    /// the differential-testing oracle.
    Reference,
}

impl Engine {
    /// The other engine — the differential-testing counterpart.
    pub fn other(self) -> Engine {
        match self {
            Engine::Fast => Engine::Reference,
            Engine::Reference => Engine::Fast,
        }
    }

    /// Short stable name (`fast` / `reference`), for reports and flags.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Fast => "fast",
            Engine::Reference => "reference",
        }
    }
}

/// Options controlling a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Simulated memory size in words.
    pub mem_words: usize,
    /// Abort after this many executed instructions.
    pub max_steps: u64,
    /// Values returned by `IN` instructions, in order (then −1).
    pub input: Vec<i64>,
    /// Attribute every cycle and memory reference to a procedure via the
    /// shadow call stack ([`RunResult::attribution`]). Exact, not sampled;
    /// never changes the run's [`RunStats`].
    pub attribute: bool,
    /// Record per-pc execution counts ([`RunResult::profile`]). Exact, not
    /// sampled; never changes the run's [`RunStats`], and both engines
    /// produce identical profiles.
    pub profile: bool,
    /// Which execution engine to use; observables never depend on it.
    pub engine: Engine,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            mem_words: DEFAULT_MEM_WORDS,
            max_steps: 2_000_000_000,
            input: Vec::new(),
            attribute: false,
            profile: false,
            engine: Engine::default(),
        }
    }
}

/// The attribution bucket for code outside any linked procedure: the
/// two-instruction startup stub (`CALL main; HALT`).
pub const STARTUP_PROC: &str = "<startup>";

/// Exact dynamic cost of one procedure within a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcCost {
    /// Cycles spent in the procedure itself (excluding callees).
    pub cycles: u64,
    /// Loads executed by the procedure's own instructions.
    pub loads: u64,
    /// Stores executed by the procedure's own instructions.
    pub stores: u64,
    /// Of `loads`, those classified as singleton references.
    pub singleton_loads: u64,
    /// Of `stores`, those classified as singleton references.
    pub singleton_stores: u64,
    /// Activations of the procedure.
    pub calls: u64,
    /// Cycles with at least one activation of the procedure on the call
    /// stack (self + callees; recursion counted once).
    pub inclusive_cycles: u64,
}

impl ProcCost {
    /// Self loads + stores.
    pub fn mem_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Self singleton loads + stores.
    pub fn singleton_refs(&self) -> u64 {
        self.singleton_loads + self.singleton_stores
    }
}

/// Exact per-procedure attribution of a run's dynamic cost, keyed by link
/// name (plus [`STARTUP_PROC`]). Every cycle, memory reference, and call of
/// the run is charged to exactly one procedure, so the self-cost columns
/// sum to the run's [`RunStats`] — [`Attribution::matches`] checks this.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribution {
    /// Per-procedure costs, ordered by name for deterministic serialization.
    pub procs: BTreeMap<String, ProcCost>,
}

impl Attribution {
    /// The cost record for `name`, if the procedure was linked.
    pub fn get(&self, name: &str) -> Option<&ProcCost> {
        self.procs.get(name)
    }

    /// Sums the self-cost columns over all procedures. `inclusive_cycles`
    /// is left zero: inclusive windows overlap, so their sum is meaningless.
    pub fn self_totals(&self) -> ProcCost {
        let mut t = ProcCost::default();
        for c in self.procs.values() {
            t.cycles += c.cycles;
            t.loads += c.loads;
            t.stores += c.stores;
            t.singleton_loads += c.singleton_loads;
            t.singleton_stores += c.singleton_stores;
            t.calls += c.calls;
        }
        t
    }

    /// Do the per-procedure self costs sum exactly to `stats`?
    pub fn matches(&self, stats: &RunStats) -> bool {
        let t = self.self_totals();
        t.cycles == stats.cycles
            && t.loads == stats.loads
            && t.stores == stats.stores
            && t.singleton_loads == stats.singleton_loads
            && t.singleton_stores == stats.singleton_stores
            && t.calls == stats.calls
    }
}

/// Dynamic execution statistics for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles (= instructions, on this single-cycle machine).
    pub cycles: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
    /// Dynamic loads classified as singleton references.
    pub singleton_loads: u64,
    /// Dynamic stores classified as singleton references.
    pub singleton_stores: u64,
    /// Total procedure calls executed.
    pub calls: u64,
    /// Calls per callee, indexed by the executable's function index.
    /// Ordered so serialized stats and iteration-based reports are
    /// deterministic run-to-run.
    pub call_counts: BTreeMap<usize, u64>,
    /// Calls per `(caller, callee)` function-index pair, ordered for
    /// deterministic serialization. The startup stub's call of `main` uses
    /// `usize::MAX` as the caller.
    pub call_edges: BTreeMap<(usize, usize), u64>,
}

impl RunStats {
    /// Total dynamic memory references.
    pub fn mem_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total dynamic singleton memory references (the paper's Table 5 metric).
    pub fn singleton_refs(&self) -> u64 {
        self.singleton_loads + self.singleton_stores
    }
}

/// The observable outcome of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunResult {
    /// Values emitted by `OUT`, in order.
    pub output: Vec<i64>,
    /// `main`'s return value (the `RV` register at `HALT`).
    pub exit: i64,
    /// Dynamic statistics.
    pub stats: RunStats,
    /// Per-procedure attribution ([`SimOptions::attribute`]); `None` when
    /// attribution was off.
    #[serde(default)]
    pub attribution: Option<Attribution>,
    /// Per-pc execution counts ([`SimOptions::profile`]); `None` when
    /// profiling was off.
    #[serde(default)]
    pub profile: Option<crate::profile::ExecProfile>,
}

/// A runtime trap or simulator resource error. Trap variants carry the
/// faulting `pc` plus `sym`, the `proc+offset` form resolved from the
/// executable's function table (`None` when the pc falls outside every
/// linked procedure, e.g. in the startup stub).
#[allow(missing_docs)] // field names (pc, addr, limit, sym) are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Integer division or remainder by zero.
    DivByZero { pc: usize, sym: Option<String> },
    /// Memory access outside the simulated address space.
    MemFault { pc: usize, addr: i64, sym: Option<String> },
    /// Control transferred outside the code segment.
    BadPc { pc: usize, sym: Option<String> },
    /// The step budget was exhausted (likely an infinite loop).
    StepLimit { limit: u64 },
    /// An unresolved pseudo instruction reached the simulator
    /// (indicates an unlinked or corrupted executable).
    UnresolvedPseudo { pc: usize, sym: Option<String> },
}

/// `main+3 (pc 12)` when symbolized, `pc 12` otherwise.
fn fmt_loc(f: &mut fmt::Formatter<'_>, pc: usize, sym: &Option<String>) -> fmt::Result {
    match sym {
        Some(s) => write!(f, "{s} (pc {pc})"),
        None => write!(f, "pc {pc}"),
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DivByZero { pc, sym } => {
                write!(f, "division by zero at ")?;
                fmt_loc(f, *pc, sym)
            }
            SimError::MemFault { pc, addr, sym } => {
                write!(f, "memory fault at ")?;
                fmt_loc(f, *pc, sym)?;
                write!(f, ": address {addr}")
            }
            SimError::BadPc { pc, sym } => {
                write!(f, "control transfer outside code at ")?;
                fmt_loc(f, *pc, sym)
            }
            SimError::StepLimit { limit } => write!(f, "step limit of {limit} exhausted"),
            SimError::UnresolvedPseudo { pc, sym } => {
                write!(f, "unresolved pseudo instruction at ")?;
                fmt_loc(f, *pc, sym)
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs `exe` to completion with default options.
///
/// # Errors
///
/// See [`SimError`].
pub fn run(exe: &Executable) -> Result<RunResult, SimError> {
    run_with(exe, &SimOptions::default())
}

/// Runs `exe` with explicit [`SimOptions`], dispatching on
/// [`SimOptions::engine`].
///
/// # Errors
///
/// See [`SimError`].
pub fn run_with(exe: &Executable, opts: &SimOptions) -> Result<RunResult, SimError> {
    match opts.engine {
        Engine::Fast => crate::exec::decode(exe).run_with(opts),
        Engine::Reference => Machine::new(exe, opts).run(),
    }
}

/// Dense per-function call and call-edge counters, folded into the
/// `BTreeMap`-shaped [`RunStats`] maps only at `HALT` so the per-call hot
/// path is two `Vec` index bumps instead of two map insertions. Slot
/// `nfuncs` stands for "outside any linked procedure" (`usize::MAX` in the
/// folded maps: the startup stub as a caller, a wild entry as a callee).
/// Shared by both engines so the fold — and thus the folded stats — is
/// identical by construction.
pub(crate) struct CallCounters {
    nfuncs: usize,
    counts: Vec<u64>,
    edges: EdgeCounters,
}

/// Edge counts are a dense `(nfuncs+1)²` matrix when small enough,
/// otherwise a hash map (the fold sorts either way, so the folded
/// `BTreeMap` is independent of the representation).
enum EdgeCounters {
    Dense(Vec<u64>),
    Sparse(std::collections::HashMap<(usize, usize), u64>),
}

impl CallCounters {
    /// Above this many dense matrix cells (8 MiB of `u64`s), fall back to
    /// the sparse representation.
    const DENSE_EDGE_LIMIT: usize = 1 << 20;

    pub(crate) fn new(nfuncs: usize) -> CallCounters {
        let slots = nfuncs + 1;
        let edges = if slots.saturating_mul(slots) <= Self::DENSE_EDGE_LIMIT {
            EdgeCounters::Dense(vec![0; slots * slots])
        } else {
            EdgeCounters::Sparse(std::collections::HashMap::new())
        };
        CallCounters { nfuncs, counts: vec![0; slots], edges }
    }

    /// The counter slot for a function index (`usize::MAX` → slot `nfuncs`).
    #[inline]
    pub(crate) fn slot(&self, func: usize) -> usize {
        if func < self.nfuncs {
            func
        } else {
            self.nfuncs
        }
    }

    /// Records one `caller_slot → callee_slot` call (both pre-clamped).
    #[inline]
    pub(crate) fn record_slots(&mut self, caller_slot: usize, callee_slot: usize) {
        self.counts[callee_slot] += 1;
        match &mut self.edges {
            EdgeCounters::Dense(m) => m[caller_slot * (self.nfuncs + 1) + callee_slot] += 1,
            EdgeCounters::Sparse(m) => *m.entry((caller_slot, callee_slot)).or_insert(0) += 1,
        }
    }

    /// Folds the dense counters into `stats.call_counts` / `call_edges`,
    /// skipping zero counts — bit-identical to per-call `entry().or_insert`
    /// updates, which only ever create entries with count ≥ 1.
    pub(crate) fn fold_into(&self, stats: &mut RunStats) {
        let unclamp = |slot: usize| if slot < self.nfuncs { slot } else { usize::MAX };
        for (slot, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                stats.call_counts.insert(unclamp(slot), n);
            }
        }
        match &self.edges {
            EdgeCounters::Dense(m) => {
                let slots = self.nfuncs + 1;
                for caller in 0..slots {
                    for callee in 0..slots {
                        let n = m[caller * slots + callee];
                        if n > 0 {
                            stats.call_edges.insert((unclamp(caller), unclamp(callee)), n);
                        }
                    }
                }
            }
            EdgeCounters::Sparse(m) => {
                for (&(caller, callee), &n) in m {
                    stats.call_edges.insert((unclamp(caller), unclamp(callee)), n);
                }
            }
        }
    }
}

// Per-slot attribution state: slot i < nfuncs is function index i, slot
// nfuncs is the startup stub ([`STARTUP_PROC`]). `depth`/`entered_at`
// implement exact inclusive accounting in O(1) per call/return: a slot's
// inclusive window opens when its on-stack count goes 0→1 and closes
// (adding `cycles − entered_at`) when it returns to 0, so recursion is
// counted once.
pub(crate) struct AttrState {
    pub(crate) nfuncs: usize,
    pub(crate) cost: Vec<ProcCost>,
    pub(crate) depth: Vec<u32>,
    pub(crate) entered_at: Vec<u64>,
}

impl AttrState {
    pub(crate) fn new(nfuncs: usize) -> AttrState {
        let slots = nfuncs + 1;
        let mut a = AttrState {
            nfuncs,
            cost: vec![ProcCost::default(); slots],
            depth: vec![0; slots],
            entered_at: vec![0; slots],
        };
        // The startup stub is "active" from cycle 0.
        a.depth[nfuncs] = 1;
        a
    }

    fn slot(&self, func: usize) -> usize {
        if func < self.nfuncs {
            func
        } else {
            self.nfuncs
        }
    }

    /// The cost record of the procedure on top of the shadow stack (the
    /// startup-stub slot when the stack is empty or holds its sentinel).
    fn cur(&mut self, shadow: &[usize]) -> &mut ProcCost {
        let slot = match shadow.last() {
            Some(&f) if f < self.nfuncs => f,
            _ => self.nfuncs,
        };
        &mut self.cost[slot]
    }
}

struct Machine<'a> {
    exe: &'a Executable,
    regs: [i64; Reg::COUNT],
    mem: Vec<i64>,
    pc: usize,
    steps: u64,
    max_steps: u64,
    input: &'a [i64],
    input_pos: usize,
    output: Vec<i64>,
    stats: RunStats,
    // Shadow stack of function indices for call-edge accounting.
    shadow: Vec<usize>,
    // Dense call/edge counters, folded into `stats` at `HALT`.
    calls: CallCounters,
    // Per-procedure attribution (opt-in; `None` keeps the run untouched).
    attr: Option<AttrState>,
    // Per-pc execution counts (opt-in; `None` keeps the run untouched).
    prof: Option<Vec<u64>>,
    // Linkage roles of the executable's target convention.
    rp: Reg,
    rv: Reg,
}

impl<'a> Machine<'a> {
    fn new(exe: &'a Executable, opts: &'a SimOptions) -> Machine<'a> {
        let mut mem = vec![0i64; opts.mem_words];
        for &(addr, v) in exe.data_init() {
            if (addr as usize) < mem.len() {
                mem[addr as usize] = v;
            }
        }
        // Both supported targets keep the hardwired zero at index 0 (the
        // `get`/`set` suppression below relies on it); the data pointer,
        // stack pointer and link/return roles come from the description.
        let desc = exe.target().desc();
        let mut regs = [0i64; Reg::COUNT];
        regs[desc.dp.index()] = GLOBALS_BASE;
        regs[desc.sp.index()] = opts.mem_words as i64;
        Machine {
            exe,
            regs,
            mem,
            pc: 0,
            steps: 0,
            max_steps: opts.max_steps,
            input: &opts.input,
            input_pos: 0,
            output: Vec::new(),
            stats: RunStats::default(),
            shadow: vec![usize::MAX],
            calls: CallCounters::new(exe.funcs().len()),
            attr: opts.attribute.then(|| AttrState::new(exe.funcs().len())),
            prof: opts.profile.then(|| vec![0u64; exe.insts().len()]),
            rp: desc.rp,
            rv: desc.rv,
        }
    }

    /// Symbolizes the current pc for a trap.
    fn here(&self) -> Option<String> {
        self.exe.symbolize(self.pc)
    }

    fn get(&self, r: Reg) -> i64 {
        if r == Reg::ZERO {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: i64) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    fn load(&mut self, base: Reg, disp: i64, singleton: bool) -> Result<i64, SimError> {
        let addr = self.get(base).wrapping_add(disp);
        let v = *self
            .mem
            .get(addr as usize)
            .filter(|_| addr >= 0)
            .ok_or_else(|| SimError::MemFault { pc: self.pc, addr, sym: self.here() })?;
        self.stats.loads += 1;
        if singleton {
            self.stats.singleton_loads += 1;
        }
        if let Some(a) = &mut self.attr {
            let c = a.cur(&self.shadow);
            c.loads += 1;
            if singleton {
                c.singleton_loads += 1;
            }
        }
        Ok(v)
    }

    fn store(&mut self, base: Reg, disp: i64, v: i64, singleton: bool) -> Result<(), SimError> {
        let addr = self.get(base).wrapping_add(disp);
        if addr < 0 || addr as usize >= self.mem.len() {
            return Err(SimError::MemFault { pc: self.pc, addr, sym: self.here() });
        }
        self.mem[addr as usize] = v;
        self.stats.stores += 1;
        if singleton {
            self.stats.singleton_stores += 1;
        }
        if let Some(a) = &mut self.attr {
            let c = a.cur(&self.shadow);
            c.stores += 1;
            if singleton {
                c.singleton_stores += 1;
            }
        }
        Ok(())
    }

    fn record_call(&mut self, entry: usize) {
        self.stats.calls += 1;
        let callee = self.exe.func_at_entry(entry).unwrap_or(usize::MAX);
        let caller = *self.shadow.last().unwrap_or(&usize::MAX);
        let (caller_slot, callee_slot) = (self.calls.slot(caller), self.calls.slot(callee));
        self.calls.record_slots(caller_slot, callee_slot);
        self.shadow.push(callee);
        if let Some(a) = &mut self.attr {
            let slot = a.slot(callee);
            a.cost[slot].calls += 1;
            a.depth[slot] += 1;
            if a.depth[slot] == 1 {
                a.entered_at[slot] = self.stats.cycles;
            }
        }
    }

    /// Closes a procedure's inclusive window if its last activation left the
    /// stack (called when `Bv` pops `func` from the shadow stack).
    fn record_return(&mut self, func: usize) {
        if let Some(a) = &mut self.attr {
            let slot = a.slot(func);
            if a.depth[slot] > 0 {
                a.depth[slot] -= 1;
                if a.depth[slot] == 0 {
                    a.cost[slot].inclusive_cycles += self.stats.cycles - a.entered_at[slot];
                }
            }
        }
    }

    /// Closes every still-open inclusive window (at `HALT`) and builds the
    /// name-keyed attribution.
    fn finish_attribution(&mut self) -> Option<Attribution> {
        let cycles = self.stats.cycles;
        let mut a = self.attr.take()?;
        for slot in 0..a.cost.len() {
            if a.depth[slot] > 0 {
                a.cost[slot].inclusive_cycles += cycles - a.entered_at[slot];
                a.depth[slot] = 0;
            }
        }
        let mut procs = BTreeMap::new();
        for (i, f) in self.exe.funcs().iter().enumerate() {
            procs.insert(f.name.clone(), a.cost[i]);
        }
        procs.insert(STARTUP_PROC.to_string(), a.cost[a.nfuncs]);
        Some(Attribution { procs })
    }

    fn run(mut self) -> Result<RunResult, SimError> {
        let code = self.exe.insts();
        loop {
            if self.steps >= self.max_steps {
                return Err(SimError::StepLimit { limit: self.max_steps });
            }
            let inst = match code.get(self.pc) {
                Some(inst) => inst,
                None => return Err(SimError::BadPc { pc: self.pc, sym: self.here() }),
            };
            self.steps += 1;
            self.stats.cycles += 1;
            if let Some(a) = &mut self.attr {
                a.cur(&self.shadow).cycles += 1;
            }
            if let Some(p) = &mut self.prof {
                p[self.pc] += 1;
            }
            let mut next = self.pc + 1;
            match inst {
                Inst::Ldi { rd, imm } => self.set(*rd, *imm),
                Inst::Copy { rd, rs } => {
                    let v = self.get(*rs);
                    self.set(*rd, v);
                }
                Inst::Alu { op, rd, rs1, rs2 } => {
                    let v = op
                        .eval(self.get(*rs1), self.get(*rs2))
                        .ok_or_else(|| SimError::DivByZero { pc: self.pc, sym: self.here() })?;
                    self.set(*rd, v);
                }
                Inst::Alui { op, rd, rs1, imm } => {
                    let v = op
                        .eval(self.get(*rs1), *imm)
                        .ok_or_else(|| SimError::DivByZero { pc: self.pc, sym: self.here() })?;
                    self.set(*rd, v);
                }
                Inst::Cmp { cond, rd, rs1, rs2 } => {
                    let v = cond.eval(self.get(*rs1), self.get(*rs2)) as i64;
                    self.set(*rd, v);
                }
                Inst::Ldw { rd, base, disp, class } => {
                    let v = self.load(*base, *disp, class.is_singleton())?;
                    self.set(*rd, v);
                }
                Inst::Stw { rs, base, disp, class } => {
                    let v = self.get(*rs);
                    self.store(*base, *disp, v, class.is_singleton())?;
                }
                Inst::CallAbs { entry } => {
                    self.set(self.rp, next as i64);
                    self.record_call(*entry as usize);
                    next = *entry as usize;
                }
                Inst::CallInd { base } => {
                    let entry = self.get(*base);
                    if entry < 0 || entry as usize >= code.len() {
                        return Err(SimError::BadPc { pc: self.pc, sym: self.here() });
                    }
                    self.set(self.rp, next as i64);
                    self.record_call(entry as usize);
                    next = entry as usize;
                }
                Inst::Bv { base } => {
                    let target = self.get(*base);
                    if target < 0 || target as usize >= code.len() {
                        return Err(SimError::BadPc { pc: self.pc, sym: self.here() });
                    }
                    if let Some(func) = self.shadow.pop() {
                        self.record_return(func);
                    }
                    next = target as usize;
                }
                Inst::B { target } => next = target.0 as usize,
                Inst::Comb { cond, rs1, rs2, target } => {
                    if cond.eval(self.get(*rs1), self.get(*rs2)) {
                        next = target.0 as usize;
                    }
                }
                Inst::Out { rs } => self.output.push(self.get(*rs)),
                Inst::In { rd } => {
                    let v = self.input.get(self.input_pos).copied().unwrap_or(-1);
                    self.input_pos += 1;
                    self.set(*rd, v);
                }
                Inst::Halt => {
                    let exit = self.get(self.rv);
                    self.calls.fold_into(&mut self.stats);
                    let attribution = self.finish_attribution();
                    let profile =
                        self.prof.take().map(|pc_counts| crate::profile::ExecProfile { pc_counts });
                    return Ok(RunResult {
                        output: self.output,
                        exit,
                        stats: self.stats,
                        attribution,
                        profile,
                    });
                }
                Inst::Nop => {}
                Inst::Ldg { .. }
                | Inst::Stg { .. }
                | Inst::Lga { .. }
                | Inst::Ldfa { .. }
                | Inst::Call { .. } => {
                    return Err(SimError::UnresolvedPseudo { pc: self.pc, sym: self.here() });
                }
            }
            self.pc = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond, MemClass};
    use crate::program::{link, GlobalDef, MachineFunction, ObjectModule};

    fn exe_of(functions: Vec<MachineFunction>, globals: Vec<GlobalDef>) -> Executable {
        link(&[ObjectModule { name: "t".into(), functions, globals, ..Default::default() }])
            .unwrap()
    }

    #[test]
    fn returns_value_in_rv() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldi { rd: Reg::RV, imm: 17 });
        f.push(Inst::Bv { base: Reg::RP });
        let r = run(&exe_of(vec![f], vec![])).unwrap();
        assert_eq!(r.exit, 17);
        assert!(r.output.is_empty());
        // stub call + ldi + bv + halt
        assert_eq!(r.stats.cycles, 4);
    }

    #[test]
    fn arithmetic_loop_and_output() {
        // sum 1..=10 via a COMB loop, print, return.
        let mut f = MachineFunction::new("main");
        let r_i = Reg::new(19);
        let r_sum = Reg::new(20);
        let r_lim = Reg::new(21);
        f.push(Inst::Ldi { rd: r_i, imm: 1 });
        f.push(Inst::Ldi { rd: r_sum, imm: 0 });
        f.push(Inst::Ldi { rd: r_lim, imm: 10 });
        let top = f.new_label();
        let done = f.new_label();
        f.bind_label(top);
        f.push(Inst::Comb { cond: Cond::Gt, rs1: r_i, rs2: r_lim, target: done });
        f.push(Inst::Alu { op: AluOp::Add, rd: r_sum, rs1: r_sum, rs2: r_i });
        f.push(Inst::Alui { op: AluOp::Add, rd: r_i, rs1: r_i, imm: 1 });
        f.push(Inst::B { target: top });
        f.bind_label(done);
        f.push(Inst::Out { rs: r_sum });
        f.push(Inst::Copy { rd: Reg::RV, rs: r_sum });
        f.push(Inst::Bv { base: Reg::RP });
        let r = run(&exe_of(vec![f], vec![])).unwrap();
        assert_eq!(r.output, vec![55]);
        assert_eq!(r.exit, 55);
    }

    #[test]
    fn globals_load_store_and_accounting() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldg {
            rd: Reg::new(19),
            sym: "g".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        f.push(Inst::Alui { op: AluOp::Add, rd: Reg::new(19), rs1: Reg::new(19), imm: 5 });
        f.push(Inst::Stg {
            rs: Reg::new(19),
            sym: "g".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        f.push(Inst::Ldg {
            rd: Reg::RV,
            sym: "g".into(),
            offset: 0,
            class: MemClass::ScalarGlobal,
        });
        f.push(Inst::Bv { base: Reg::RP });
        let g = GlobalDef { sym: "g".into(), size: 1, init: vec![37] };
        let r = run(&exe_of(vec![f], vec![g])).unwrap();
        assert_eq!(r.exit, 42);
        assert_eq!(r.stats.loads, 2);
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.stats.singleton_refs(), 3);
    }

    #[test]
    fn calls_are_profiled() {
        let mut leaf = MachineFunction::new("leaf");
        leaf.push(Inst::Alui { op: AluOp::Add, rd: Reg::RV, rs1: Reg::ARGS[0], imm: 1 });
        leaf.push(Inst::Bv { base: Reg::RP });

        let mut f = MachineFunction::new("main");
        // Save RP in a callee-saves register (we know leaf doesn't touch it).
        f.push(Inst::Copy { rd: Reg::new(3), rs: Reg::RP });
        f.push(Inst::Ldi { rd: Reg::ARGS[0], imm: 1 });
        f.push(Inst::Call { target: "leaf".into() });
        f.push(Inst::Copy { rd: Reg::ARGS[0], rs: Reg::RV });
        f.push(Inst::Call { target: "leaf".into() });
        f.push(Inst::Copy { rd: Reg::RP, rs: Reg::new(3) });
        f.push(Inst::Bv { base: Reg::RP });

        let exe = exe_of(vec![leaf, f], vec![]);
        let r = run(&exe).unwrap();
        assert_eq!(r.exit, 3);
        assert_eq!(r.stats.calls, 3); // stub->main, main->leaf ×2
        let leaf_idx = exe.funcs().iter().position(|fi| fi.name == "leaf").unwrap();
        let main_idx = exe.funcs().iter().position(|fi| fi.name == "main").unwrap();
        assert_eq!(r.stats.call_counts[&leaf_idx], 2);
        assert_eq!(r.stats.call_counts[&main_idx], 1);
        assert_eq!(r.stats.call_edges[&(main_idx, leaf_idx)], 2);
        assert_eq!(r.stats.call_edges[&(usize::MAX, main_idx)], 1);
    }

    #[test]
    fn indirect_call_through_function_address() {
        let mut target = MachineFunction::new("target");
        target.push(Inst::Ldi { rd: Reg::RV, imm: 99 });
        target.push(Inst::Bv { base: Reg::RP });

        let mut f = MachineFunction::new("main");
        f.push(Inst::Copy { rd: Reg::new(3), rs: Reg::RP });
        f.push(Inst::Ldfa { rd: Reg::new(19), func: "target".into() });
        f.push(Inst::CallInd { base: Reg::new(19) });
        f.push(Inst::Copy { rd: Reg::RP, rs: Reg::new(3) });
        f.push(Inst::Bv { base: Reg::RP });
        let r = run(&exe_of(vec![target, f], vec![])).unwrap();
        assert_eq!(r.exit, 99);
    }

    #[test]
    fn input_stream_then_minus_one() {
        let mut f = MachineFunction::new("main");
        for _ in 0..3 {
            f.push(Inst::In { rd: Reg::new(19) });
            f.push(Inst::Out { rs: Reg::new(19) });
        }
        f.push(Inst::Bv { base: Reg::RP });
        let exe = exe_of(vec![f], vec![]);
        let opts = SimOptions { input: vec![7, 8], ..SimOptions::default() };
        let r = run_with(&exe, &opts).unwrap();
        assert_eq!(r.output, vec![7, 8, -1]);
    }

    #[test]
    fn traps() {
        // Division by zero.
        let mut f = MachineFunction::new("main");
        f.push(Inst::Alu { op: AluOp::Div, rd: Reg::RV, rs1: Reg::ZERO, rs2: Reg::ZERO });
        assert!(matches!(run(&exe_of(vec![f], vec![])), Err(SimError::DivByZero { .. })));

        // Memory fault.
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldw { rd: Reg::RV, base: Reg::ZERO, disp: -1, class: MemClass::Indirect });
        assert!(matches!(run(&exe_of(vec![f], vec![])), Err(SimError::MemFault { .. })));

        // Step limit.
        let mut f = MachineFunction::new("main");
        let l = f.new_label();
        f.bind_label(l);
        f.push(Inst::B { target: l });
        let exe = exe_of(vec![f], vec![]);
        let opts = SimOptions { max_steps: 100, ..SimOptions::default() };
        assert_eq!(run_with(&exe, &opts), Err(SimError::StepLimit { limit: 100 }));
    }

    #[test]
    fn attribution_is_exact_and_cycle_neutral() {
        let mut leaf = MachineFunction::new("leaf");
        leaf.push(Inst::Alui { op: AluOp::Add, rd: Reg::RV, rs1: Reg::ARGS[0], imm: 1 });
        leaf.push(Inst::Bv { base: Reg::RP });

        let mut f = MachineFunction::new("main");
        f.push(Inst::Copy { rd: Reg::new(3), rs: Reg::RP });
        f.push(Inst::Ldi { rd: Reg::ARGS[0], imm: 1 });
        f.push(Inst::Call { target: "leaf".into() });
        f.push(Inst::Copy { rd: Reg::ARGS[0], rs: Reg::RV });
        f.push(Inst::Call { target: "leaf".into() });
        f.push(Inst::Copy { rd: Reg::RP, rs: Reg::new(3) });
        f.push(Inst::Bv { base: Reg::RP });

        let exe = exe_of(vec![leaf, f], vec![]);
        let plain = run(&exe).unwrap();
        let attributed =
            run_with(&exe, &SimOptions { attribute: true, ..SimOptions::default() }).unwrap();
        // Attribution never perturbs the run.
        assert_eq!(plain.stats, attributed.stats);
        assert_eq!(plain.output, attributed.output);
        assert_eq!(plain.exit, attributed.exit);
        assert!(plain.attribution.is_none());

        let a = attributed.attribution.unwrap();
        assert!(a.matches(&attributed.stats), "{a:?}");
        let leaf = a.get("leaf").unwrap();
        assert_eq!(leaf.calls, 2);
        assert_eq!(leaf.cycles, 4); // two instructions × two activations
        let main = a.get("main").unwrap();
        assert_eq!(main.calls, 1);
        assert_eq!(main.cycles, 7);
        // main's inclusive window covers both leaf activations.
        assert_eq!(main.inclusive_cycles, main.cycles + leaf.cycles);
        // The startup stub is on-stack for the whole run.
        let stub = a.get(STARTUP_PROC).unwrap();
        assert_eq!(stub.inclusive_cycles, attributed.stats.cycles);
        assert_eq!(stub.cycles, 2); // CALL main + HALT
    }

    #[test]
    fn recursion_counts_inclusive_cycles_once() {
        // rec(n): if n != 0 { rec(n - 1) }, with RP saved on the stack.
        let mut rec = MachineFunction::new("rec");
        let done = rec.new_label();
        rec.push(Inst::Alui { op: AluOp::Sub, rd: Reg::SP, rs1: Reg::SP, imm: 1 });
        rec.push(Inst::Stw { rs: Reg::RP, base: Reg::SP, disp: 0, class: MemClass::Frame });
        rec.push(Inst::Comb { cond: Cond::Eq, rs1: Reg::ARGS[0], rs2: Reg::ZERO, target: done });
        rec.push(Inst::Alui { op: AluOp::Sub, rd: Reg::ARGS[0], rs1: Reg::ARGS[0], imm: 1 });
        rec.push(Inst::Call { target: "rec".into() });
        rec.bind_label(done);
        rec.push(Inst::Ldw { rd: Reg::RP, base: Reg::SP, disp: 0, class: MemClass::Frame });
        rec.push(Inst::Alui { op: AluOp::Add, rd: Reg::SP, rs1: Reg::SP, imm: 1 });
        rec.push(Inst::Bv { base: Reg::RP });

        let mut f = MachineFunction::new("main");
        f.push(Inst::Copy { rd: Reg::new(3), rs: Reg::RP });
        f.push(Inst::Ldi { rd: Reg::ARGS[0], imm: 3 });
        f.push(Inst::Call { target: "rec".into() });
        f.push(Inst::Copy { rd: Reg::RP, rs: Reg::new(3) });
        f.push(Inst::Bv { base: Reg::RP });

        let exe = exe_of(vec![rec, f], vec![]);
        let r = run_with(&exe, &SimOptions { attribute: true, ..SimOptions::default() }).unwrap();
        let a = r.attribution.unwrap();
        assert!(a.matches(&r.stats), "{a:?}");
        let rec = a.get("rec").unwrap();
        assert_eq!(rec.calls, 4); // n = 3, 2, 1, 0
                                  // One inclusive window spanning all nested activations — not four.
        assert!(rec.inclusive_cycles >= rec.cycles);
        assert!(rec.inclusive_cycles < r.stats.cycles);
        let main = a.get("main").unwrap();
        assert!(main.inclusive_cycles > rec.inclusive_cycles);
    }

    #[test]
    fn traps_are_symbolized() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldi { rd: Reg::new(19), imm: 0 });
        f.push(Inst::Alu { op: AluOp::Div, rd: Reg::RV, rs1: Reg::ZERO, rs2: Reg::new(19) });
        let err = run(&exe_of(vec![f], vec![])).unwrap_err();
        match &err {
            SimError::DivByZero { sym, .. } => assert_eq!(sym.as_deref(), Some("main+1")),
            other => panic!("expected DivByZero, got {other:?}"),
        }
        assert!(err.to_string().contains("main+1"), "{err}");

        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldw { rd: Reg::RV, base: Reg::ZERO, disp: -1, class: MemClass::Indirect });
        let err = run(&exe_of(vec![f], vec![])).unwrap_err();
        match &err {
            SimError::MemFault { sym, .. } => assert_eq!(sym.as_deref(), Some("main+0")),
            other => panic!("expected MemFault, got {other:?}"),
        }
        assert!(err.to_string().contains("main+0"), "{err}");
    }

    #[test]
    fn tiny_memory_faults_cleanly_on_stack_use() {
        // A function that needs a frame cannot run in a 32-word machine
        // whose stack pointer starts at 32 but whose frame store lands
        // in-bounds... shrink further so the global segment collides.
        let mut f = MachineFunction::new("main");
        f.push(Inst::Alui { op: AluOp::Sub, rd: Reg::SP, rs1: Reg::SP, imm: 8 });
        f.push(Inst::Stw { rs: Reg::RP, base: Reg::SP, disp: 0, class: MemClass::Frame });
        f.push(Inst::Ldw { rd: Reg::RV, base: Reg::SP, disp: 100, class: MemClass::Frame });
        f.push(Inst::Bv { base: Reg::RP });
        let exe = exe_of(vec![f], vec![]);
        let opts = SimOptions { mem_words: 64, ..SimOptions::default() };
        assert!(matches!(run_with(&exe, &opts), Err(SimError::MemFault { .. })));
    }

    #[test]
    fn writes_to_r0_are_ignored() {
        let mut f = MachineFunction::new("main");
        f.push(Inst::Ldi { rd: Reg::ZERO, imm: 123 });
        f.push(Inst::Copy { rd: Reg::RV, rs: Reg::ZERO });
        f.push(Inst::Bv { base: Reg::RP });
        let r = run(&exe_of(vec![f], vec![])).unwrap();
        assert_eq!(r.exit, 0);
    }
}
