//! Control-flow graphs over [`MachineFunction`](crate::program::MachineFunction)s.
//!
//! The graph is built at single-instruction granularity: node *i* is
//! instruction *i*, and edges follow the architectural successor relation.
//! Basic blocks buy nothing at VPR's scale (every instruction is one cycle
//! and functions are small), while per-instruction nodes make dataflow
//! clients — notably the `ipra-verify` register-discipline checker — a
//! straight worklist over instruction indices with no block/offset
//! bookkeeping.
//!
//! Successor relation:
//!
//! * `B target` — the label's bound instruction, only,
//! * `Comb … target` — the label's bound instruction *and* the fallthrough,
//! * `Bv base` — none (indirect jump; as emitted, always a return),
//! * `Halt` — none,
//! * calls — the fallthrough (a call returns to the next instruction),
//! * everything else — the fallthrough.
//!
//! Construction fails (rather than producing a partial graph) on code that
//! is not even structurally a function: a branch to an unbound label, or a
//! non-terminal final instruction that would fall off the end.

use crate::inst::Inst;
use crate::program::MachineFunction;
use std::fmt;

/// Why a [`Cfg`] could not be built. The offending instruction index is
/// carried so diagnostics can point at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// A branch targets a label that was never bound to an instruction.
    UnboundLabel {
        /// Index of the branching instruction.
        inst: usize,
        /// The unbound label's index.
        label: u32,
    },
    /// A label is bound past the end of the instruction stream.
    LabelOutOfRange {
        /// Index of the branching instruction.
        inst: usize,
        /// The label's bound target address.
        target: usize,
    },
    /// The last instruction can fall through off the end of the function.
    FallsOffEnd {
        /// Index of the offending (final) instruction.
        inst: usize,
    },
    /// The function has no instructions at all.
    Empty,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UnboundLabel { inst, label } => {
                write!(f, "instruction {inst} branches to unbound label L{label}")
            }
            CfgError::LabelOutOfRange { inst, target } => {
                write!(f, "instruction {inst} branches to out-of-range address {target}")
            }
            CfgError::FallsOffEnd { inst } => {
                write!(f, "instruction {inst} can fall through past the end of the function")
            }
            CfgError::Empty => write!(f, "function has no instructions"),
        }
    }
}

impl std::error::Error for CfgError {}

/// A per-instruction control-flow graph for one machine function.
///
/// # Examples
///
/// ```
/// use vpr::cfg::Cfg;
/// use vpr::inst::Inst;
/// use vpr::program::MachineFunction;
/// use vpr::regs::Reg;
///
/// let mut f = MachineFunction::new("f");
/// f.push(Inst::Ldi { rd: Reg::RV, imm: 1 });
/// f.push(Inst::Bv { base: Reg::RP });
/// let cfg = Cfg::build(&f).unwrap();
/// assert_eq!(cfg.succs(0), &[1]);
/// assert!(cfg.succs(1).is_empty());
/// assert_eq!(cfg.exits(), &[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    exits: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for `f`.
    ///
    /// # Errors
    ///
    /// Returns a [`CfgError`] when the instruction stream is structurally
    /// malformed (unbound label, fallthrough past the end, empty body).
    pub fn build(f: &MachineFunction) -> Result<Cfg, CfgError> {
        let insts = f.insts();
        let n = insts.len();
        if n == 0 {
            return Err(CfgError::Empty);
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let resolve = |i: usize, label: crate::inst::Label| -> Result<usize, CfgError> {
            let target =
                f.label_target(label).ok_or(CfgError::UnboundLabel { inst: i, label: label.0 })?;
            if target >= n {
                return Err(CfgError::LabelOutOfRange { inst: i, target });
            }
            Ok(target)
        };
        for (i, inst) in insts.iter().enumerate() {
            match inst {
                Inst::B { target } => succs[i].push(resolve(i, *target)?),
                Inst::Comb { target, .. } => {
                    succs[i].push(resolve(i, *target)?);
                    if i + 1 >= n {
                        return Err(CfgError::FallsOffEnd { inst: i });
                    }
                    succs[i].push(i + 1);
                }
                Inst::Bv { .. } | Inst::Halt => {}
                _ => {
                    if i + 1 >= n {
                        return Err(CfgError::FallsOffEnd { inst: i });
                    }
                    succs[i].push(i + 1);
                }
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(i);
            }
        }
        let exits = insts
            .iter()
            .enumerate()
            .filter(|(_, inst)| matches!(inst, Inst::Bv { .. } | Inst::Halt))
            .map(|(i, _)| i)
            .collect();
        Ok(Cfg { succs, preds, exits })
    }

    /// Number of nodes (= instructions).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Is the graph empty? (Never true for a built CFG — construction
    /// rejects empty functions — but the conventional pair to `len`.)
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successor instruction indices of node `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Predecessor instruction indices of node `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Indices of terminal instructions (`Bv` and `Halt`), in program order.
    pub fn exits(&self) -> &[usize] {
        &self.exits
    }

    /// Instruction indices reachable from the entry (instruction 0), in a
    /// deterministic order.
    pub fn reachable(&self) -> Vec<usize> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0usize];
        let mut order = Vec::new();
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            order.push(i);
            for &s in self.succs(i).iter().rev() {
                if !seen[s] {
                    stack.push(s);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, Inst};
    use crate::program::MachineFunction;
    use crate::regs::Reg;

    fn ret() -> Inst {
        Inst::Bv { base: Reg::RP }
    }

    #[test]
    fn straight_line() {
        let mut f = MachineFunction::new("f");
        f.push(Inst::Ldi { rd: Reg::RV, imm: 1 });
        f.push(Inst::Nop);
        f.push(ret());
        let cfg = Cfg::build(&f).unwrap();
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.succs(0), &[1]);
        assert_eq!(cfg.succs(1), &[2]);
        assert!(cfg.succs(2).is_empty());
        assert_eq!(cfg.preds(2), &[1]);
        assert_eq!(cfg.exits(), &[2]);
        assert_eq!(cfg.reachable(), vec![0, 1, 2]);
    }

    #[test]
    fn diamond_from_comb() {
        let mut f = MachineFunction::new("f");
        let else_l = f.new_label();
        let join = f.new_label();
        f.push(Inst::Comb { cond: Cond::Eq, rs1: Reg::RV, rs2: Reg::ZERO, target: else_l });
        f.push(Inst::Ldi { rd: Reg::RV, imm: 1 });
        f.push(Inst::B { target: join });
        f.bind_label(else_l);
        f.push(Inst::Ldi { rd: Reg::RV, imm: 2 });
        f.bind_label(join);
        f.push(ret());
        let cfg = Cfg::build(&f).unwrap();
        assert_eq!(cfg.succs(0), &[3, 1]);
        assert_eq!(cfg.succs(2), &[4]);
        let mut preds = cfg.preds(4).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![2, 3]);
    }

    #[test]
    fn calls_fall_through() {
        let mut f = MachineFunction::new("f");
        f.push(Inst::Call { target: "g".into() });
        f.push(ret());
        let cfg = Cfg::build(&f).unwrap();
        assert_eq!(cfg.succs(0), &[1]);
    }

    #[test]
    fn rejects_fallthrough_off_end() {
        let mut f = MachineFunction::new("f");
        f.push(Inst::Nop);
        assert_eq!(Cfg::build(&f).unwrap_err(), CfgError::FallsOffEnd { inst: 0 });
    }

    #[test]
    fn rejects_unbound_label() {
        let mut f = MachineFunction::new("f");
        let l = f.new_label();
        f.push(Inst::B { target: l });
        assert!(matches!(Cfg::build(&f), Err(CfgError::UnboundLabel { inst: 0, .. })));
    }

    #[test]
    fn rejects_empty_function() {
        let f = MachineFunction::new("f");
        assert!(matches!(Cfg::build(&f), Err(CfgError::Empty)));
    }

    #[test]
    fn unreachable_code_is_excluded_from_reachable() {
        let mut f = MachineFunction::new("f");
        f.push(ret());
        f.push(Inst::Ldi { rd: Reg::RV, imm: 9 }); // dead
        f.push(ret());
        let cfg = Cfg::build(&f).unwrap();
        assert_eq!(cfg.reachable(), vec![0]);
        assert_eq!(cfg.exits(), &[0, 2]);
    }
}
