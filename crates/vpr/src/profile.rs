//! Execution profiles: per-pc hit counts and their derived views.
//!
//! When [`SimOptions::profile`](crate::sim::SimOptions::profile) is on,
//! both engines record one counter per code address — `pc_counts[pc]` is
//! bumped once per executed instruction — and return the raw vector as
//! [`ExecProfile`] in [`RunResult::profile`](crate::sim::RunResult::profile).
//!
//! Everything else (the per-opcode-class histogram, per-basic-block hot
//! counts, per-procedure self-cycle tables) is *derived after the run* by
//! joining `pc_counts` with the executable's instruction and function
//! tables. Because the engines agree on every executed pc (the bit-identity
//! invariant), derived profiles are identical across engines **by
//! construction**, and the total of every view equals
//! [`RunStats::cycles`](crate::sim::RunStats::cycles) exactly — each
//! executed cycle bumps exactly one pc slot.

use crate::inst::Inst;
use crate::program::Executable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The raw execution profile of one run: `pc_counts[pc]` = number of times
/// the instruction at `pc` executed. `pc_counts.len()` equals the
/// executable's code length; the sum of all slots equals the run's cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecProfile {
    /// Executions per code address, dense over the whole code segment.
    pub pc_counts: Vec<u64>,
}

/// One basic block's share of a profile (see [`ExecProfile::block_counts`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCount {
    /// First pc of the block.
    pub start: usize,
    /// One past the last pc of the block.
    pub end: usize,
    /// Executions of the block head (how often control entered here).
    pub entries: u64,
    /// Total cycles spent in the block (sum of its pcs' counts).
    pub cycles: u64,
    /// `proc+offset` symbolization of `start`, when it falls inside a
    /// linked procedure.
    pub sym: Option<String>,
}

/// One procedure's share of a profile (see [`ExecProfile::proc_table`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcProfileRow {
    /// Link name ([`crate::sim::STARTUP_PROC`] for the startup stub).
    pub name: String,
    /// Cycles spent in the procedure's own instructions.
    pub self_cycles: u64,
}

impl ExecProfile {
    /// Total executed instructions — equals the run's
    /// [`RunStats::cycles`](crate::sim::RunStats::cycles) by construction.
    pub fn total(&self) -> u64 {
        self.pc_counts.iter().sum()
    }

    /// Instructions retired per opcode class (see [`Inst::opcode_class`]),
    /// keyed by class name for deterministic iteration. Sums to
    /// [`total`](ExecProfile::total).
    pub fn opcode_histogram(&self, exe: &Executable) -> BTreeMap<String, u64> {
        let mut h = BTreeMap::new();
        for (pc, inst) in exe.insts().iter().enumerate() {
            let n = self.pc_counts.get(pc).copied().unwrap_or(0);
            if n > 0 {
                *h.entry(inst.opcode_class().to_string()).or_insert(0) += n;
            }
        }
        h
    }

    /// Folds the profile into basic blocks of the linked code: leaders are
    /// pc 0, every branch/call target, every procedure entry, and every
    /// successor of a control transfer. Blocks are returned in address
    /// order with entry counts, cycle totals, and symbolized heads; block
    /// cycle totals sum to [`total`](ExecProfile::total).
    pub fn block_counts(&self, exe: &Executable) -> Vec<BlockCount> {
        let code = exe.insts();
        let n = code.len();
        let mut leader = vec![false; n + 1];
        leader[0] = true;
        for f in exe.funcs() {
            if f.entry <= n {
                leader[f.entry] = true;
            }
        }
        for (pc, inst) in code.iter().enumerate() {
            match inst {
                Inst::B { target } => {
                    if (target.0 as usize) < n {
                        leader[target.0 as usize] = true;
                    }
                    leader[pc + 1] = true;
                }
                Inst::Comb { target, .. } => {
                    if (target.0 as usize) < n {
                        leader[target.0 as usize] = true;
                    }
                    leader[pc + 1] = true;
                }
                Inst::CallAbs { entry } => {
                    if (*entry as usize) < n {
                        leader[*entry as usize] = true;
                    }
                    leader[pc + 1] = true;
                }
                Inst::CallInd { .. } | Inst::Bv { .. } | Inst::Halt => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0usize;
        for (pc, &lead) in leader.iter().enumerate().skip(1) {
            if pc == n || lead {
                let cycles: u64 =
                    (start..pc).map(|i| self.pc_counts.get(i).copied().unwrap_or(0)).sum();
                blocks.push(BlockCount {
                    start,
                    end: pc,
                    entries: self.pc_counts.get(start).copied().unwrap_or(0),
                    cycles,
                    sym: exe.symbolize(start),
                });
                start = pc;
            }
        }
        blocks
    }

    /// The run's deterministic simulator counters: total cycles, memory
    /// and call traffic from `stats`, plus `sim.op.<class>` instructions
    /// retired per opcode class from this profile. Because the profile and
    /// every [`RunStats`](crate::sim::RunStats) field are bit-identical
    /// across engines, so is this map.
    pub fn sim_counters(
        &self,
        exe: &Executable,
        stats: &crate::sim::RunStats,
    ) -> BTreeMap<String, u64> {
        let mut c = BTreeMap::new();
        c.insert("sim.cycles".to_string(), stats.cycles);
        c.insert("sim.loads".to_string(), stats.loads);
        c.insert("sim.stores".to_string(), stats.stores);
        c.insert("sim.calls".to_string(), stats.calls);
        for (class, n) in self.opcode_histogram(exe) {
            c.insert(format!("sim.op.{class}"), n);
        }
        c
    }

    /// Per-procedure self-cycle table in link order, with a final
    /// [`crate::sim::STARTUP_PROC`] row for code outside every linked
    /// procedure. `self_cycles` sums to [`total`](ExecProfile::total).
    pub fn proc_table(&self, exe: &Executable) -> Vec<ProcProfileRow> {
        let mut covered = vec![false; self.pc_counts.len()];
        let mut rows = Vec::with_capacity(exe.funcs().len() + 1);
        for f in exe.funcs() {
            let end = (f.entry + f.len).min(self.pc_counts.len());
            let start = f.entry.min(end);
            let mut self_cycles = 0u64;
            for (pc, seen) in covered.iter_mut().enumerate().take(end).skip(start) {
                if !*seen {
                    *seen = true;
                    self_cycles += self.pc_counts[pc];
                }
            }
            rows.push(ProcProfileRow { name: f.name.clone(), self_cycles });
        }
        let outside: u64 =
            self.pc_counts.iter().zip(&covered).filter_map(|(&n, &c)| (!c).then_some(n)).sum();
        rows.push(ProcProfileRow {
            name: crate::sim::STARTUP_PROC.to_string(),
            self_cycles: outside,
        });
        rows
    }
}

impl Inst {
    /// The instruction's opcode class for profile histograms: a small,
    /// stable set of names grouping variants by what they do dynamically.
    /// Pseudo variants share their resolved form's class (a linked
    /// executable never contains them anyway).
    pub fn opcode_class(&self) -> &'static str {
        match self {
            Inst::Ldi { .. } => "ldi",
            Inst::Copy { .. } => "copy",
            Inst::Alu { .. } => "alu",
            Inst::Alui { .. } => "alui",
            Inst::Cmp { .. } => "cmp",
            Inst::Ldw { .. } | Inst::Ldg { .. } => "load",
            Inst::Stw { .. } | Inst::Stg { .. } => "store",
            Inst::Lga { .. } | Inst::Ldfa { .. } => "addr",
            Inst::Call { .. } | Inst::CallAbs { .. } | Inst::CallInd { .. } => "call",
            Inst::Bv { .. } => "bv",
            Inst::B { .. } | Inst::Comb { .. } => "branch",
            Inst::Out { .. } => "out",
            Inst::In { .. } => "in",
            Inst::Halt => "halt",
            Inst::Nop => "nop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond};
    use crate::program::{link, MachineFunction, ObjectModule};
    use crate::regs::Reg;
    use crate::sim::{run_with, Engine, SimOptions};

    fn looping_exe() -> Executable {
        // sum 1..=5 via a COMB loop, then call leaf once.
        let mut leaf = MachineFunction::new("leaf");
        leaf.push(Inst::Alui { op: AluOp::Add, rd: Reg::RV, rs1: Reg::ARGS[0], imm: 1 });
        leaf.push(Inst::Bv { base: Reg::RP });
        let mut f = MachineFunction::new("main");
        f.push(Inst::Copy { rd: Reg::new(3), rs: Reg::RP });
        let r_i = Reg::new(19);
        let r_lim = Reg::new(20);
        f.push(Inst::Ldi { rd: r_i, imm: 1 });
        f.push(Inst::Ldi { rd: r_lim, imm: 5 });
        let top = f.new_label();
        let done = f.new_label();
        f.bind_label(top);
        f.push(Inst::Comb { cond: Cond::Gt, rs1: r_i, rs2: r_lim, target: done });
        f.push(Inst::Alui { op: AluOp::Add, rd: r_i, rs1: r_i, imm: 1 });
        f.push(Inst::B { target: top });
        f.bind_label(done);
        f.push(Inst::Copy { rd: Reg::ARGS[0], rs: r_i });
        f.push(Inst::Call { target: "leaf".into() });
        f.push(Inst::Copy { rd: Reg::RP, rs: Reg::new(3) });
        f.push(Inst::Bv { base: Reg::RP });
        link(&[ObjectModule {
            name: "t".into(),
            functions: vec![leaf, f],
            globals: vec![],
            ..Default::default()
        }])
        .unwrap()
    }

    #[test]
    fn profile_totals_equal_cycles_and_engines_agree() {
        let exe = looping_exe();
        let mut results = Vec::new();
        for engine in [Engine::Fast, Engine::Reference] {
            let opts = SimOptions { profile: true, engine, ..SimOptions::default() };
            results.push(run_with(&exe, &opts).unwrap());
        }
        assert_eq!(results[0], results[1]);
        let r = &results[0];
        let p = r.profile.as_ref().unwrap();
        assert_eq!(p.pc_counts.len(), exe.code_len());
        assert_eq!(p.total(), r.stats.cycles);
        let hist = p.opcode_histogram(&exe);
        assert_eq!(hist.values().sum::<u64>(), r.stats.cycles);
        // The loop body ran 5 times.
        assert_eq!(hist["branch"], 6 /* COMB */ + 5 /* B */);
        let blocks = p.block_counts(&exe);
        assert_eq!(blocks.iter().map(|b| b.cycles).sum::<u64>(), r.stats.cycles);
        let procs = p.proc_table(&exe);
        assert_eq!(procs.iter().map(|row| row.self_cycles).sum::<u64>(), r.stats.cycles);
        let main = procs.iter().find(|row| row.name == "main").unwrap();
        assert!(main.self_cycles > 0);
        let stub = procs.last().unwrap();
        assert_eq!(stub.name, crate::sim::STARTUP_PROC);
        assert_eq!(stub.self_cycles, 2); // CALL main + HALT
    }

    #[test]
    fn profiling_never_perturbs_the_run() {
        let exe = looping_exe();
        let plain = run_with(&exe, &SimOptions::default()).unwrap();
        let profiled =
            run_with(&exe, &SimOptions { profile: true, ..SimOptions::default() }).unwrap();
        assert_eq!(plain.stats, profiled.stats);
        assert_eq!(plain.output, profiled.output);
        assert_eq!(plain.exit, profiled.exit);
        assert!(plain.profile.is_none());
        assert!(profiled.profile.is_some());
    }

    #[test]
    fn block_heads_are_symbolized() {
        let exe = looping_exe();
        let opts = SimOptions { profile: true, ..SimOptions::default() };
        let r = run_with(&exe, &opts).unwrap();
        let blocks = r.profile.unwrap().block_counts(&exe);
        assert!(blocks.iter().any(|b| b.sym.as_deref() == Some("main+0")));
        assert!(blocks.iter().any(|b| b.sym.as_deref() == Some("leaf+0")));
    }
}
