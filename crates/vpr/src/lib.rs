//! # vpr — the Virtual Precision RISC
//!
//! The measurement substrate for the PLDI'90 interprocedural register
//! allocation reproduction: a PA-RISC-flavoured 32-register load/store
//! machine, an object-module linker, and a counting simulator.
//!
//! The paper evaluated on HP PA-RISC using a cycle-accurate simulator that
//! excluded cache effects; `vpr` plays that role here. It provides:
//!
//! * [`regs`] — the register file, the callee/caller-saves linkage
//!   convention, and the [`regs::RegSet`] bitset used throughout the
//!   analyzer,
//! * [`inst`] — the instruction set, including relocatable pseudo
//!   instructions for global and procedure references,
//! * [`cfg`] — per-instruction control-flow graphs over machine functions,
//!   the substrate for machine-level dataflow (the `ipra-verify` checker),
//! * [`object`] — symbolic relocation and symbol-table views of object
//!   modules (what the linker resolves and `objdump` renders),
//! * [`program`] — machine functions, object modules, and the
//!   [linker](program::link),
//! * [`sim`] — the reference simulator, with cycle, memory-reference
//!   (singleton vs. other), and call-profile accounting,
//! * [`exec`] — the fast pre-decoded execution engine, bit-identical to
//!   [`sim`] in every observable (selected via [`sim::Engine`]),
//! * [`profile`] — per-pc execution profiles recorded by both engines and
//!   their derived opcode/block/procedure hot tables,
//! * [`asm`] — diagnostic assembly rendering.
//!
//! # Examples
//!
//! ```
//! # use vpr::program::{link, MachineFunction, ObjectModule};
//! # use vpr::inst::Inst;
//! # use vpr::regs::Reg;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = MachineFunction::new("main");
//! f.push(Inst::Ldi { rd: Reg::RV, imm: 42 });
//! f.push(Inst::Bv { base: Reg::RP });
//! let exe = link(&[ObjectModule { name: "m".into(), functions: vec![f], globals: vec![], ..Default::default() }])?;
//! let result = vpr::sim::run(&exe)?;
//! assert_eq!(result.exit, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cfg;
pub mod exec;
pub mod inst;
pub mod object;
pub mod profile;
pub mod program;
pub mod regs;
pub mod sim;
pub mod target;

pub use exec::{decode, DecodedProgram};
pub use inst::{AluOp, Cond, Inst, Label, MemClass};
pub use object::{program_symbols, RelocKind, Relocation, SymbolTable};
pub use profile::{BlockCount, ExecProfile, ProcProfileRow};
pub use program::{
    link, link_with, Executable, GlobalDef, LinkError, LinkOptions, MachineFunction, ObjectModule,
};
pub use regs::{Reg, RegSet};
pub use sim::{
    run, run_with, Attribution, Engine, ProcCost, RunResult, RunStats, SimError, SimOptions,
    STARTUP_PROC,
};
pub use target::{TargetDesc, TargetId};
