//! Model-based property tests for [`vpr::regs::RegSet`]: every operation
//! must agree with a `HashSet<usize>` reference model. The analyzer's
//! register-set algebra (AVAIL intersections, MSPILL migrations) rides on
//! this type, so it gets the heavy treatment.

use proptest::prelude::*;
use std::collections::HashSet;
use vpr::regs::{Reg, RegSet};

fn reg_vec() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..32, 0..20)
}

fn build(regs: &[u8]) -> (RegSet, HashSet<usize>) {
    let mut s = RegSet::new();
    let mut m = HashSet::new();
    for &r in regs {
        s.insert(Reg::new(r));
        m.insert(r as usize);
    }
    (s, m)
}

proptest! {
    #[test]
    fn insert_remove_contains_match_model(ops in prop::collection::vec((0u8..32, any::<bool>()), 0..50)) {
        let mut s = RegSet::new();
        let mut m: HashSet<usize> = HashSet::new();
        for (r, insert) in ops {
            let reg = Reg::new(r);
            if insert {
                prop_assert_eq!(s.insert(reg), m.insert(r as usize));
            } else {
                prop_assert_eq!(s.remove(reg), m.remove(&(r as usize)));
            }
            prop_assert_eq!(s.contains(reg), m.contains(&(r as usize)));
            prop_assert_eq!(s.len(), m.len());
            prop_assert_eq!(s.is_empty(), m.is_empty());
        }
    }

    #[test]
    fn set_algebra_matches_model(a in reg_vec(), b in reg_vec()) {
        let (sa, ma) = build(&a);
        let (sb, mb) = build(&b);

        let union: HashSet<usize> = (sa | sb).iter().map(Reg::index).collect();
        prop_assert_eq!(&union, &ma.union(&mb).copied().collect::<HashSet<_>>());

        let inter: HashSet<usize> = (sa & sb).iter().map(Reg::index).collect();
        prop_assert_eq!(&inter, &ma.intersection(&mb).copied().collect::<HashSet<_>>());

        let diff: HashSet<usize> = (sa - sb).iter().map(Reg::index).collect();
        prop_assert_eq!(&diff, &ma.difference(&mb).copied().collect::<HashSet<_>>());

        prop_assert_eq!(sa.is_subset(sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(sb), ma.is_disjoint(&mb));
    }

    #[test]
    fn iteration_is_sorted_and_complete(a in reg_vec()) {
        let (s, m) = build(&a);
        let items: Vec<usize> = s.iter().map(Reg::index).collect();
        let mut sorted = items.clone();
        sorted.sort();
        prop_assert_eq!(&items, &sorted, "iteration must ascend");
        prop_assert_eq!(items.into_iter().collect::<HashSet<_>>(), m);
    }

    #[test]
    fn assign_ops_match_binary_ops(a in reg_vec(), b in reg_vec()) {
        let (sa, _) = build(&a);
        let (sb, _) = build(&b);
        let mut x = sa;
        x |= sb;
        prop_assert_eq!(x, sa | sb);
        let mut x = sa;
        x &= sb;
        prop_assert_eq!(x, sa & sb);
        let mut x = sa;
        x -= sb;
        prop_assert_eq!(x, sa - sb);
    }

    #[test]
    fn from_iterator_and_bits_round_trip(a in reg_vec()) {
        let (s, _) = build(&a);
        let rebuilt: RegSet = s.iter().collect();
        prop_assert_eq!(rebuilt, s);
        prop_assert_eq!(RegSet::from_bits(s.bits()), s);
    }

    #[test]
    fn pop_first_drains_in_order(a in reg_vec()) {
        let (mut s, m) = build(&a);
        let mut drained = Vec::new();
        while let Some(r) = s.pop_first() {
            drained.push(r.index());
        }
        prop_assert!(s.is_empty());
        let mut expect: Vec<usize> = m.into_iter().collect();
        expect.sort();
        prop_assert_eq!(drained, expect);
    }
}
