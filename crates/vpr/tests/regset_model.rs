//! Model-based property tests for [`vpr::regs::RegSet`]: every operation
//! must agree with a `HashSet<usize>` reference model. The analyzer's
//! register-set algebra (AVAIL intersections, MSPILL migrations) rides on
//! this type, so it gets the heavy treatment — a seeded RNG drives random
//! operation sequences (the offline toolchain has no proptest).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use vpr::regs::{Reg, RegSet};

const CASES: u64 = 256;

fn random_regs(rng: &mut StdRng) -> Vec<u8> {
    let n = rng.gen_range(0..20usize);
    (0..n).map(|_| rng.gen_range(0..32u8)).collect()
}

fn build(regs: &[u8]) -> (RegSet, HashSet<usize>) {
    let mut s = RegSet::new();
    let mut m = HashSet::new();
    for &r in regs {
        s.insert(Reg::new(r));
        m.insert(r as usize);
    }
    (s, m)
}

#[test]
fn insert_remove_contains_match_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_ops = rng.gen_range(0..50usize);
        let mut s = RegSet::new();
        let mut m: HashSet<usize> = HashSet::new();
        for _ in 0..n_ops {
            let r = rng.gen_range(0..32u8);
            let reg = Reg::new(r);
            if rng.gen_bool(0.5) {
                assert_eq!(s.insert(reg), m.insert(r as usize), "seed {seed}");
            } else {
                assert_eq!(s.remove(reg), m.remove(&(r as usize)), "seed {seed}");
            }
            assert_eq!(s.contains(reg), m.contains(&(r as usize)), "seed {seed}");
            assert_eq!(s.len(), m.len(), "seed {seed}");
            assert_eq!(s.is_empty(), m.is_empty(), "seed {seed}");
        }
    }
}

#[test]
fn set_algebra_matches_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (sa, ma) = build(&random_regs(&mut rng));
        let (sb, mb) = build(&random_regs(&mut rng));

        let union: HashSet<usize> = (sa | sb).iter().map(Reg::index).collect();
        assert_eq!(union, ma.union(&mb).copied().collect::<HashSet<_>>(), "seed {seed}");

        let inter: HashSet<usize> = (sa & sb).iter().map(Reg::index).collect();
        assert_eq!(inter, ma.intersection(&mb).copied().collect::<HashSet<_>>(), "seed {seed}");

        let diff: HashSet<usize> = (sa - sb).iter().map(Reg::index).collect();
        assert_eq!(diff, ma.difference(&mb).copied().collect::<HashSet<_>>(), "seed {seed}");

        assert_eq!(sa.is_subset(sb), ma.is_subset(&mb), "seed {seed}");
        assert_eq!(sa.is_disjoint(sb), ma.is_disjoint(&mb), "seed {seed}");
    }
}

#[test]
fn iteration_is_sorted_and_complete() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (s, m) = build(&random_regs(&mut rng));
        let items: Vec<usize> = s.iter().map(Reg::index).collect();
        let mut sorted = items.clone();
        sorted.sort();
        assert_eq!(items, sorted, "seed {seed}: iteration must ascend");
        assert_eq!(items.into_iter().collect::<HashSet<_>>(), m, "seed {seed}");
    }
}

#[test]
fn assign_ops_match_binary_ops() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (sa, _) = build(&random_regs(&mut rng));
        let (sb, _) = build(&random_regs(&mut rng));
        let mut x = sa;
        x |= sb;
        assert_eq!(x, sa | sb, "seed {seed}");
        let mut x = sa;
        x &= sb;
        assert_eq!(x, sa & sb, "seed {seed}");
        let mut x = sa;
        x -= sb;
        assert_eq!(x, sa - sb, "seed {seed}");
    }
}

#[test]
fn from_iterator_and_bits_round_trip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (s, _) = build(&random_regs(&mut rng));
        let rebuilt: RegSet = s.iter().collect();
        assert_eq!(rebuilt, s, "seed {seed}");
        assert_eq!(RegSet::from_bits(s.bits()), s, "seed {seed}");
    }
}

#[test]
fn pop_first_drains_in_order() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut s, m) = build(&random_regs(&mut rng));
        let mut drained = Vec::new();
        while let Some(r) = s.pop_first() {
            drained.push(r.index());
        }
        assert!(s.is_empty(), "seed {seed}");
        let mut expect: Vec<usize> = m.into_iter().collect();
        expect.sort();
        assert_eq!(drained, expect, "seed {seed}");
    }
}
