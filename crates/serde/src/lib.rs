//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace carries a
//! small value-based serialization framework under the same crate name. It
//! implements exactly the subset this repository uses:
//!
//! - `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (unit, newtype, tuple and struct variants),
//! - field attributes `#[serde(default)]` and `#[serde(default = "path")]`,
//! - container attribute `#[serde(into = "T", from = "T")]`,
//! - the `serde_json` front end (`to_string`, `to_string_pretty`,
//!   `from_str`).
//!
//! Serialization goes through the [`Value`] tree, mirroring serde's JSON
//! data model (externally tagged enums, transparent newtypes, `null` for
//! `None`), so the on-disk JSON produced by the real serde for these types
//! round-trips here and vice versa.
//!
//! The same derives additionally emit a positional **binary** codec
//! ([`BinSerialize`] / [`BinDeserialize`]) that skips the `Value` tree
//! entirely — see the binary-codec section below. It is a private wire
//! format for callers that own both ends (the persistent compilation
//! cache); JSON remains the interchange format.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A JSON-shaped value tree: the wire format of this serde stand-in.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature) so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer the workspace serializes; a
    /// `u64` above `i64::MAX` uses [`Value::UInt`]).
    Int(i64),
    /// Unsigned integer that does not fit in `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => obj_get(fields, key),
            _ => None,
        }
    }
}

/// Field lookup in an insertion-ordered object body.
pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable message with enough context to
/// find the offending field.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Builds a "missing field" error (used by derived code).
pub fn missing_field<T>(ty: &str, field: &str) -> Result<T, DeError> {
    Err(DeError(format!("{ty}: missing field `{field}`")))
}

/// Builds an "unknown enum variant" error (used by derived code).
pub fn unknown_variant<T>(ty: &str, variant: &str) -> Result<T, DeError> {
    Err(DeError(format!("{ty}: unknown variant `{variant}`")))
}

/// Builds a type-mismatch error (used by derived code).
pub fn unexpected<T>(ty: &str, want: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("{ty}: expected {want}, found {}", got.kind())))
}

/// Whether a field still holds its type's default value — the test behind
/// `#[serde(skip_default)]`, which omits such fields from serialized
/// objects (pair it with `#[serde(default)]` so they also read back).
pub fn is_default<T: Default + PartialEq>(v: &T) -> bool {
    *v == T::default()
}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => {
                        i64::try_from(n).map_err(|_| DeError(format!("integer {n} overflows")))?
                    }
                    ref other => return unexpected(stringify!($t), "integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                let n: u64 = match *v {
                    Value::Int(n) => {
                        u64::try_from(n).map_err(|_| DeError(format!("integer {n} is negative")))?
                    }
                    Value::UInt(n) => n,
                    ref other => return unexpected(stringify!($t), "integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => unexpected("bool", "bool", other),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, DeError> {
        match *v {
            Value::Float(x) => Ok(x),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            ref other => unexpected("f64", "number", other),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => unexpected("String", "string", other),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => unexpected("char", "single-character string", other),
        }
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, DeError> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => unexpected("Vec", "array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<($($t,)+), DeError> {
                const LEN: usize = [$($n),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    other => unexpected("tuple", "fixed-length array", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// Maps serialize as sorted arrays of `[key, value]` pairs. (The real
// serde_json rejects non-string map keys outright; this workspace carries
// tuple- and integer-keyed maps, so the pair-array form is used uniformly.)
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<Value> =
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect();
        entries.sort_by_key(|e| format!("{e:?}"));
        Value::Array(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<HashMap<K, V, S>, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|item| match item {
                    Value::Array(pair) if pair.len() == 2 => {
                        Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
                    }
                    other => unexpected("HashMap entry", "[key, value] pair", other),
                })
                .collect(),
            other => unexpected("HashMap", "array of pairs", other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|item| match item {
                    Value::Array(pair) if pair.len() == 2 => {
                        Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
                    }
                    other => unexpected("BTreeMap entry", "[key, value] pair", other),
                })
                .collect(),
            other => unexpected("BTreeMap", "array of pairs", other),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn deserialize(v: &Value) -> Result<HashSet<T, S>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => unexpected("HashSet", "array", other),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<BTreeSet<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => unexpected("BTreeSet", "array", other),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------ binary codec
//
// A second, positional wire format alongside the [`Value`] tree. The JSON
// data model spends most of its decode time materializing an intermediate
// tree — every field name a heap `String`, every node an enum — only to
// walk it once and throw it away. The binary codec goes straight between
// structs and bytes: fields travel in declaration order with no names, so
// the schema lives in the type and a load allocates each string and vector
// exactly once. Both formats are emitted by the same derives; callers that
// own both ends of the wire (the persistent compilation cache) use this
// one, while JSON stays the interchange format.
//
// Wire format (all integers little-endian): integers widen to 8 bytes;
// `bool` and `Option` tags are 1 byte; strings and collections are
// u32-length-prefixed; enums are a u32 variant index (declaration order)
// followed by the payload fields. Hash-ordered containers sort by encoded
// key so identical values always produce identical bytes.

/// Types that can append themselves to the positional binary format.
pub trait BinSerialize {
    /// Appends the binary encoding of `self` to `out`.
    fn bin_serialize(&self, out: &mut Vec<u8>);
}

/// Types that can be rebuilt from the positional binary format.
pub trait BinDeserialize: Sized {
    /// Consumes `Self`'s encoding from the front of `cursor`.
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<Self, DeError>;
}

/// Splits `n` bytes off the front of `cursor` (decode building block).
pub fn bin_take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], DeError> {
    if cursor.len() < n {
        return Err(DeError(format!(
            "binary payload truncated: need {n} bytes, have {}",
            cursor.len()
        )));
    }
    let (head, tail) = cursor.split_at(n);
    *cursor = tail;
    Ok(head)
}

/// Writes a u32 length prefix (panics on `> u32::MAX` elements).
pub fn bin_put_len(n: usize, out: &mut Vec<u8>) {
    let n = u32::try_from(n).expect("binary codec: collection exceeds u32::MAX elements");
    out.extend_from_slice(&n.to_le_bytes());
}

/// Reads a u32 (length prefixes, enum variant indices).
pub fn bin_take_u32(cursor: &mut &[u8]) -> Result<u32, DeError> {
    Ok(u32::from_le_bytes(bin_take(cursor, 4)?.try_into().expect("4-byte slice")))
}

/// Reads a length prefix. The value is *claimed*, not trusted: callers cap
/// pre-allocation at the bytes actually remaining, so a corrupt length
/// fails on a later read instead of ballooning memory.
pub fn bin_take_len(cursor: &mut &[u8]) -> Result<usize, DeError> {
    Ok(bin_take_u32(cursor)? as usize)
}

/// Builds an "unknown variant index" error (used by derived code).
pub fn bin_bad_variant<T>(ty: &str, index: u32) -> Result<T, DeError> {
    Err(DeError(format!("{ty}: unknown binary variant index {index}")))
}

macro_rules! impl_bin_int {
    ($wide:ty; $($t:ty),*) => {$(
        impl BinSerialize for $t {
            fn bin_serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&(*self as $wide).to_le_bytes());
            }
        }
        impl BinDeserialize for $t {
            fn bin_deserialize(cursor: &mut &[u8]) -> Result<$t, DeError> {
                let n = <$wide>::from_le_bytes(bin_take(cursor, 8)?.try_into().expect("8-byte slice"));
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_bin_int!(i64; i8, i16, i32, i64, isize);
impl_bin_int!(u64; u8, u16, u32, u64, usize);

impl BinSerialize for bool {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl BinDeserialize for bool {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<bool, DeError> {
        match bin_take(cursor, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DeError(format!("bool: invalid byte {other}"))),
        }
    }
}

impl BinSerialize for f64 {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl BinDeserialize for f64 {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<f64, DeError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            bin_take(cursor, 8)?.try_into().expect("8-byte slice"),
        )))
    }
}

impl BinSerialize for String {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        self.as_str().bin_serialize(out);
    }
}

impl BinDeserialize for String {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<String, DeError> {
        let len = bin_take_len(cursor)?;
        String::from_utf8(bin_take(cursor, len)?.to_vec())
            .map_err(|_| DeError("string: invalid UTF-8".to_string()))
    }
}

impl BinSerialize for str {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        bin_put_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl BinSerialize for char {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_le_bytes());
    }
}

impl BinDeserialize for char {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<char, DeError> {
        let n = bin_take_u32(cursor)?;
        char::from_u32(n).ok_or_else(|| DeError(format!("char: invalid scalar value {n}")))
    }
}

impl<T: BinSerialize + ?Sized> BinSerialize for &T {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        (**self).bin_serialize(out);
    }
}

impl<T: BinSerialize + ?Sized> BinSerialize for Box<T> {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        (**self).bin_serialize(out);
    }
}

impl<T: BinDeserialize> BinDeserialize for Box<T> {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<Box<T>, DeError> {
        Ok(Box::new(T::bin_deserialize(cursor)?))
    }
}

impl<T: BinSerialize> BinSerialize for Option<T> {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(x) => {
                out.push(1);
                x.bin_serialize(out);
            }
        }
    }
}

impl<T: BinDeserialize> BinDeserialize for Option<T> {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<Option<T>, DeError> {
        match bin_take(cursor, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::bin_deserialize(cursor)?)),
            other => Err(DeError(format!("Option: invalid tag {other}"))),
        }
    }
}

impl<T: BinSerialize> BinSerialize for Vec<T> {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        self.as_slice().bin_serialize(out);
    }
}

impl<T: BinDeserialize> BinDeserialize for Vec<T> {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<Vec<T>, DeError> {
        let n = bin_take_len(cursor)?;
        let mut items = Vec::with_capacity(n.min(cursor.len()));
        for _ in 0..n {
            items.push(T::bin_deserialize(cursor)?);
        }
        Ok(items)
    }
}

impl<T: BinSerialize> BinSerialize for [T] {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        bin_put_len(self.len(), out);
        for item in self {
            item.bin_serialize(out);
        }
    }
}

macro_rules! impl_bin_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: BinSerialize),+> BinSerialize for ($($t,)+) {
            fn bin_serialize(&self, out: &mut Vec<u8>) {
                $(self.$n.bin_serialize(out);)+
            }
        }
        impl<$($t: BinDeserialize),+> BinDeserialize for ($($t,)+) {
            fn bin_deserialize(cursor: &mut &[u8]) -> Result<($($t,)+), DeError> {
                Ok(($($t::bin_deserialize(cursor)?,)+))
            }
        }
    )*};
}

impl_bin_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Length-prefixed `(key, value)` stream, sorted by encoded key bytes so
/// hash-ordered maps encode deterministically (keys are unique, so the
/// byte order is total).
fn bin_encode_pairs<'a, K, V>(
    pairs: impl Iterator<Item = (&'a K, &'a V)>,
    len: usize,
    out: &mut Vec<u8>,
) where
    K: BinSerialize + 'a,
    V: BinSerialize + 'a,
{
    let mut entries: Vec<(Vec<u8>, &V)> = pairs
        .map(|(k, v)| {
            let mut kb = Vec::new();
            k.bin_serialize(&mut kb);
            (kb, v)
        })
        .collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    bin_put_len(len, out);
    for (kb, v) in entries {
        out.extend_from_slice(&kb);
        v.bin_serialize(out);
    }
}

impl<K: BinSerialize, V: BinSerialize, S> BinSerialize for HashMap<K, V, S> {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        bin_encode_pairs(self.iter(), self.len(), out);
    }
}

impl<K, V, S> BinDeserialize for HashMap<K, V, S>
where
    K: BinDeserialize + Eq + std::hash::Hash,
    V: BinDeserialize,
    S: std::hash::BuildHasher + Default,
{
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<HashMap<K, V, S>, DeError> {
        let n = bin_take_len(cursor)?;
        let mut map = HashMap::with_capacity_and_hasher(n.min(cursor.len()), S::default());
        for _ in 0..n {
            map.insert(K::bin_deserialize(cursor)?, V::bin_deserialize(cursor)?);
        }
        Ok(map)
    }
}

impl<K: BinSerialize, V: BinSerialize> BinSerialize for BTreeMap<K, V> {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        bin_put_len(self.len(), out);
        for (k, v) in self {
            k.bin_serialize(out);
            v.bin_serialize(out);
        }
    }
}

impl<K: BinDeserialize + Ord, V: BinDeserialize> BinDeserialize for BTreeMap<K, V> {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<BTreeMap<K, V>, DeError> {
        let n = bin_take_len(cursor)?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = K::bin_deserialize(cursor)?;
            let v = V::bin_deserialize(cursor)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: BinSerialize, S> BinSerialize for HashSet<T, S> {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        let mut entries: Vec<Vec<u8>> = self
            .iter()
            .map(|x| {
                let mut xb = Vec::new();
                x.bin_serialize(&mut xb);
                xb
            })
            .collect();
        entries.sort_unstable();
        bin_put_len(entries.len(), out);
        for xb in entries {
            out.extend_from_slice(&xb);
        }
    }
}

impl<T: BinDeserialize + Eq + std::hash::Hash, S: std::hash::BuildHasher + Default> BinDeserialize
    for HashSet<T, S>
{
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<HashSet<T, S>, DeError> {
        let n = bin_take_len(cursor)?;
        let mut set = HashSet::with_capacity_and_hasher(n.min(cursor.len()), S::default());
        for _ in 0..n {
            set.insert(T::bin_deserialize(cursor)?);
        }
        Ok(set)
    }
}

impl<T: BinSerialize> BinSerialize for BTreeSet<T> {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        bin_put_len(self.len(), out);
        for item in self {
            item.bin_serialize(out);
        }
    }
}

impl<T: BinDeserialize + Ord> BinDeserialize for BTreeSet<T> {
    fn bin_deserialize(cursor: &mut &[u8]) -> Result<BTreeSet<T>, DeError> {
        let n = bin_take_len(cursor)?;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(T::bin_deserialize(cursor)?);
        }
        Ok(set)
    }
}
