//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace carries a
//! small value-based serialization framework under the same crate name. It
//! implements exactly the subset this repository uses:
//!
//! - `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (unit, newtype, tuple and struct variants),
//! - field attributes `#[serde(default)]` and `#[serde(default = "path")]`,
//! - container attribute `#[serde(into = "T", from = "T")]`,
//! - the `serde_json` front end (`to_string`, `to_string_pretty`,
//!   `from_str`).
//!
//! Serialization goes through the [`Value`] tree, mirroring serde's JSON
//! data model (externally tagged enums, transparent newtypes, `null` for
//! `None`), so the on-disk JSON produced by the real serde for these types
//! round-trips here and vice versa.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A JSON-shaped value tree: the wire format of this serde stand-in.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature) so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer the workspace serializes; a
    /// `u64` above `i64::MAX` uses [`Value::UInt`]).
    Int(i64),
    /// Unsigned integer that does not fit in `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => obj_get(fields, key),
            _ => None,
        }
    }
}

/// Field lookup in an insertion-ordered object body.
pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable message with enough context to
/// find the offending field.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Builds a "missing field" error (used by derived code).
pub fn missing_field<T>(ty: &str, field: &str) -> Result<T, DeError> {
    Err(DeError(format!("{ty}: missing field `{field}`")))
}

/// Builds an "unknown enum variant" error (used by derived code).
pub fn unknown_variant<T>(ty: &str, variant: &str) -> Result<T, DeError> {
    Err(DeError(format!("{ty}: unknown variant `{variant}`")))
}

/// Builds a type-mismatch error (used by derived code).
pub fn unexpected<T>(ty: &str, want: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError(format!("{ty}: expected {want}, found {}", got.kind())))
}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => {
                        i64::try_from(n).map_err(|_| DeError(format!("integer {n} overflows")))?
                    }
                    ref other => return unexpected(stringify!($t), "integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                let n: u64 = match *v {
                    Value::Int(n) => {
                        u64::try_from(n).map_err(|_| DeError(format!("integer {n} is negative")))?
                    }
                    Value::UInt(n) => n,
                    ref other => return unexpected(stringify!($t), "integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => unexpected("bool", "bool", other),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, DeError> {
        match *v {
            Value::Float(x) => Ok(x),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            ref other => unexpected("f64", "number", other),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => unexpected("String", "string", other),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => unexpected("char", "single-character string", other),
        }
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, DeError> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => unexpected("Vec", "array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<($($t,)+), DeError> {
                const LEN: usize = [$($n),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    other => unexpected("tuple", "fixed-length array", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// Maps serialize as sorted arrays of `[key, value]` pairs. (The real
// serde_json rejects non-string map keys outright; this workspace carries
// tuple- and integer-keyed maps, so the pair-array form is used uniformly.)
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<Value> =
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect();
        entries.sort_by_key(|e| format!("{e:?}"));
        Value::Array(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<HashMap<K, V, S>, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|item| match item {
                    Value::Array(pair) if pair.len() == 2 => {
                        Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
                    }
                    other => unexpected("HashMap entry", "[key, value] pair", other),
                })
                .collect(),
            other => unexpected("HashMap", "array of pairs", other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|item| match item {
                    Value::Array(pair) if pair.len() == 2 => {
                        Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
                    }
                    other => unexpected("BTreeMap entry", "[key, value] pair", other),
                })
                .collect(),
            other => unexpected("BTreeMap", "array of pairs", other),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn deserialize(v: &Value) -> Result<HashSet<T, S>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => unexpected("HashSet", "array", other),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<BTreeSet<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => unexpected("BTreeSet", "array", other),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}
