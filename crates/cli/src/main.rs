//! `cminc` — the two-pass `cmin` compiler driver, file based.
//!
//! Mirrors the paper's Figure 1 as an actual command-line workflow over
//! versioned on-disk artifacts (summaries `.csum`, directives `.cdir`,
//! objects `.vo`, executables `.vx`, libraries `.vlib`):
//!
//! ```sh
//! cminc c a.cmin -o a.vo --cache-dir .ccache      # phase 1 + 2, emits a.csum too
//! cminc c b.cmin -o b.vo --cache-dir .ccache
//! cminc analyze a.csum b.csum --config C -o prog.cdir
//! cminc c a.cmin -o a.vo --dir prog.cdir --cache-dir .ccache   # phase 1 is a cache hit
//! cminc c b.cmin -o b.vo --dir prog.cdir --cache-dir .ccache
//! cminc link a.vo b.vo -o prog.vx
//! cminc run prog.vx --input "3 4 5" --stats
//! ```
//!
//! or, in one step:
//!
//! ```sh
//! cminc build a.cmin b.cmin --config C -o prog.vx --run --stats
//! ```
//!
//! `objdump` pretty-prints any artifact; `lib` archives objects (plus
//! their summaries) into a `.vlib` that `analyze` and `link` both accept,
//! pulling only the members the program needs. The pre-artifact bare-JSON
//! files (`.sum`/`.db`/`.obj`/`.exe`) are still read and written whenever
//! a path doesn't carry an artifact extension.

mod artifacts;

use ipra_core::analyzer::{analyze, analyze_traced, AnalyzerOptions, PaperConfig};
use ipra_core::trace::AnalyzerTrace;
use ipra_core::{ProfileData, ProgramDatabase};
use ipra_driver::SourceFile;
use ipra_summary::{summarize_module, ModuleSummary, ProgramSummary};
use ipra_telemetry::Telemetry;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "c" => artifacts::c_cmd(rest),
        "lib" => artifacts::lib_cmd(rest),
        "objdump" => artifacts::objdump_cmd(rest),
        "phase1" => phase1(rest),
        "analyze" => analyze_cmd(rest),
        "phase2" => phase2(rest),
        "link" => link_cmd(rest),
        "verify" => verify_cmd(rest),
        "run" => run_cmd(rest),
        "build" => build_cmd(rest),
        "profile" => profile_cmd(rest),
        "stats" => stats_cmd(rest),
        "explain" => explain_cmd(rest),
        "report" => report_cmd(rest),
        "fuzz" => fuzz_cmd(rest),
        "serve" => serve_cmd(rest),
        "remote" => remote_cmd(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cminc: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cminc c <src.cmin> [-o <mod.vo>] [--summary <mod.csum>] [--dir <prog.cdir>] [--cache-dir DIR] [--target vpr|rv32]
  cminc analyze <mod.csum|lib.vlib>... [--config L2|A|B|C|D|E|F|P] [--profile <prof.json>] [--report] [--dot <graph.dot>] [--trace <trace.json>] [--target vpr|rv32] -o <prog.cdir>
  cminc link <mod.vo|lib.vlib>... [--allow-undefined] -o <prog.vx>
  cminc lib <mod.vo>... -o <lib.vlib>
  cminc verify <mod.vo>... [--db <prog.cdir>]
  cminc run <prog.vx> [--input \"v v v\"] [--engine fast|ref] [--stats] [--stats-json <out.json>] [--metrics-out <m.json>] [--profile-out <prof.json>] [--asm]
  cminc build <src.cmin>... [--config ...] [--target vpr|rv32] [-o <prog.vx>] [--cache-dir DIR] [-j|--jobs N] [--repeat N] [--verify] [--run] [--stats] [--trace <trace.json>] [--trace-out <t.json>] [--metrics-out <m.json>] [--stats-json <s.json>] [--input \"v v v\"]
  cminc profile <prog.vx | src.cmin...> [--config ...] [--input \"v v v\"] [--engine fast|ref] [--top N] [--json <out.json>]
  cminc stats <src.cmin>... [--config ...] [--input \"v v v\"] [-j|--jobs N] [--run]
  cminc objdump <artifact-file>
  cminc phase1 <src.cmin> [--summary <out.sum>] [--ir <out.ir>]
  cminc phase2 <mod.ir> --db <prog.cdir> [--target vpr|rv32] -o <mod.obj>
  cminc explain <symbol> (--trace <trace.json> | <src.cmin>... [--config ...]) [--target vpr|rv32]
  cminc report <src.cmin>... --config-b L2|A|B|C|D|E|F|P [--config-a ...] [--input \"v v v\"] [--json <out.json>]
  cminc fuzz [--seed N] [--iters N | --time-budget SECS] [-j|--jobs N] [--corpus DIR] [--reduce-budget N] [--self-validate] [--metrics-out <m.json>]
  cminc serve --socket PATH [--cache-dir DIR] [-j|--jobs N] [--shards N] [--cap N] [--timeout SECS]
  cminc remote build <src.cmin>... --socket PATH [--config ...] [-o <prog.vx>] [--input \"v v v\"]
  cminc remote ping|stats|shutdown --socket PATH

artifacts (`objdump` prints any of them):
  .csum  per-module summary     .cdir  analyzer directives   .vo  object code
  .vx    linked executable      .vlib  object+summary archive
  paths without an artifact extension keep the legacy bare-JSON formats

separate compilation:
  c              one module, both phases; --dir supplies the analyzer's
                 directives (standard conventions without it)
  --cache-dir D  persist phase fingerprints under D: across separate cminc
                 invocations only modules whose source or directive slice
                 changed are recompiled (c, build)
  --allow-undefined  (link) resolve missing functions to trap stubs; linking
                 against a .vlib pulls only the members the program needs

build flags:
  --target T     machine description to compile for: vpr (default) or rv32;
                 link/verify/run read the target from the artifacts themselves
  -j, --jobs N   worker threads for the per-module phases (default 1, 0 = all cores)
  --repeat N     build N times through one incremental cache (recompilation demo)
  -o FILE        write the linked executable (artifact iff FILE ends in .vx)
  --stats        per-phase wall-clock and cache hit/miss table (plus run stats with --run)
  --trace FILE   persist the analyzer's decision trace as JSON (also: analyze)

telemetry (spans + counters, see docs/telemetry.md):
  --trace-out FILE    (build) export pipeline spans as Chrome trace-event
                      JSON — open in Perfetto or about://tracing; per-module
                      phase tasks carry their worker lane as the tid
  --metrics-out FILE  (build, run, fuzz) export the counters registry as
                      canonical JSON: byte-identical across --jobs widths,
                      engines, and machines (never contains wall-clock data)
  --stats-json FILE   (build) machine-readable build stats: cache hit/miss
                      tiers + counters, deterministic (no wall-clock)
  profile             run a program with per-pc execution counts and print
                      symbolized per-procedure / hot-block / opcode tables;
                      identical on both engines, totals equal run cycles
  stats               build (and optionally run) sources, print the
                      canonical metrics JSON on stdout

observability:
  explain        render every analyzer decision that mentions one global or
                 procedure, from a saved trace or by compiling sources
  report         compile under two configs (A defaults to L2), run both with
                 exact per-procedure attribution, and explain each delta;
                 --json writes the full deterministic report
  --stats-json   (run) write RunStats + exact per-procedure attribution as JSON

fuzz:
  random differential testing: generated programs are interpreted and
  compiled under all seven paper configurations; any divergence (or verify,
  attribution, incremental-build or trace-purity violation) is shrunk to a
  minimal repro. stdout is deterministic for a given --seed/--iters,
  independent of --jobs; timing goes to stderr.
  --seed N           master seed (default 1)
  --iters N          iterations (default 100)
  --time-budget SECS run until the budget elapses instead (not jobs-deterministic)
  --corpus DIR       save reduced repros as corpus entries under DIR
  --reduce-budget N  predicate evaluations per reduction (default 1200)
  --self-validate    inject the known miscompile classes and prove the
                     oracle detects them; repros shrink into --corpus too";

/// Pulls the value following `flag` out of `args`, if present.
pub(crate) fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Positional arguments: everything not a flag or a flag value.
pub(crate) fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Flags with values:
            let takes_value = matches!(
                a.as_str(),
                "--summary"
                    | "--ir"
                    | "--config"
                    | "--profile"
                    | "--db"
                    | "-o"
                    | "--input"
                    | "--profile-out"
                    | "--dot"
                    | "--jobs"
                    | "--repeat"
                    | "--trace"
                    | "--stats-json"
                    | "--config-a"
                    | "--config-b"
                    | "--json"
                    | "--seed"
                    | "--iters"
                    | "--time-budget"
                    | "--corpus"
                    | "--reduce-budget"
                    | "--dir"
                    | "--cache-dir"
                    | "--engine"
                    | "--trace-out"
                    | "--metrics-out"
                    | "--top"
                    | "--socket"
                    | "--shards"
                    | "--cap"
                    | "--timeout"
                    | "--target"
            );
            skip = takes_value && args.get(i + 1).is_some();
            continue;
        }
        if a == "-o" || a == "-j" {
            skip = true;
            continue;
        }
        out.push(a.clone());
    }
    out
}

pub(crate) fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

pub(crate) fn write(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

pub(crate) fn module_name(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "module".into())
}

fn config_by_name(name: Option<&str>) -> Result<PaperConfig, String> {
    match name {
        None | Some("L2") => Ok(PaperConfig::L2),
        Some("A") => Ok(PaperConfig::A),
        Some("B") => Ok(PaperConfig::B),
        Some("C") => Ok(PaperConfig::C),
        Some("D") => Ok(PaperConfig::D),
        Some("E") => Ok(PaperConfig::E),
        Some("F") => Ok(PaperConfig::F),
        Some("P") => Ok(PaperConfig::P),
        Some(other) => Err(format!("unknown config `{other}`")),
    }
}

fn parse_config(args: &[String]) -> Result<PaperConfig, String> {
    config_by_name(flag_value(args, "--config").as_deref())
}

/// Resolves `--target` to a machine description id (default: VPR).
pub(crate) fn parse_target(args: &[String]) -> Result<vpr::target::TargetId, String> {
    match flag_value(args, "--target") {
        None => Ok(vpr::target::TargetId::Vpr),
        Some(s) => vpr::target::TargetId::parse(&s).ok_or_else(|| {
            let names: Vec<&str> = vpr::target::TargetId::ALL.iter().map(|t| t.name()).collect();
            format!("unknown target `{s}` (targets: {})", names.join(", "))
        }),
    }
}

fn parse_input(args: &[String]) -> Result<Vec<i64>, String> {
    match flag_value(args, "--input") {
        None => Ok(Vec::new()),
        Some(text) => text
            .split_whitespace()
            .map(|t| t.parse::<i64>().map_err(|e| format!("bad input value `{t}`: {e}")))
            .collect(),
    }
}

/// Frontend + optimizer for one file; returns the optimized IR and summary.
fn front_one(path: &str) -> Result<(cmin_ir::IrModule, ModuleSummary), String> {
    let text = read(path)?;
    let name = module_name(path);
    let module = cmin_frontend::parse_module(&name, &text).map_err(|e| e.to_string())?;
    let info = cmin_frontend::analyze(&module).map_err(|e| e.to_string())?;
    let mut ir = cmin_ir::lower_module(&module, &info);
    cmin_ir::optimize_module(&mut ir);
    let summary = summarize_module(&ir);
    Ok((ir, summary))
}

fn phase1(args: &[String]) -> Result<(), String> {
    let files = positionals(args);
    let [src] = files.as_slice() else {
        return Err("phase1 takes exactly one source file".into());
    };
    let (ir, summary) = front_one(src)?;
    let stem = module_name(src);
    let sum_path = flag_value(args, "--summary").unwrap_or(format!("{stem}.sum"));
    let ir_path = flag_value(args, "--ir").unwrap_or(format!("{stem}.ir"));
    let sum_json = serde_json::to_string_pretty(&summary).expect("serialize");
    write(&sum_path, &sum_json)?;
    let ir_json = serde_json::to_string(&ir).expect("serialize");
    write(&ir_path, &ir_json)?;
    eprintln!("phase1: {src} -> {sum_path}, {ir_path}");
    Ok(())
}

fn analyze_cmd(args: &[String]) -> Result<(), String> {
    let sums = positionals(args);
    if sums.is_empty() {
        return Err("analyze needs at least one summary file".into());
    }
    let out = flag_value(args, "-o").ok_or("analyze needs -o <prog.cdir>")?;
    let mut program = ProgramSummary::default();
    for s in &sums {
        program.modules.extend(artifacts::load_summaries(s)?);
    }
    let config = parse_config(args)?;
    let profile = match flag_value(args, "--profile") {
        Some(p) => {
            Some(serde_json::from_str::<ProfileData>(&read(&p)?).map_err(|e| format!("{p}: {e}"))?)
        }
        None => {
            if config.wants_profile() {
                return Err(format!("config {config} needs --profile <prof.json>"));
            }
            None
        }
    };
    let target = parse_target(args)?;
    let analyzer_opts = AnalyzerOptions::paper_config_for(config, profile, target);
    let trace_path = flag_value(args, "--trace");
    let (analysis, trace) = match &trace_path {
        Some(_) => {
            let (a, t) = analyze_traced(&program, &analyzer_opts);
            (a, Some(t))
        }
        None => (analyze(&program, &analyzer_opts), None),
    };
    artifacts::write_database_for(&out, &config.to_string(), &analysis.database, target)?;
    if let (Some(path), Some(t)) = (&trace_path, &trace) {
        write(path, &t.to_json())?;
        eprintln!("trace: {} events -> {path}", t.events.len());
    }
    let s = &analysis.stats;
    eprintln!(
        "analyze: {} nodes, {} eligible globals, {}/{} webs colored, {} clusters -> {out}",
        s.nodes, s.eligible_globals, s.webs_colored, s.webs_total, s.clusters
    );
    if let Some(path) = flag_value(args, "--dot") {
        write(&path, &ipra_core::dot::call_graph_dot(&program, &analysis))?;
        eprintln!("dot: -> {path}");
    }
    if has_flag(args, "--report") {
        for w in &analysis.webs {
            println!(
                "web {:<14} reg {:<4} entries [{}] nodes [{}]{}",
                w.sym,
                w.reg.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
                w.entries.join(" "),
                w.nodes.join(" "),
                if w.written { "" } else { " (read-only)" }
            );
        }
        for d in analysis.database.iter() {
            if d.is_cluster_root {
                println!("cluster root {:<14} MSPILL {}", d.name, d.usage.mspill);
            }
        }
    }
    Ok(())
}

fn phase2(args: &[String]) -> Result<(), String> {
    let files = positionals(args);
    let [ir_path] = files.as_slice() else {
        return Err("phase2 takes exactly one .ir file".into());
    };
    let out = flag_value(args, "-o").ok_or("phase2 needs -o <mod.obj>")?;
    let db = match flag_value(args, "--db") {
        Some(p) => artifacts::load_database(&p)?,
        None => ProgramDatabase::new(),
    };
    let target = parse_target(args)?;
    let ir: cmin_ir::IrModule =
        serde_json::from_str(&read(ir_path)?).map_err(|e| format!("{ir_path}: {e}"))?;
    let object = cmin_codegen::compile_module_for(&ir, &db, target);
    write(&out, &serde_json::to_string(&object).expect("serialize"))?;
    eprintln!("phase2: {ir_path} -> {out} ({} procedures)", object.functions.len());
    Ok(())
}

fn link_cmd(args: &[String]) -> Result<(), String> {
    let objs = positionals(args);
    if objs.is_empty() {
        return Err("link needs at least one object or library file".into());
    }
    let out = flag_value(args, "-o").ok_or("link needs -o <prog.vx>")?;
    let modules = artifacts::collect_link_inputs(&objs)?;
    let opts = vpr::LinkOptions { allow_undefined_functions: has_flag(args, "--allow-undefined") };
    let exe = vpr::link_with(&modules, &opts).map_err(|e| e.to_string())?;
    artifacts::write_executable(&out, &exe)?;
    eprintln!("link: {} instructions -> {out}", exe.code_len());
    Ok(())
}

/// Runs the register-discipline verifier over already-compiled object
/// modules, against the program database that directed their codegen
/// (without `--db`, every procedure is held to the standard convention).
fn verify_cmd(args: &[String]) -> Result<(), String> {
    let objs = positionals(args);
    if objs.is_empty() {
        return Err("verify needs at least one object file".into());
    }
    let db = match flag_value(args, "--db") {
        Some(p) => artifacts::load_database(&p)?,
        None => ProgramDatabase::new(),
    };
    let mut modules = Vec::new();
    for o in &objs {
        modules.push(artifacts::load_object(o)?);
    }
    let report = ipra_verify::verify_modules(&modules, &db);
    report_verify(&report)
}

/// Prints a verification report; `Err` (with every diagnostic) if dirty.
fn report_verify(report: &ipra_verify::VerifyReport) -> Result<(), String> {
    if report.is_clean() {
        eprintln!("verify: {} procedures, {} instructions: clean", report.procs, report.insts);
        Ok(())
    } else {
        Err(format!("verification failed ({} diagnostics):\n{report}", report.diagnostics.len()))
    }
}

/// Deterministic simulator counters for one run: `sim.cycles`, memory and
/// call totals, and `sim.op.<class>` instructions-retired per opcode class
/// (from the run's [`vpr::ExecProfile`], so both engines agree exactly).
fn sim_counters(exe: &vpr::Executable, result: &vpr::RunResult) -> BTreeMap<String, u64> {
    let mut c = match &result.profile {
        Some(p) => p.sim_counters(exe, &result.stats),
        None => {
            // No profile recorded (no `sim.op.*` breakdown), but the
            // RunStats totals are still deterministic counters.
            let mut c = BTreeMap::new();
            c.insert("sim.cycles".to_string(), result.stats.cycles);
            c.insert("sim.loads".to_string(), result.stats.loads);
            c.insert("sim.stores".to_string(), result.stats.stores);
            c.insert("sim.calls".to_string(), result.stats.calls);
            c
        }
    };
    c.insert("sim.runs".to_string(), 1);
    c
}

fn parse_engine(args: &[String]) -> Result<vpr::Engine, String> {
    match flag_value(args, "--engine").as_deref() {
        None | Some("fast") => Ok(vpr::Engine::Fast),
        Some("ref") | Some("reference") => Ok(vpr::Engine::Reference),
        Some(other) => Err(format!("unknown engine `{other}` (use fast or ref)")),
    }
}

fn run_cmd(args: &[String]) -> Result<(), String> {
    let files = positionals(args);
    let [exe_path] = files.as_slice() else {
        return Err("run takes exactly one executable".into());
    };
    let exe = artifacts::load_executable(exe_path)?;
    if has_flag(args, "--asm") {
        print!("{}", vpr::asm::executable_asm(&exe));
        return Ok(());
    }
    let input = parse_input(args)?;
    let stats_json = flag_value(args, "--stats-json");
    let metrics_out = flag_value(args, "--metrics-out");
    let engine = parse_engine(args)?;
    let opts = vpr::SimOptions {
        input,
        attribute: stats_json.is_some(),
        profile: metrics_out.is_some(),
        engine,
        ..vpr::SimOptions::default()
    };
    let result = vpr::run_with(&exe, &opts).map_err(|e| e.to_string())?;
    for v in &result.output {
        println!("{v}");
    }
    eprintln!("exit: {}", result.exit);
    if let Some(path) = &stats_json {
        /// `--stats-json` payload: the function-index → name table (which
        /// makes `call_counts`/`call_edges` interpretable), the full run
        /// statistics, and the exact per-procedure attribution.
        #[derive(Serialize)]
        struct StatsDump {
            funcs: Vec<String>,
            exit: i64,
            stats: vpr::RunStats,
            attribution: vpr::Attribution,
        }
        let dump = StatsDump {
            funcs: exe.funcs().iter().map(|f| f.name.clone()).collect(),
            exit: result.exit,
            stats: result.stats.clone(),
            attribution: result.attribution.clone().expect("attribution was requested"),
        };
        write(path, &serde_json::to_string_pretty(&dump).expect("serialize"))?;
        eprintln!("stats: -> {path}");
    }
    if let Some(path) = &metrics_out {
        write(path, &ipra_telemetry::metrics_json_from(&sim_counters(&exe, &result)))?;
        eprintln!("metrics: -> {path}");
    }
    if has_flag(args, "--stats") {
        let s = &result.stats;
        eprintln!(
            "cycles: {}  loads: {}  stores: {}  singleton refs: {}  calls: {}",
            s.cycles,
            s.loads,
            s.stores,
            s.singleton_refs(),
            s.calls
        );
    }
    if let Some(path) = flag_value(args, "--profile-out") {
        let mut profile = ProfileData::new();
        for (&(caller, callee), &count) in &result.stats.call_edges {
            if let (Some(cr), Some(ce)) = (exe.funcs().get(caller), exe.funcs().get(callee)) {
                profile.record_edge(&cr.name, &ce.name, count);
            }
        }
        write(&path, &serde_json::to_string_pretty(&profile).expect("serialize"))?;
        eprintln!("profile: -> {path}");
    }
    Ok(())
}

/// Reads source files into driver [`SourceFile`]s.
fn read_sources(paths: &[String]) -> Result<Vec<SourceFile>, String> {
    paths.iter().map(|p| Ok(SourceFile::new(module_name(p), read(p)?))).collect()
}

/// `cminc explain <symbol>`: renders every analyzer decision mentioning one
/// global or procedure, from a saved `--trace` file or by compiling the
/// given sources with tracing on.
fn explain_cmd(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let Some((symbol, srcs)) = pos.split_first() else {
        return Err("explain needs a <symbol> (a global or procedure name)".into());
    };
    let trace = match flag_value(args, "--trace") {
        Some(path) => {
            AnalyzerTrace::from_json(&read(&path)?).map_err(|e| format!("{path}: {e}"))?
        }
        None => {
            if srcs.is_empty() {
                return Err("explain needs --trace <trace.json> or source files to compile".into());
            }
            let sources = read_sources(srcs)?;
            let config = parse_config(args)?;
            let input = parse_input(args)?;
            let opts = ipra_driver::CompileOptions {
                trace: true,
                target: parse_target(args)?,
                ..ipra_driver::CompileOptions::default()
            };
            let mut cache = ipra_driver::CompilationCache::new();
            let program =
                ipra_driver::compile_configured(&sources, config, &input, &opts, &mut cache)
                    .map_err(|e| e.to_string())?
                    .map_err(|e| format!("training run trapped: {e}"))?;
            program.trace.expect("tracing was requested")
        }
    };
    print!("{}", ipra_obsv::explain_for(&trace, symbol, parse_target(args)?.desc()));
    Ok(())
}

/// `cminc report`: compile under two configurations, run both with exact
/// attribution, and explain every per-procedure delta.
fn report_cmd(args: &[String]) -> Result<(), String> {
    let srcs = positionals(args);
    if srcs.is_empty() {
        return Err("report needs at least one source file".into());
    }
    let config_a = config_by_name(flag_value(args, "--config-a").as_deref())?;
    let config_b = config_by_name(Some(
        flag_value(args, "--config-b").ok_or("report needs --config-b <config>")?.as_str(),
    ))?;
    let input = parse_input(args)?;
    let sources = read_sources(&srcs)?;
    let report = ipra_driver::diff_report(&sources, config_a, config_b, &input, 1)
        .map_err(|e| e.to_string())?
        .map_err(|e| format!("run trapped: {e}"))?;
    if !report.sums_match() {
        return Err("internal error: per-procedure sums diverge from program totals".into());
    }
    print!("{}", report.render_table());
    if let Some(path) = flag_value(args, "--json") {
        write(&path, &report.to_json())?;
        eprintln!("report: -> {path}");
    }
    Ok(())
}

/// `cminc fuzz`: run the differential fuzzer (and/or oracle
/// self-validation). The report on stdout is deterministic for a given
/// `--seed`/`--iters` regardless of `--jobs`; wall-clock goes to stderr.
fn fuzz_cmd(args: &[String]) -> Result<(), String> {
    let parse_num = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad {flag} value `{v}`: {e}")),
        }
    };
    let jobs = match flag_value(args, "--jobs").or_else(|| flag_value(args, "-j")) {
        Some(v) => v.parse::<usize>().map_err(|e| format!("bad --jobs value `{v}`: {e}"))?,
        None => 0,
    };
    let defaults = ipra_fuzz::FuzzOptions::default();
    let opts = ipra_fuzz::FuzzOptions {
        seed: parse_num("--seed", defaults.seed)?,
        iters: parse_num("--iters", defaults.iters as u64)? as usize,
        time_budget: flag_value(args, "--time-budget")
            .map(|v| {
                v.parse::<u64>()
                    .map(std::time::Duration::from_secs)
                    .map_err(|e| format!("bad --time-budget value `{v}`: {e}"))
            })
            .transpose()?,
        jobs,
        corpus_dir: flag_value(args, "--corpus").map(std::path::PathBuf::from),
        reduce_checks: parse_num(
            "--reduce-budget",
            ipra_fuzz::ReduceOptions::default().max_checks as u64,
        )? as usize,
        max_reported: defaults.max_reported,
    };

    let start = std::time::Instant::now();
    let mut failed = false;
    if has_flag(args, "--self-validate") {
        let results = ipra_fuzz::self_validate(&opts)?;
        for r in &results {
            println!(
                "self-validate: {} injected at seed {:#x}, detected, reduced {} -> {} module(s)",
                r.class.name(),
                r.seed,
                r.original_modules,
                r.sources.len()
            );
            if let Some(p) = &r.corpus_path {
                println!("  saved {}", p.display());
            }
        }
    }
    if !has_flag(args, "--self-validate") || has_flag(args, "--iters") || opts.time_budget.is_some()
    {
        let outcome = ipra_fuzz::fuzz(&opts);
        print!("{}", outcome.render());
        failed = outcome.total_failures > 0;
        if let Some(path) = flag_value(args, "--metrics-out") {
            let mut counters = BTreeMap::new();
            counters.insert("fuzz.iterations".to_string(), outcome.iterations as u64);
            counters.insert("fuzz.failures".to_string(), outcome.total_failures as u64);
            write(&path, &ipra_telemetry::metrics_json_from(&counters))?;
            eprintln!("metrics: -> {path}");
        }
    }
    eprintln!("fuzz: {:.1}s", start.elapsed().as_secs_f64());
    if failed {
        return Err("the fuzzer found failures (see report above)".into());
    }
    Ok(())
}

/// Renders the per-phase wall-clock and cache hit/miss table for one build
/// (the `disk` column counts hits served from `--cache-dir`).
fn phase_table(b: &ipra_driver::BuildReport) -> String {
    let mut out = String::new();
    let row = |name: &str, secs: f64, phase: Option<&ipra_driver::PhaseStats>| {
        let fmt_opt = |v: Option<usize>| v.map(|n| n.to_string()).unwrap_or_else(|| "-".into());
        format!(
            "  {:<8} {:>10.3}ms {:>6} {:>7} {:>6}\n",
            name,
            secs * 1e3,
            fmt_opt(phase.map(|p| p.hits)),
            fmt_opt(phase.map(|p| p.misses)),
            fmt_opt(phase.map(|p| p.disk_hits)),
        )
    };
    out.push_str("  phase          time   hits  misses   disk\n");
    out.push_str(&row("phase1", b.phase1.seconds, Some(&b.phase1)));
    out.push_str(&row("analyze", b.analyze_seconds, None));
    out.push_str(&row("phase2", b.phase2.seconds, Some(&b.phase2)));
    out.push_str(&row("link", b.link_seconds, None));
    out.push_str(&row("total", b.total_seconds, None));
    if b.recompiled.is_empty() {
        out.push_str("  recompiled: (none)\n");
    } else {
        out.push_str(&format!("  recompiled: {}\n", b.recompiled.join(" ")));
    }
    out
}

fn build_cmd(args: &[String]) -> Result<(), String> {
    let srcs = positionals(args);
    if srcs.is_empty() {
        return Err("build needs at least one source file".into());
    }
    let config = parse_config(args)?;
    let input = parse_input(args)?;
    let jobs = match flag_value(args, "--jobs").or_else(|| flag_value(args, "-j")) {
        Some(v) => v.parse::<usize>().map_err(|e| format!("bad --jobs value `{v}`: {e}"))?,
        None => 1,
    };
    let repeat = match flag_value(args, "--repeat") {
        Some(v) => {
            let n = v.parse::<usize>().map_err(|e| format!("bad --repeat value `{v}`: {e}"))?;
            n.max(1)
        }
        None => 1,
    };
    let stats = has_flag(args, "--stats");
    let target = parse_target(args)?;
    let mut sources = Vec::new();
    for s in &srcs {
        sources.push(SourceFile::new(module_name(s), read(s)?));
    }
    // One cache across every repetition: iteration 1 is the cold build,
    // the rest demonstrate the paper's recompilation story (§3) — pure
    // cache hits when nothing changed. With --cache-dir the cache is also
    // persistent, so the story holds across separate cminc processes.
    let trace_path = flag_value(args, "--trace");
    let trace_out = flag_value(args, "--trace-out");
    let metrics_out = flag_value(args, "--metrics-out");
    let stats_json = flag_value(args, "--stats-json");
    let telemetry =
        (trace_out.is_some() || metrics_out.is_some() || stats_json.is_some()).then(Telemetry::new);
    let mut cache = artifacts::open_cache(args)?;
    let mut program = None;
    for i in 0..repeat {
        let opts = ipra_driver::CompileOptions {
            jobs,
            trace: trace_path.is_some(),
            telemetry: telemetry.clone(),
            target,
            ..ipra_driver::CompileOptions::default()
        };
        let built = ipra_driver::compile_configured(&sources, config, &input, &opts, &mut cache)
            .map_err(|e| e.to_string())?
            .map_err(|e| format!("training run trapped: {e}"))?;
        if stats && repeat > 1 && i + 1 < repeat {
            eprintln!("build {} of {repeat}:", i + 1);
            eprint!("{}", phase_table(&built.build));
        }
        program = Some(built);
    }
    let program = program.expect("repeat >= 1");
    let s = &program.stats;
    eprintln!(
        "build: config {config}; {} nodes, {}/{} webs colored, {} clusters",
        s.nodes, s.webs_colored, s.webs_total, s.clusters
    );
    if let Some(path) = &trace_path {
        let t = program.trace.as_ref().expect("tracing was requested");
        write(path, &t.to_json())?;
        eprintln!("trace: {} events -> {path}", t.events.len());
    }
    if let Some(out) = flag_value(args, "-o") {
        artifacts::write_executable(&out, &program.exe)?;
        eprintln!("build: {} instructions -> {out}", program.exe.code_len());
    }
    if stats {
        if repeat > 1 {
            eprintln!("build {repeat} of {repeat}:");
        }
        eprint!("{}", phase_table(&program.build));
    }
    if has_flag(args, "--verify") {
        report_verify(&ipra_driver::verify_program(&program))?;
    }
    if has_flag(args, "--run") {
        // With a collector attached, the run also profiles so `sim.*`
        // counters (cycles, memory traffic, per-opcode-class retirement)
        // land in the exported metrics. Profiling is pure observation.
        let opts = vpr::SimOptions {
            input: input.clone(),
            profile: telemetry.is_some(),
            ..vpr::SimOptions::default()
        };
        let tele = telemetry.as_ref();
        let run_span = ipra_telemetry::span(tele, "sim", "run");
        let result = vpr::run_with(&program.exe, &opts).map_err(|e| e.to_string())?;
        run_span.finish();
        if let Some(t) = tele {
            for (k, n) in sim_counters(&program.exe, &result) {
                t.add(&k, n);
            }
        }
        for v in &result.output {
            println!("{v}");
        }
        eprintln!("exit: {}", result.exit);
        if has_flag(args, "--stats") {
            let st = &result.stats;
            eprintln!(
                "cycles: {}  singleton refs: {}  calls: {}",
                st.cycles,
                st.singleton_refs(),
                st.calls
            );
        }
    }
    if let Some(t) = &telemetry {
        if let Some(path) = &trace_out {
            write(path, &t.chrome_trace_json())?;
            eprintln!("trace-out: {} span events -> {path}", t.event_count());
        }
        if let Some(path) = &metrics_out {
            write(path, &t.metrics_json())?;
            eprintln!("metrics: {} counters -> {path}", t.counters().len());
        }
        if let Some(path) = &stats_json {
            write(path, &build_stats_json(config, &sources, &program.build, t))?;
            eprintln!("stats-json: -> {path}");
        }
    }
    Ok(())
}

/// The `--stats-json` payload: machine-readable build statistics with the
/// wall-clock columns deliberately left out, so the bytes are deterministic
/// across runs, `--jobs` widths, and machines. Timings belong in
/// `--trace-out`; this file is the counted work.
fn build_stats_json(
    config: PaperConfig,
    sources: &[SourceFile],
    build: &ipra_driver::BuildReport,
    tele: &Telemetry,
) -> String {
    let names = |it: &[String]| Value::Array(it.iter().map(|s| Value::Str(s.clone())).collect());
    let phase = |p: &ipra_driver::PhaseStats| {
        Value::Object(vec![
            ("hits".to_string(), Value::UInt(p.hits as u64)),
            ("misses".to_string(), Value::UInt(p.misses as u64)),
            ("disk_hits".to_string(), Value::UInt(p.disk_hits as u64)),
        ])
    };
    let modules: Vec<String> = sources.iter().map(|s| s.name.clone()).collect();
    let doc = Value::Object(vec![
        ("schema".to_string(), Value::Str("ipra-build-stats-v1".to_string())),
        ("config".to_string(), Value::Str(config.to_string())),
        ("modules".to_string(), names(&modules)),
        ("phase1".to_string(), phase(&build.phase1)),
        ("phase2".to_string(), phase(&build.phase2)),
        ("recompiled".to_string(), names(&build.recompiled)),
        ("counters".to_string(), ipra_telemetry::counters_value(&tele.counters())),
    ]);
    let mut s = serde_json::to_string_pretty(&doc).expect("serialize");
    s.push('\n');
    s
}

/// `cminc profile`: run a program (an existing `.vx`, or sources compiled
/// on the spot) with per-pc execution counts, and print symbolized
/// per-procedure, hot-block and opcode-class tables. The profile is
/// recorded identically by both engines, and every table totals to the
/// run's cycle count exactly.
fn profile_cmd(args: &[String]) -> Result<(), String> {
    let files = positionals(args);
    if files.is_empty() {
        return Err("profile needs an executable or source files".into());
    }
    let input = parse_input(args)?;
    let engine = parse_engine(args)?;
    let top = match flag_value(args, "--top") {
        Some(v) => v.parse::<usize>().map_err(|e| format!("bad --top value `{v}`: {e}"))?,
        None => 10,
    };
    let exe = if files.len() == 1 && !files[0].ends_with(".cmin") {
        artifacts::load_executable(&files[0])?
    } else {
        let sources = read_sources(&files)?;
        let config = parse_config(args)?;
        let mut cache = ipra_driver::CompilationCache::new();
        let opts = ipra_driver::CompileOptions::default();
        ipra_driver::compile_configured(&sources, config, &input, &opts, &mut cache)
            .map_err(|e| e.to_string())?
            .map_err(|e| format!("training run trapped: {e}"))?
            .exe
    };
    let opts = vpr::SimOptions { input, profile: true, engine, ..vpr::SimOptions::default() };
    let result = vpr::run_with(&exe, &opts).map_err(|e| e.to_string())?;
    let profile = result.profile.as_ref().expect("profiling was requested");
    if profile.total() != result.stats.cycles {
        return Err("internal error: profile total diverges from cycle count".into());
    }

    let mut procs = profile.proc_table(&exe);
    procs.sort_by(|a, b| b.self_cycles.cmp(&a.self_cycles).then_with(|| a.name.cmp(&b.name)));
    let blocks = {
        let mut bs = profile.block_counts(&exe);
        bs.retain(|b| b.cycles > 0);
        bs.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.start.cmp(&b.start)));
        bs
    };
    let histogram = profile.opcode_histogram(&exe);

    if let Some(path) = flag_value(args, "--json") {
        let doc = Value::Object(vec![
            ("schema".to_string(), Value::Str("ipra-profile-v1".to_string())),
            ("total_cycles".to_string(), Value::UInt(result.stats.cycles)),
            ("procs".to_string(), procs.serialize()),
            ("blocks".to_string(), blocks.serialize()),
            ("opcode_histogram".to_string(), ipra_telemetry::counters_value(&histogram)),
        ]);
        let mut s = serde_json::to_string_pretty(&doc).expect("serialize");
        s.push('\n');
        write(&path, &s)?;
        eprintln!("profile: -> {path}");
    }

    let total = result.stats.cycles.max(1);
    println!("profile: {} cycles, exit {}", result.stats.cycles, result.exit);
    println!("\nprocedures (self cycles):");
    for row in procs.iter().take(top) {
        println!(
            "  {:<20} {:>12} {:>6.2}%",
            row.name,
            row.self_cycles,
            row.self_cycles as f64 * 100.0 / total as f64
        );
    }
    println!("\nhot blocks:");
    for b in blocks.iter().take(top) {
        println!(
            "  {:<20} pc {:>5}..{:<5} {:>10} entries {:>12} cycles {:>6.2}%",
            b.sym.as_deref().unwrap_or("?"),
            b.start,
            b.end,
            b.entries,
            b.cycles,
            b.cycles as f64 * 100.0 / total as f64
        );
    }
    println!("\ninstructions retired by opcode class:");
    for (class, n) in &histogram {
        println!("  {:<8} {:>12} {:>6.2}%", class, n, *n as f64 * 100.0 / total as f64);
    }
    Ok(())
}

/// `cminc stats`: build the sources with a collector attached (optionally
/// running the program too) and print the canonical metrics JSON on
/// stdout — the byte-deterministic counters registry, never wall-clock.
fn stats_cmd(args: &[String]) -> Result<(), String> {
    let srcs = positionals(args);
    if srcs.is_empty() {
        return Err("stats needs at least one source file".into());
    }
    let sources = read_sources(&srcs)?;
    let config = parse_config(args)?;
    let input = parse_input(args)?;
    let jobs = match flag_value(args, "--jobs").or_else(|| flag_value(args, "-j")) {
        Some(v) => v.parse::<usize>().map_err(|e| format!("bad --jobs value `{v}`: {e}"))?,
        None => 1,
    };
    let telemetry = Telemetry::new();
    let opts = ipra_driver::CompileOptions {
        jobs,
        telemetry: Some(telemetry.clone()),
        ..ipra_driver::CompileOptions::default()
    };
    let mut cache = ipra_driver::CompilationCache::new();
    let program = ipra_driver::compile_configured(&sources, config, &input, &opts, &mut cache)
        .map_err(|e| e.to_string())?
        .map_err(|e| format!("training run trapped: {e}"))?;
    if has_flag(args, "--run") {
        let opts = vpr::SimOptions { input, profile: true, ..vpr::SimOptions::default() };
        let result = vpr::run_with(&program.exe, &opts).map_err(|e| e.to_string())?;
        for (k, n) in sim_counters(&program.exe, &result) {
            telemetry.add(&k, n);
        }
    }
    print!("{}", telemetry.metrics_json());
    Ok(())
}

/// `cminc serve`: run `cmind`, the build-service daemon, until a client
/// sends a shutdown request. All sessions share one sharded, optionally
/// size-capped, optionally persistent compilation cache.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let socket = flag_value(args, "--socket").ok_or("serve needs --socket PATH")?;
    let jobs = match flag_value(args, "--jobs").or_else(|| flag_value(args, "-j")) {
        Some(v) => v.parse::<usize>().map_err(|e| format!("bad --jobs value `{v}`: {e}"))?,
        None => 1,
    };
    let shards = match flag_value(args, "--shards") {
        Some(v) => v.parse::<usize>().map_err(|e| format!("bad --shards value `{v}`: {e}"))?,
        None => 4,
    };
    let capacity = match flag_value(args, "--cap") {
        Some(v) => Some(v.parse::<usize>().map_err(|e| format!("bad --cap value `{v}`: {e}"))?),
        None => None,
    };
    let request_timeout = match flag_value(args, "--timeout") {
        Some(v) => {
            let secs = v.parse::<u64>().map_err(|e| format!("bad --timeout value `{v}`: {e}"))?;
            Some(std::time::Duration::from_secs(secs))
        }
        None => None,
    };
    let opts = ipra_daemon::ServerOptions {
        socket: socket.clone().into(),
        jobs,
        cache_dir: flag_value(args, "--cache-dir").map(Into::into),
        shards,
        capacity,
        request_timeout,
        telemetry: Telemetry::new(),
    };
    let server = ipra_daemon::Server::start(opts).map_err(|e| format!("serve: {socket}: {e}"))?;
    eprintln!("cmind: listening on {socket}");
    server.wait();
    eprintln!("cmind: drained, exiting");
    Ok(())
}

/// `cminc remote`: talk to a running `cmind`. `build` falls back to a
/// local compile when the daemon is unreachable, so scripts can use it
/// unconditionally.
fn remote_cmd(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let Some((sub, rest)) = pos.split_first() else {
        return Err("remote needs a subcommand: build | ping | stats | shutdown".into());
    };
    let socket = flag_value(args, "--socket").ok_or("remote needs --socket PATH")?;
    match sub.as_str() {
        "build" => remote_build(args, rest, &socket),
        "ping" => {
            let mut client = connect_daemon(&socket)?;
            client.ping().map_err(|e| e.to_string())?;
            println!("pong");
            Ok(())
        }
        "stats" => {
            let mut client = connect_daemon(&socket)?;
            let counters = client.stats().map_err(|e| e.to_string())?;
            let map: BTreeMap<String, u64> =
                counters.into_iter().map(|c| (c.name, c.value)).collect();
            print!("{}", ipra_telemetry::metrics_json_from(&map));
            Ok(())
        }
        "shutdown" => {
            let mut client = connect_daemon(&socket)?;
            client.shutdown().map_err(|e| e.to_string())?;
            eprintln!("cmind at {socket}: shutting down");
            Ok(())
        }
        other => Err(format!("unknown remote subcommand `{other}`")),
    }
}

fn connect_daemon(socket: &str) -> Result<ipra_daemon::Client, String> {
    ipra_daemon::Client::connect(socket).map_err(|e| e.to_string())
}

/// Writes a build result (as `.vx` artifact text) to `-o`: raw artifact
/// text for `.vx` paths — byte-identical to `cminc build -o` — and legacy
/// bare JSON otherwise, matching `build`'s conventions.
fn write_vx_text(out: Option<&str>, vx: &str) -> Result<(), String> {
    let Some(path) = out else { return Ok(()) };
    if ipra_artifact::ArtifactKind::for_path(Path::new(path))
        == Some(ipra_artifact::ArtifactKind::Executable)
    {
        write(path, vx)
    } else {
        let a: ipra_artifact::ExecutableArtifact =
            ipra_artifact::decode(ipra_artifact::ArtifactKind::Executable, vx)
                .map_err(|e| e.to_string())?;
        write(path, &serde_json::to_string(&a.exe).expect("serialize"))
    }
}

fn remote_build(args: &[String], srcs: &[String], socket: &str) -> Result<(), String> {
    if srcs.is_empty() {
        return Err("remote build needs at least one source file".into());
    }
    let config = parse_config(args)?; // validate locally before shipping
    let config_name = flag_value(args, "--config").unwrap_or_else(|| "L2".to_string());
    let input = parse_input(args)?;
    let sources = read_sources(srcs)?;
    let out = flag_value(args, "-o");
    match connect_daemon(socket) {
        Ok(mut client) => {
            let request = ipra_daemon::BuildRequest {
                config: config_name,
                optimize: true,
                sources: sources
                    .iter()
                    .map(|s| ipra_daemon::WireSource { name: s.name.clone(), text: s.text.clone() })
                    .collect(),
                training_input: input,
            };
            let built = client.build(&request).map_err(|e| e.to_string())?;
            write_vx_text(out.as_deref(), &built.vx)?;
            eprintln!(
                "cmind: {} modules, {} recompiled{}",
                sources.len(),
                built.recompiled.len(),
                if built.coalesced { " (coalesced with an identical in-flight build)" } else { "" }
            );
            Ok(())
        }
        Err(e) => {
            // The daemon being down must not break builds: degrade to a
            // local compile of the same inputs — byte-identical output by
            // construction.
            eprintln!("cminc: daemon unavailable ({e}); building locally");
            let opts = ipra_driver::CompileOptions::default();
            let mut cache = ipra_driver::CompilationCache::new();
            let program =
                ipra_driver::compile_configured(&sources, config, &input, &opts, &mut cache)
                    .map_err(|e| e.to_string())?
                    .map_err(|e| format!("training run trapped: {e}"))?;
            let (vx, _) = ipra_daemon::protocol::executable_artifact(&program.exe);
            write_vx_text(out.as_deref(), &vx)
        }
    }
}
