//! Artifact-aware file handling for `cminc`: loaders that accept both the
//! versioned [`ipra_artifact`] formats (`.csum`/`.cdir`/`.vo`/`.vx`/`.vlib`)
//! and the legacy bare-JSON files, plus the `c`, `lib` and `objdump`
//! subcommands.

use crate::{flag_value, module_name, positionals, read, write};
use ipra_artifact::{
    ArtifactKind, DirectivesArtifact, ExecutableArtifact, LibraryArtifact, LibraryMember,
    ObjectArtifact, SummaryArtifact,
};
use ipra_core::ProgramDatabase;
use ipra_driver::SourceFile;
use ipra_summary::ModuleSummary;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use vpr::inst::Inst;
use vpr::program::{Executable, ObjectModule};
use vpr::regs::RegSet;
use vpr::target::{TargetDesc, TargetId};

fn artifact_err(e: ipra_artifact::ArtifactError) -> String {
    e.to_string()
}

/// Reads module summaries from one input file: a `.csum` artifact, a
/// `.vlib` archive (all member summaries, in archive order), or a legacy
/// bare-JSON `.sum` file.
pub fn load_summaries(path: &str) -> Result<Vec<ModuleSummary>, String> {
    match ArtifactKind::for_path(Path::new(path)) {
        Some(ArtifactKind::Summary) => {
            let a: SummaryArtifact =
                ipra_artifact::read_file(ArtifactKind::Summary, Path::new(path))
                    .map_err(artifact_err)?;
            Ok(vec![a.summary])
        }
        Some(ArtifactKind::Library) => {
            let a: LibraryArtifact =
                ipra_artifact::read_file(ArtifactKind::Library, Path::new(path))
                    .map_err(artifact_err)?;
            Ok(a.members.into_iter().map(|m| m.summary).collect())
        }
        Some(k) => Err(format!("{path}: expected a summary or library artifact, found {k}")),
        None => {
            let m: ModuleSummary =
                serde_json::from_str(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
            Ok(vec![m])
        }
    }
}

/// Reads one relocatable object: a `.vo` artifact or a legacy bare-JSON
/// `.obj` file.
pub fn load_object(path: &str) -> Result<ObjectModule, String> {
    match ArtifactKind::for_path(Path::new(path)) {
        Some(ArtifactKind::Object) => {
            let a: ObjectArtifact = ipra_artifact::read_file(ArtifactKind::Object, Path::new(path))
                .map_err(artifact_err)?;
            Ok(a.object)
        }
        Some(k) => Err(format!("{path}: expected an object artifact, found {k}")),
        None => serde_json::from_str(&read(path)?).map_err(|e| format!("{path}: {e}")),
    }
}

/// Reads a program database: a `.cdir` artifact or a legacy bare-JSON
/// `.db` file.
pub fn load_database(path: &str) -> Result<ProgramDatabase, String> {
    match ArtifactKind::for_path(Path::new(path)) {
        Some(ArtifactKind::Directives) => {
            let a: DirectivesArtifact =
                ipra_artifact::read_file(ArtifactKind::Directives, Path::new(path))
                    .map_err(artifact_err)?;
            Ok(a.database)
        }
        Some(k) => Err(format!("{path}: expected a directives artifact, found {k}")),
        None => ProgramDatabase::from_json(&read(path)?).map_err(|e| format!("{path}: {e}")),
    }
}

/// Writes a program database as a `.cdir` artifact when the output path
/// carries that extension (header stamped for `target`: the directive
/// registers are target-specific, so `objdump` needs the provenance),
/// legacy bare JSON otherwise.
pub fn write_database_for(
    path: &str,
    config: &str,
    database: &ProgramDatabase,
    target: TargetId,
) -> Result<(), String> {
    if ArtifactKind::for_path(Path::new(path)) == Some(ArtifactKind::Directives) {
        let payload = DirectivesArtifact { config: config.to_string(), database: database.clone() };
        ipra_artifact::write_file_for(ArtifactKind::Directives, Path::new(path), &payload, target)
            .map_err(artifact_err)
    } else {
        write(path, &database.to_json())
    }
}

/// Reads an executable, sniffing the artifact header (so any name works,
/// not just `.vx`); falls back to legacy bare JSON.
pub fn load_executable(path: &str) -> Result<Executable, String> {
    let text = read(path)?;
    if text.starts_with(ipra_artifact::MAGIC) {
        let a: ExecutableArtifact =
            ipra_artifact::decode(ArtifactKind::Executable, &text).map_err(artifact_err)?;
        Ok(a.exe)
    } else {
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Writes an executable as a `.vx` artifact when the output path carries
/// that extension, legacy bare JSON otherwise.
pub fn write_executable(path: &str, exe: &Executable) -> Result<(), String> {
    if ArtifactKind::for_path(Path::new(path)) == Some(ArtifactKind::Executable) {
        ipra_artifact::write_file_for(
            ArtifactKind::Executable,
            Path::new(path),
            &ExecutableArtifact { exe: exe.clone() },
            exe.target(),
        )
        .map_err(artifact_err)
    } else {
        write(path, &serde_json::to_string(exe).expect("serialize"))
    }
}

/// Opens the compilation cache: persistent when `--cache-dir` is given,
/// in-memory (useless across processes, but harmless) otherwise.
pub fn open_cache(args: &[String]) -> Result<ipra_driver::CompilationCache, String> {
    match flag_value(args, "--cache-dir") {
        Some(dir) => ipra_driver::CompilationCache::with_disk(&dir)
            .map_err(|e| format!("--cache-dir {dir}: {e}")),
        None => Ok(ipra_driver::CompilationCache::new()),
    }
}

/// `cminc c`: separate compilation of one module — phase 1 + phase 2 under
/// the directives in `--dir` (standard conventions without it), writing the
/// `.vo` object and `.csum` summary. With `--cache-dir`, both phases are
/// served from the persistent cache when their fingerprints still match.
pub fn c_cmd(args: &[String]) -> Result<(), String> {
    let files = positionals(args);
    let [src_path] = files.as_slice() else {
        return Err("c takes exactly one source file".into());
    };
    let stem = module_name(src_path);
    let out = flag_value(args, "-o").unwrap_or(format!("{stem}.vo"));
    let sum_out = flag_value(args, "--summary").unwrap_or(format!("{stem}.csum"));
    let database = match flag_value(args, "--dir") {
        Some(p) => load_database(&p)?,
        None => ProgramDatabase::new(),
    };
    let target = crate::parse_target(args)?;
    let mut cache = open_cache(args)?;
    let src = SourceFile::new(stem, read(src_path)?);
    let product =
        ipra_driver::separate::build_module_for(&src, &database, true, &mut cache, target)
            .map_err(|e| e.to_string())?;
    // The object carries machine code for `target`; the summary is phase-1
    // output (target-independent) and stays unstamped.
    ipra_artifact::write_file_for(ArtifactKind::Object, Path::new(&out), &product.object, target)
        .map_err(artifact_err)?;
    ipra_artifact::write_file(ArtifactKind::Summary, Path::new(&sum_out), &product.summary)
        .map_err(artifact_err)?;
    let leg = |hit: bool| if hit { "hit" } else { "miss" };
    eprintln!(
        "c: {src_path} -> {out}, {sum_out} (phase1 {}, phase2 {})",
        leg(product.phase1_hit),
        leg(product.phase2_hit)
    );
    Ok(())
}

/// `cminc lib`: archives `.vo` objects (each with its sibling `.csum`
/// summary) into a `.vlib` library, in argument order.
pub fn lib_cmd(args: &[String]) -> Result<(), String> {
    let objs = positionals(args);
    if objs.is_empty() {
        return Err("lib needs at least one .vo object file".into());
    }
    let out = flag_value(args, "-o").ok_or("lib needs -o <lib.vlib>")?;
    let mut members = Vec::with_capacity(objs.len());
    for o in &objs {
        let object = load_object(o)?;
        let sum_path = PathBuf::from(o).with_extension("csum");
        let summary: SummaryArtifact = ipra_artifact::read_file(ArtifactKind::Summary, &sum_path)
            .map_err(|e| {
            format!("{o}: library members need their summary ({}): {e}", sum_path.display())
        })?;
        members.push(LibraryMember { object, summary: summary.summary });
    }
    let lib = LibraryArtifact { members };
    ipra_artifact::write_file(ArtifactKind::Library, Path::new(&out), &lib)
        .map_err(artifact_err)?;
    eprintln!("lib: {} member(s) -> {out}", lib.members.len());
    Ok(())
}

/// Splits `link` inputs into root objects and library archives, pulling
/// needed library members ar-style (to fixpoint across all libraries).
pub fn collect_link_inputs(paths: &[String]) -> Result<Vec<ObjectModule>, String> {
    let mut roots = Vec::new();
    let mut library = LibraryArtifact::default();
    for p in paths {
        if ArtifactKind::for_path(Path::new(p)) == Some(ArtifactKind::Library) {
            let a: LibraryArtifact = ipra_artifact::read_file(ArtifactKind::Library, Path::new(p))
                .map_err(artifact_err)?;
            library.members.extend(a.members);
        } else {
            roots.push(load_object(p)?);
        }
    }
    for i in library.select(&roots) {
        roots.push(library.members[i].object.clone());
    }
    Ok(roots)
}

// ---------------------------------------------------------------------------
// objdump.

/// `cminc objdump <file>`: pretty-prints any of the five artifact kinds.
pub fn objdump_cmd(args: &[String]) -> Result<(), String> {
    let files = positionals(args);
    let [path] = files.as_slice() else {
        return Err("objdump takes exactly one artifact file".into());
    };
    let (kind, version, target) =
        ipra_artifact::sniff_file(Path::new(path)).map_err(artifact_err)?;
    println!("{path}: {kind} artifact v{version} (target {target})");
    let p = Path::new(path);
    match kind {
        ArtifactKind::Summary => {
            let a: SummaryArtifact = ipra_artifact::read_file(kind, p).map_err(artifact_err)?;
            println!("source fnv64:{:016x}  ir fnv64:{:016x}", a.source_fp, a.ir_fp);
            print!("{}", dump_summary(&a.summary));
        }
        ArtifactKind::Directives => {
            let a: DirectivesArtifact = ipra_artifact::read_file(kind, p).map_err(artifact_err)?;
            println!("config {}  ({} procedures)", a.config, a.database.len());
            // The directive registers are target-specific; the header
            // stamp names which convention to render them in.
            print!("{}", dump_directives(&a.database, target.desc()));
        }
        ArtifactKind::Object => {
            let a: ObjectArtifact = ipra_artifact::read_file(kind, p).map_err(artifact_err)?;
            println!("ir fnv64:{:016x}  directives fnv64:{:016x}", a.ir_fp, a.dir_fp);
            print!("{}", dump_object(&a.object));
        }
        ArtifactKind::Executable => {
            let a: ExecutableArtifact = ipra_artifact::read_file(kind, p).map_err(artifact_err)?;
            print!("{}", dump_executable(&a.exe));
        }
        ArtifactKind::Library => {
            let a: LibraryArtifact = ipra_artifact::read_file(kind, p).map_err(artifact_err)?;
            for (i, m) in a.members.iter().enumerate() {
                let funcs: Vec<&str> = m.object.functions.iter().map(|f| f.name()).collect();
                let globals: Vec<&str> = m.object.globals.iter().map(|g| g.sym.as_str()).collect();
                println!(
                    "member {i}: module {} defines [{}] globals [{}]",
                    m.object.name,
                    funcs.join(" "),
                    globals.join(" ")
                );
            }
        }
    }
    Ok(())
}

fn dump_summary(s: &ModuleSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "module {}: {} procedure(s), {} global(s)",
        s.module,
        s.procs.len(),
        s.globals.len()
    );
    for g in &s.globals {
        let _ = writeln!(out, "  global {g:?}");
    }
    for p in &s.procs {
        let _ = writeln!(
            out,
            "  proc {}: callee-saves est {}, caller-saves est {}{}",
            p.name,
            p.callee_saves_estimate,
            p.caller_saves_estimate,
            if p.makes_indirect_calls { ", makes indirect calls" } else { "" }
        );
        for c in &p.calls {
            let _ = writeln!(out, "    call {c:?}");
        }
        for r in &p.global_refs {
            let _ = writeln!(out, "    ref  {r:?}");
        }
        for t in &p.taken_addresses {
            let _ = writeln!(out, "    addr-taken {t}");
        }
    }
    out
}

/// Renders a register set with the target's ABI names (`{a0, s3}`).
fn fmt_regset(set: RegSet, desc: &TargetDesc) -> String {
    let names: Vec<&str> = set.iter().map(|r| desc.reg_name(r)).collect();
    format!("{{{}}}", names.join(", "))
}

fn dump_directives(db: &ProgramDatabase, desc: &TargetDesc) -> String {
    let mut out = String::new();
    for d in db.iter() {
        let _ = writeln!(
            out,
            "proc {:<16} mspill {}{}  claimed {}  safe-across {}",
            d.name,
            fmt_regset(d.usage.mspill, desc),
            if d.is_cluster_root { "  cluster-root" } else { "" },
            fmt_regset(d.claimed_caller, desc),
            fmt_regset(d.safe_caller_across, desc)
        );
        for p in &d.promotions {
            let _ = writeln!(
                out,
                "  promote {:<14} -> {}{}{}",
                p.sym,
                desc.reg_name(p.reg),
                if p.is_entry { "  (entry: load here)" } else { "" },
                if p.store_at_exit { "  (store at exit)" } else { "" }
            );
        }
    }
    out
}

fn dump_object(m: &ObjectModule) -> String {
    let desc = m.target.desc();
    let mut out = String::new();
    let _ = writeln!(out, "module {} (target {})", m.name, m.target);
    for g in &m.globals {
        let _ = writeln!(out, "global {} ({} words)", g.sym, g.size);
    }
    for f in &m.functions {
        out.push_str(&vpr::asm::function_asm_for(f, desc));
    }
    let relocs = m.relocations();
    let _ = writeln!(out, "; {} relocation(s)", relocs.len());
    for r in &relocs {
        let _ = writeln!(out, ";   {}+{}: {} {}", r.func, r.inst, r.kind, r.sym);
    }
    let symbols = m.symbol_table();
    let list = |set: &std::collections::BTreeSet<String>| {
        set.iter().cloned().collect::<Vec<_>>().join(" ")
    };
    let _ = writeln!(out, "; defines funcs [{}]", list(&symbols.defined_funcs));
    let _ = writeln!(out, "; defines globals [{}]", list(&symbols.defined_globals));
    let _ = writeln!(out, "; needs funcs [{}]", list(&symbols.undefined_funcs));
    let _ = writeln!(out, "; needs globals [{}]", list(&symbols.undefined_globals));
    out
}

/// Linked disassembly with call targets symbolized back to `proc+offset`
/// through [`Executable::symbolize`].
fn dump_executable(exe: &Executable) -> String {
    let desc = exe.target().desc();
    let mut out = String::new();
    for (pc, inst) in exe.insts().iter().enumerate() {
        if let Some(fi) = exe.funcs().iter().find(|fi| fi.entry == pc) {
            let _ = writeln!(out, "\n{}:  ; @{}", fi.name, fi.entry);
        }
        let _ = write!(out, "  {pc:6}  {}", vpr::asm::inst_asm(inst, desc));
        if let Inst::CallAbs { entry } = inst {
            if let Some(sym) = exe.symbolize(*entry as usize) {
                let _ = write!(out, "  ; -> {sym}");
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "\n; --- data ---");
    for g in exe.globals() {
        let _ = writeln!(out, ";   {} @ {} ({} words)", g.sym, g.addr, g.size);
    }
    out
}
