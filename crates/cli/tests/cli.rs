//! End-to-end test of the `cminc` command-line driver: the full file-based
//! Figure 1 pipeline — phase1 per module, analyze, phase2 per module, link,
//! run — plus the profile round trip and the one-shot `build`.

use std::path::PathBuf;
use std::process::Command;

fn cminc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cminc"))
}

fn write(dir: &std::path::Path, name: &str, text: &str) -> PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cminc-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const LIB_SRC: &str = "static int calls;
int total;
int add_in(int v) { calls = calls + 1; total = total + v; return total; }
int call_count() { return calls; }";

const MAIN_SRC: &str = "extern int total;
extern int add_in(int);
extern int call_count();
int main() {
    int v = in();
    while (v >= 0) { add_in(v); v = in(); }
    out(total);
    out(call_count());
    return total;
}";

#[test]
fn file_based_pipeline_end_to_end() {
    let dir = tempdir("pipeline");
    let lib = write(&dir, "counterlib.cmin", LIB_SRC);
    let app = write(&dir, "app.cmin", MAIN_SRC);

    // Phase 1 on each module.
    for src in [&lib, &app] {
        let out =
            cminc().current_dir(&dir).args(["phase1", src.to_str().unwrap()]).output().unwrap();
        assert!(out.status.success(), "phase1: {}", String::from_utf8_lossy(&out.stderr));
    }
    assert!(dir.join("counterlib.sum").exists());
    assert!(dir.join("app.ir").exists());

    // Analyzer over the summary files.
    let out = cminc()
        .current_dir(&dir)
        .args(["analyze", "counterlib.sum", "app.sum", "--config", "C", "-o", "program.db"])
        .output()
        .unwrap();
    assert!(out.status.success(), "analyze: {}", String::from_utf8_lossy(&out.stderr));
    let db_text = std::fs::read_to_string(dir.join("program.db")).unwrap();
    assert!(db_text.contains("add_in"));

    // Phase 2 on each intermediate file — deliberately in the opposite
    // order, which the paper's design explicitly allows.
    for stem in ["app", "counterlib"] {
        let out = cminc()
            .current_dir(&dir)
            .args([
                "phase2",
                &format!("{stem}.ir"),
                "--db",
                "program.db",
                "-o",
                &format!("{stem}.obj"),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "phase2: {}", String::from_utf8_lossy(&out.stderr));
    }

    // Link and run.
    let out = cminc()
        .current_dir(&dir)
        .args(["link", "counterlib.obj", "app.obj", "-o", "prog.exe"])
        .output()
        .unwrap();
    assert!(out.status.success(), "link: {}", String::from_utf8_lossy(&out.stderr));

    let out = cminc()
        .current_dir(&dir)
        .args(["run", "prog.exe", "--input", "5 10 15", "--stats", "--profile-out", "prof.json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "run: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim().lines().collect::<Vec<_>>(), vec!["30", "3"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cycles:"), "{stderr}");

    // Profile file exists and names the hot procedure.
    let prof = std::fs::read_to_string(dir.join("prof.json")).unwrap();
    assert!(prof.contains("add_in"));

    // Profile-fed analysis (config F) consumes it.
    let out = cminc()
        .current_dir(&dir)
        .args([
            "analyze",
            "counterlib.sum",
            "app.sum",
            "--config",
            "F",
            "--profile",
            "prof.json",
            "-o",
            "program_f.db",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "analyze F: {}", String::from_utf8_lossy(&out.stderr));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn build_one_shot_matches_pipeline() {
    let dir = tempdir("build");
    write(&dir, "counterlib.cmin", LIB_SRC);
    write(&dir, "app.cmin", MAIN_SRC);
    let out = cminc()
        .current_dir(&dir)
        .args([
            "build",
            "counterlib.cmin",
            "app.cmin",
            "--config",
            "C",
            "--run",
            "--stats",
            "--input",
            "1 2 3 4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "build: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim().lines().collect::<Vec<_>>(), vec!["10", "4"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_is_deterministic_and_names_the_decisions() {
    let dir = tempdir("explain");
    write(&dir, "counterlib.cmin", LIB_SRC);
    write(&dir, "app.cmin", MAIN_SRC);
    let run = |symbol: &str| {
        cminc()
            .current_dir(&dir)
            .args(["explain", symbol, "counterlib.cmin", "app.cmin", "--config", "C"])
            .output()
            .unwrap()
    };
    let out = run("total");
    assert!(out.status.success(), "explain: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("analyzer decisions mentioning `total`"), "{text}");
    assert!(text.contains("formed for global `total`"), "{text}");
    // Promotions land on callee-saves registers, rendered with the
    // target's ABI names (`s0`, `s1`, …) rather than raw indices.
    assert!(text.contains("promoted to s"), "{text}");
    assert_eq!(out.stdout, run("total").stdout, "explain must be deterministic");
    let missing = run("no_such_symbol");
    assert!(missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stdout).contains("no analyzer decisions"));

    // The saved-trace path renders the same chain.
    let out = cminc()
        .current_dir(&dir)
        .args(["build", "counterlib.cmin", "app.cmin", "--config", "C", "--trace", "t.json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "build --trace: {}", String::from_utf8_lossy(&out.stderr));
    let from_file =
        cminc().current_dir(&dir).args(["explain", "total", "--trace", "t.json"]).output().unwrap();
    assert!(from_file.status.success());
    assert_eq!(String::from_utf8_lossy(&from_file.stdout), text);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_is_byte_deterministic_and_sums() {
    let dir = tempdir("report");
    write(&dir, "counterlib.cmin", LIB_SRC);
    write(&dir, "app.cmin", MAIN_SRC);
    let run = |json: &str| {
        cminc()
            .current_dir(&dir)
            .args([
                "report",
                "counterlib.cmin",
                "app.cmin",
                "--config-b",
                "C",
                "--input",
                "5 10 15",
                "--json",
                json,
            ])
            .output()
            .unwrap()
    };
    let out = run("r1.json");
    assert!(out.status.success(), "report: {}", String::from_utf8_lossy(&out.stderr));
    let table = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(table.contains("per-procedure breakdown: L2 → C"), "{table}");
    assert!(table.contains("add_in"), "{table}");
    assert!(table.contains("cycles"), "{table}");
    let again = run("r2.json");
    assert_eq!(out.stdout, again.stdout, "report table must be deterministic");
    let j1 = std::fs::read(dir.join("r1.json")).unwrap();
    let j2 = std::fs::read(dir.join("r2.json")).unwrap();
    assert_eq!(j1, j2, "report JSON must be byte-identical run to run");
    let json = String::from_utf8(j1).unwrap();
    assert!(json.contains("\"config_b\": \"C\""), "{json}");
    assert!(json.contains("\"reasons\""), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_stats_json_dumps_exact_attribution() {
    let dir = tempdir("statsjson");
    write(&dir, "counterlib.cmin", LIB_SRC);
    write(&dir, "app.cmin", MAIN_SRC);
    let out = cminc()
        .current_dir(&dir)
        .args(["build", "counterlib.cmin", "app.cmin", "--config", "C"])
        .output()
        .unwrap();
    assert!(out.status.success());
    // Rebuild through the file pipeline to get an exe on disk.
    for src in ["counterlib.cmin", "app.cmin"] {
        assert!(cminc().current_dir(&dir).args(["phase1", src]).output().unwrap().status.success());
    }
    for cmd in [
        vec!["analyze", "counterlib.sum", "app.sum", "--config", "C", "-o", "p.db"],
        vec!["phase2", "counterlib.ir", "--db", "p.db", "-o", "counterlib.obj"],
        vec!["phase2", "app.ir", "--db", "p.db", "-o", "app.obj"],
        vec!["link", "counterlib.obj", "app.obj", "-o", "prog.exe"],
    ] {
        let out = cminc().current_dir(&dir).args(&cmd).output().unwrap();
        assert!(out.status.success(), "{cmd:?}: {}", String::from_utf8_lossy(&out.stderr));
    }
    let out = cminc()
        .current_dir(&dir)
        .args(["run", "prog.exe", "--input", "5 10 15", "--stats-json", "s.json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "run: {}", String::from_utf8_lossy(&out.stderr));
    let dump = std::fs::read_to_string(dir.join("s.json")).unwrap();
    for key in ["funcs", "call_counts", "call_edges", "attribution", "inclusive_cycles", "add_in"] {
        assert!(dump.contains(key), "missing `{key}` in {dump}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let dir = tempdir("errors");
    let bad = write(&dir, "bad.cmin", "int f( {");
    let out = cminc().args(["phase1", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad"));

    let out = cminc().args(["analyze", "-o", "x.db"]).output().unwrap();
    assert!(!out.status.success());

    let out = cminc().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_b_requires_profile() {
    let dir = tempdir("needprof");
    write(&dir, "m.cmin", "int main() { return 0; }");
    let out = cminc().current_dir(&dir).args(["phase1", "m.cmin"]).output().unwrap();
    assert!(out.status.success());
    let out = cminc()
        .current_dir(&dir)
        .args(["analyze", "m.sum", "--config", "B", "-o", "x.db"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profile"));
    let _ = std::fs::remove_dir_all(&dir);
}
