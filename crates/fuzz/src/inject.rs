//! Self-validation: inject known miscompile classes into correctly
//! compiled machine code (and, for the stale-recompilation class, into
//! the program database) and demand that the verifier half of the oracle
//! flags each one. A fuzzer whose oracle never fires on broken code is
//! indistinguishable from one that checks nothing — this module is the
//! proof it would fire.
//!
//! The three classes mirror the repository's mutation-test suite:
//!
//! * **missing-restore** — a callee-saves restore dropped from an
//!   epilogue path;
//! * **promotion-clobber** — the paper's §6 recompilation hazard: one
//!   procedure's database entry loses a promotion (as if its module were
//!   rebuilt against an older database) and its code then clobbers the
//!   web's home register;
//! * **missing-cluster-save** — a cluster root's boundary save for an
//!   MSPILL register deleted (§4.2 spill-code motion contract).

use ipra_core::PaperConfig;
use ipra_driver::{compile, verify_program, CompileOptions, CompiledProgram, SourceFile};
use ipra_verify::{verify_modules, DiagKind};
use vpr::inst::{Inst, MemClass};
use vpr::regs::{Reg, RegSet};

/// A known miscompile class the fuzzer can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationClass {
    /// Drop a callee-saves restore.
    MissingRestore,
    /// Stale-recompilation promotion-home clobber.
    PromotionClobber,
    /// Delete a cluster root's MSPILL boundary save.
    MissingClusterSave,
}

impl MutationClass {
    /// Every class, in a fixed order.
    pub const ALL: [MutationClass; 3] = [
        MutationClass::MissingRestore,
        MutationClass::PromotionClobber,
        MutationClass::MissingClusterSave,
    ];

    /// Kebab-case name (corpus metadata).
    pub fn name(self) -> &'static str {
        match self {
            MutationClass::MissingRestore => "missing-restore",
            MutationClass::PromotionClobber => "promotion-clobber",
            MutationClass::MissingClusterSave => "missing-cluster-save",
        }
    }

    /// Parses [`MutationClass::name`].
    pub fn parse(name: &str) -> Option<MutationClass> {
        MutationClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The paper configuration whose codegen exhibits the machinery this
    /// class breaks (plain callee-saves for restores, promotion webs for
    /// clobbers, clusters for boundary saves).
    pub fn config(self) -> PaperConfig {
        match self {
            MutationClass::MissingRestore => PaperConfig::L2,
            MutationClass::PromotionClobber => PaperConfig::E,
            MutationClass::MissingClusterSave => PaperConfig::A,
        }
    }

    /// The diagnostic kind the verifier must report for this class.
    pub fn diag_kind(self) -> DiagKind {
        match self {
            MutationClass::MissingRestore => DiagKind::MissingRestore,
            MutationClass::PromotionClobber => DiagKind::PromotionClobber,
            MutationClass::MissingClusterSave => DiagKind::MissingClusterSave,
        }
    }
}

/// What an injection did: which procedure was sabotaged.
#[derive(Debug, Clone)]
pub struct Injection {
    /// The class applied.
    pub class: MutationClass,
    /// The procedure whose code (or directives) were mutated.
    pub proc: String,
}

/// Finds `(module, function, instruction)` of the first instruction in
/// any procedure for which `pick` returns true, in program order.
pub fn find_inst(
    program: &CompiledProgram,
    pick: impl Fn(&str, usize, &Inst) -> bool,
) -> Option<(usize, usize, usize)> {
    for (mi, m) in program.objects.iter().enumerate() {
        for (fi, f) in m.functions.iter().enumerate() {
            for (ii, inst) in f.insts().iter().enumerate() {
                if pick(f.name(), ii, inst) {
                    return Some((mi, fi, ii));
                }
            }
        }
    }
    None
}

/// Applies `class` to a compiled program, mutating its objects (and for
/// [`MutationClass::PromotionClobber`] its database). Returns `None` —
/// with the program unchanged — when the program has no applicable site,
/// so callers can keep hunting seeds.
pub fn inject(program: &mut CompiledProgram, class: MutationClass) -> Option<Injection> {
    match class {
        MutationClass::MissingRestore => inject_missing_restore(program),
        MutationClass::PromotionClobber => inject_promotion_clobber(program),
        MutationClass::MissingClusterSave => inject_missing_cluster_save(program),
    }
}

/// Nop out a callee-saves restore (the classic "missed epilogue on an
/// early return" codegen bug).
fn inject_missing_restore(program: &mut CompiledProgram) -> Option<Injection> {
    let (mi, fi, ii) = find_inst(program, |_, _, inst| {
        matches!(inst,
            Inst::Ldw { rd, base: Reg::SP, disp, class: MemClass::Spill }
                if *disp >= 0 && RegSet::callee_saves().contains(*rd))
    })?;
    let proc = program.objects[mi].functions[fi].name().to_string();
    program.objects[mi].functions[fi].insts_mut()[ii] = Inst::Nop;
    Some(Injection { class: MutationClass::MissingRestore, proc })
}

/// Set up the §6 stale-recompilation hazard, then clobber. The victim is
/// chosen so its code doesn't touch the web's home register at all: the
/// database mutation alone must keep the program clean (checked — if it
/// doesn't, the site is rejected), so only the code mutation introduces
/// the violation.
fn inject_promotion_clobber(program: &mut CompiledProgram) -> Option<Injection> {
    let mut found = None;
    'procs: for d in program.database.iter() {
        if d.promotions.iter().any(|q| q.is_entry) {
            continue; // entries load/store the memory home; keep it simple
        }
        for q in &d.promotions {
            let touches_home = find_inst(program, |name, _, inst| {
                name == d.name && (inst.def() == Some(q.reg) || inst.uses().contains(q.reg))
            })
            .is_some();
            let has_scratch_def = find_inst(program, |name, _, inst| {
                name == d.name
                    && matches!(inst.def(),
                        Some(rd) if RegSet::caller_saves().contains(rd) && rd != Reg::RV)
            })
            .is_some();
            let is_called = find_inst(
                program,
                |_, _, inst| matches!(inst, Inst::Call { target } if *target == d.name),
            )
            .is_some();
            if !touches_home && has_scratch_def && is_called {
                found = Some((d.name.clone(), q.sym.clone(), q.reg));
                break 'procs;
            }
        }
    }
    let (victim, sym, home) = found?;

    // Drop the promotion from the victim's directives, as if its module
    // were rebuilt against an older database. This alone must stay clean;
    // a site where it doesn't is not the hazard we're modeling.
    let mut stale = program.database.lookup(&victim);
    stale.promotions.retain(|q| q.sym != sym);
    let original = program.database.lookup(&victim);
    program.database.insert(stale);
    if !verify_modules(&program.objects, &program.database).is_clean() {
        program.database.insert(original);
        return None;
    }

    // Replace a scratch-register write in the victim with a write to the
    // web's home register (replacement, not insertion, keeps labels
    // valid).
    let (mi, fi, ii) = find_inst(program, |name, _, inst| {
        name == victim
            && matches!(inst.def(), Some(rd) if RegSet::caller_saves().contains(rd) && rd != Reg::RV)
    })
    .expect("site selection guaranteed a scratch def");
    program.objects[mi].functions[fi].insts_mut()[ii] = Inst::Ldi { rd: home, imm: 0 };
    Some(Injection { class: MutationClass::PromotionClobber, proc: victim })
}

/// Nop out a cluster root's boundary save for an MSPILL register.
fn inject_missing_cluster_save(program: &mut CompiledProgram) -> Option<Injection> {
    let root = program
        .database
        .iter()
        .find(|d| d.is_cluster_root && !d.usage.mspill.is_empty())
        .map(|d| (d.name.clone(), d.usage.mspill))?;
    let (mi, fi, ii) = find_inst(program, |name, _, inst| {
        name == root.0
            && matches!(inst,
                Inst::Stw { rs, base: Reg::SP, disp, class: MemClass::Spill }
                    if *disp >= 0 && root.1.contains(*rs))
    })?;
    program.objects[mi].functions[fi].insts_mut()[ii] = Inst::Nop;
    Some(Injection { class: MutationClass::MissingClusterSave, proc: root.0 })
}

/// The reducer predicate and corpus replay check for self-validation
/// repros: the program compiles clean under the class's configuration,
/// the injection applies, and the verifier flags the expected diagnostic
/// kind afterwards.
pub fn injected_detectable(sources: &[SourceFile], class: MutationClass) -> bool {
    let Ok(program) = compile(sources, &CompileOptions::paper(class.config())) else {
        return false;
    };
    if !verify_program(&program).is_clean() {
        return false;
    }
    let mut mutated = program;
    inject(&mut mutated, class).is_some()
        && verify_modules(&mutated.objects, &mutated.database)
            .of_kind(class.diag_kind())
            .next()
            .is_some()
}
