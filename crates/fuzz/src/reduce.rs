//! Automatic shrinking: a delta-debugging reducer over `cmin` ASTs.
//!
//! Given a failing program and a predicate ("still fails the same way"),
//! the reducer greedily tries ever-smaller candidates, in coarse-to-fine
//! passes, keeping any candidate the predicate accepts:
//!
//! 1. drop whole modules;
//! 2. drop procedures;
//! 3. drop statements (recursively, inside nested blocks);
//! 4. drop global and extern declarations;
//! 5. simplify expressions (replace with an operand, or with `0`).
//!
//! Passes repeat to a fixpoint: dropping the last call into a module
//! unlocks dropping the module itself on the next round. Candidates are
//! re-rendered through the pretty-printer — whose `parse(pretty(ast)) ==
//! ast` round-trip guarantee is what makes AST-level surgery safe — so
//! the reducer can never emit a repro that fails for an unrelated
//! syntactic reason.
//!
//! Every candidate evaluation runs the caller's predicate (typically a
//! full oracle check or an inject-and-verify cycle), so the total work is
//! bounded by [`ReduceOptions::max_checks`].

use cmin_frontend::ast::{Block, Expr, LValue, Module, Stmt};
use cmin_frontend::pretty::module_to_string;
use ipra_driver::SourceFile;

/// Reduction limits.
#[derive(Debug, Clone, Copy)]
pub struct ReduceOptions {
    /// Maximum number of predicate evaluations (each one typically
    /// compiles the candidate program).
    pub max_checks: usize,
}

impl Default for ReduceOptions {
    fn default() -> ReduceOptions {
        ReduceOptions { max_checks: 1200 }
    }
}

/// What a reduction did.
#[derive(Debug, Clone)]
pub struct ReduceOutcome {
    /// The smallest failing program found.
    pub sources: Vec<SourceFile>,
    /// Predicate evaluations spent.
    pub checks: usize,
    /// Full coarse-to-fine rounds completed.
    pub rounds: usize,
}

/// Shrinks `sources` while `still_fails` keeps accepting, returning the
/// smallest accepted program. The original is returned unchanged if it
/// cannot be parsed (reduction needs the AST) or if no smaller candidate
/// reproduces the failure.
pub fn reduce(
    sources: &[SourceFile],
    mut still_fails: impl FnMut(&[SourceFile]) -> bool,
    opts: &ReduceOptions,
) -> ReduceOutcome {
    let Ok(mut modules) = parse_all(sources) else {
        return ReduceOutcome { sources: sources.to_vec(), checks: 0, rounds: 0 };
    };
    let mut checks = 0usize;
    let mut rounds = 0usize;
    let mut test = |candidate: &[Module], checks: &mut usize| -> bool {
        if *checks >= opts.max_checks {
            return false;
        }
        *checks += 1;
        still_fails(&render(candidate))
    };

    loop {
        let mut progress = false;
        rounds += 1;

        // Pass 1: drop whole modules.
        let mut i = 0;
        while modules.len() > 1 && i < modules.len() {
            let mut candidate = modules.clone();
            candidate.remove(i);
            if test(&candidate, &mut checks) {
                modules = candidate;
                progress = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: drop procedures.
        progress |= drop_items(&mut modules, &mut checks, &mut test, |m| &mut m.functions);

        // Pass 3: drop statements, recursively. Outer statements come
        // before their nested blocks in the numbering, so a whole loop
        // goes before its body is picked apart — coarse before fine.
        let mut k = 0;
        loop {
            let total: usize = modules.iter().map(|m| count_stmts(&m.functions)).sum();
            if k >= total || checks >= opts.max_checks {
                break;
            }
            let mut candidate = modules.clone();
            remove_stmt_program(&mut candidate, k);
            if test(&candidate, &mut checks) {
                modules = candidate;
                progress = true;
            } else {
                k += 1;
            }
        }

        // Pass 4: drop global definitions and extern declarations.
        progress |= drop_items(&mut modules, &mut checks, &mut test, |m| &mut m.globals);
        progress |= drop_items(&mut modules, &mut checks, &mut test, |m| &mut m.externs);

        // Pass 5: simplify expressions in place.
        let mut k = 0;
        loop {
            let total: usize = modules.iter().map(count_exprs_module).sum();
            if k >= total || checks >= opts.max_checks {
                break;
            }
            let mut simplified = false;
            for replacement in replacements_at(&modules, k) {
                let mut candidate = modules.clone();
                replace_expr_program(&mut candidate, k, replacement);
                if test(&candidate, &mut checks) {
                    modules = candidate;
                    progress = true;
                    simplified = true;
                    break;
                }
            }
            if !simplified {
                k += 1;
            }
        }

        if !progress || checks >= opts.max_checks {
            break;
        }
    }
    ReduceOutcome { sources: render(&modules), checks, rounds }
}

fn parse_all(sources: &[SourceFile]) -> Result<Vec<Module>, ()> {
    sources.iter().map(|s| cmin_frontend::parse_module(&s.name, &s.text).map_err(|_| ())).collect()
}

fn render(modules: &[Module]) -> Vec<SourceFile> {
    modules.iter().map(|m| SourceFile::new(m.name.clone(), module_to_string(m))).collect()
}

/// Greedy per-module dropper for flat item lists (functions, globals,
/// externs): tries removing each element, keeping any removal the
/// predicate accepts.
fn drop_items<T: Clone>(
    modules: &mut Vec<Module>,
    checks: &mut usize,
    test: &mut impl FnMut(&[Module], &mut usize) -> bool,
    items: impl Fn(&mut Module) -> &mut Vec<T>,
) -> bool {
    let mut progress = false;
    for mi in 0..modules.len() {
        let mut k = 0;
        while k < items(&mut modules[mi]).len() {
            let mut candidate = modules.clone();
            items(&mut candidate[mi]).remove(k);
            if test(&candidate, checks) {
                *modules = candidate;
                progress = true;
            } else {
                k += 1;
            }
        }
    }
    progress
}

// ---- Statement enumeration ----------------------------------------------

fn count_stmts(functions: &[cmin_frontend::ast::Function]) -> usize {
    functions.iter().map(|f| count_stmts_block(&f.body)).sum()
}

fn count_stmts_block(b: &Block) -> usize {
    b.stmts.iter().map(|s| 1 + count_stmts_nested(s)).sum()
}

fn count_stmts_nested(s: &Stmt) -> usize {
    match s {
        Stmt::If { then_blk, else_blk, .. } => {
            count_stmts_block(then_blk) + else_blk.as_ref().map(count_stmts_block).unwrap_or(0)
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => count_stmts_block(body),
        _ => 0,
    }
}

/// Removes the `k`-th statement in program traversal order (outer
/// statements numbered before their nested blocks); no-op when out of
/// range.
fn remove_stmt_program(modules: &mut [Module], mut k: usize) {
    for m in modules {
        for f in &mut m.functions {
            if remove_stmt_block(&mut f.body, &mut k) {
                return;
            }
        }
    }
}

fn remove_stmt_block(b: &mut Block, k: &mut usize) -> bool {
    let mut i = 0;
    while i < b.stmts.len() {
        if *k == 0 {
            b.stmts.remove(i);
            return true;
        }
        *k -= 1;
        let done = match &mut b.stmts[i] {
            Stmt::If { then_blk, else_blk, .. } => {
                remove_stmt_block(then_blk, k)
                    || else_blk.as_mut().map(|e| remove_stmt_block(e, k)).unwrap_or(false)
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => remove_stmt_block(body, k),
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

// ---- Expression enumeration ---------------------------------------------
//
// Every expression site in the program gets a pre-order traversal index;
// one walker serves counting, capture, and replacement through a closure
// that may return a replacement for the current site. Once a visit
// replaces (or captures) its target site, descending stops there, so
// numbering of earlier sites is identical across visit kinds.

/// Walks every expression site; `f` gets the site index and the
/// expression and may return `Some(replacement)` to substitute it (the
/// walk does not descend into a replaced site).
fn walk_exprs(modules: &mut [Module], f: &mut impl FnMut(usize, &Expr) -> Option<Expr>) {
    let mut counter = 0;
    for m in modules {
        for func in &mut m.functions {
            walk_block(&mut func.body, f, &mut counter);
        }
    }
}

fn walk_expr(e: &mut Expr, f: &mut impl FnMut(usize, &Expr) -> Option<Expr>, counter: &mut usize) {
    let here = *counter;
    *counter += 1;
    if let Some(replacement) = f(here, e) {
        *e = replacement;
        return;
    }
    match e {
        Expr::Num(..) | Expr::Name(..) | Expr::AddrOf { .. } | Expr::In { .. } => {}
        Expr::Unary { expr, .. } => walk_expr(expr, f, counter),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f, counter);
            walk_expr(rhs, f, counter);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f, counter);
            }
        }
        Expr::Index { index, .. } => walk_expr(index, f, counter),
    }
}

fn walk_stmt(s: &mut Stmt, f: &mut impl FnMut(usize, &Expr) -> Option<Expr>, counter: &mut usize) {
    match s {
        Stmt::Local { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f, counter);
            }
        }
        Stmt::Assign { target, value, .. } => {
            match target {
                LValue::Index { index, .. } => walk_expr(index, f, counter),
                LValue::Deref { addr, .. } => walk_expr(addr, f, counter),
                LValue::Name(..) => {}
            }
            walk_expr(value, f, counter);
        }
        Stmt::If { cond, then_blk, else_blk } => {
            walk_expr(cond, f, counter);
            walk_block(then_blk, f, counter);
            if let Some(b) = else_blk {
                walk_block(b, f, counter);
            }
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, f, counter);
            walk_block(body, f, counter);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                walk_stmt(i, f, counter);
            }
            if let Some(c) = cond {
                walk_expr(c, f, counter);
            }
            if let Some(st) = step {
                walk_stmt(st, f, counter);
            }
            walk_block(body, f, counter);
        }
        Stmt::Return { value, .. } => {
            if let Some(e) = value {
                walk_expr(e, f, counter);
            }
        }
        Stmt::Out { value, .. } => walk_expr(value, f, counter),
        Stmt::Expr { expr, .. } => walk_expr(expr, f, counter),
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
    }
}

fn walk_block(
    b: &mut Block,
    f: &mut impl FnMut(usize, &Expr) -> Option<Expr>,
    counter: &mut usize,
) {
    for s in &mut b.stmts {
        walk_stmt(s, f, counter);
    }
}

fn count_exprs_module(m: &Module) -> usize {
    let mut probe = vec![m.clone()];
    let mut total = 0;
    walk_exprs(&mut probe, &mut |_, _| {
        total += 1;
        None
    });
    total
}

/// Candidate replacements for the expression at site `k`, simplest first.
fn replacements_at(modules: &[Module], k: usize) -> Vec<Expr> {
    let mut found: Option<Expr> = None;
    let mut probe = modules.to_vec();
    walk_exprs(&mut probe, &mut |i, e| {
        if i == k && found.is_none() {
            found = Some(e.clone());
        }
        None
    });
    let Some(e) = found else { return Vec::new() };
    let span = e.span();
    let mut out = Vec::new();
    match &e {
        Expr::Num(..) => {} // already minimal
        Expr::Binary { lhs, rhs, .. } => {
            out.push(Expr::Num(0, span));
            out.push((**lhs).clone());
            out.push((**rhs).clone());
        }
        Expr::Unary { expr, .. } => {
            out.push(Expr::Num(0, span));
            out.push((**expr).clone());
        }
        _ => out.push(Expr::Num(0, span)),
    }
    out
}

fn replace_expr_program(modules: &mut [Module], k: usize, replacement: Expr) {
    let mut repl = Some(replacement);
    walk_exprs(modules, &mut |i, _| if i == k { repl.take() } else { None });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(name: &str, text: &str) -> SourceFile {
        SourceFile::new(name, text)
    }

    #[test]
    fn reduces_to_the_failing_kernel() {
        // "Failure": the program mentions global `bad`. Everything else
        // should be stripped.
        let sources = vec![
            parse(
                "m0",
                "int bad = 1;\nint keep() { return bad; }\nint main() { \
                 int x = 3; out(x + 2); out(keep()); return 0; }\n",
            ),
            parse("m1", "int unrelated(int p0) { return p0 * 2; }\n"),
        ];
        let predicate = |cand: &[SourceFile]| cand.iter().any(|s| s.text.contains("bad"));
        let out = reduce(&sources, predicate, &ReduceOptions::default());
        assert_eq!(out.sources.len(), 1, "unrelated module must be dropped");
        let text = &out.sources[0].text;
        assert!(text.contains("bad"), "kernel must survive: {text}");
        assert!(!text.contains("unrelated"), "{text}");
        assert!(!text.contains("x + 2"), "irrelevant statements must go: {text}");
    }

    #[test]
    fn candidates_always_round_trip() {
        // The predicate re-parses every candidate: a reducer emitting
        // unparseable text would panic here.
        let sources = vec![parse(
            "m0",
            "int g = 2;\nint f(int p0) { for (int i = 0; i < 3; i = i + 1) \
             { g = g + p0; } if (g) { out(g); } else { out(0); } return g; }\n\
             int main() { out(f(2)); return 0; }\n",
        )];
        let predicate = |cand: &[SourceFile]| {
            for s in cand {
                cmin_frontend::parse_module(&s.name, &s.text).expect("candidate must parse");
            }
            cand.iter().any(|s| s.text.contains("out"))
        };
        let out = reduce(&sources, predicate, &ReduceOptions::default());
        assert!(out.sources[0].text.contains("out"));
        assert!(out.checks > 0);
    }

    #[test]
    fn budget_bounds_predicate_evaluations() {
        let sources = vec![parse("m0", "int main() { out(1); out(2); out(3); return 0; }\n")];
        let mut calls = 0usize;
        let out = reduce(
            &sources,
            |_| {
                calls += 1;
                false
            },
            &ReduceOptions { max_checks: 5 },
        );
        assert!(calls <= 5, "{calls}");
        assert_eq!(out.sources.len(), 1);
    }

    #[test]
    fn expression_simplification_hoists_operands() {
        // Failure: output contains a call to f. The arithmetic around it
        // should simplify away.
        let sources = vec![parse(
            "m0",
            "int f(int p0) { return p0; }\nint main() { out((3 * 4) + f(7 - 2)); return 0; }\n",
        )];
        let predicate = |cand: &[SourceFile]| {
            cand.iter().any(|s| s.text.contains("f(")) && {
                cand.iter().all(|s| cmin_frontend::parse_module(&s.name, &s.text).is_ok())
            }
        };
        let out = reduce(&sources, predicate, &ReduceOptions::default());
        let text = &out.sources[0].text;
        assert!(text.contains("f("), "{text}");
        assert!(!text.contains("3 * 4"), "constant arithmetic must simplify: {text}");
    }
}
