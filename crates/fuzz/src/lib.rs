//! # ipra-fuzz — differential fuzzing for the two-pass compiler
//!
//! The compiler's test suite proves it right on the programs we thought
//! of; this crate hunts for the programs we didn't. A seeded generator
//! ([`ipra_workloads::generator`]) produces random multi-module `cmin`
//! programs over a rotation of *shapes* (recursion cycles, function
//! pointers, `static` aliasing mixes, profile-feedback builds,
//! incremental-rebuild sequences); the [`oracle`] runs each one through
//! the reference interpreter and through compiled VPR code under **all
//! seven paper configurations**, plus `ipra-verify` and the attribution /
//! build-determinism invariants. Any disagreement is a [`oracle::Failure`].
//!
//! When a failure appears, the [`reduce`] module's delta-debugging
//! reducer shrinks the program to a minimal repro that still fails in the
//! same class, and [`corpus`] checks it into the persistent regression
//! corpus, where a replay test keeps it fixed forever.
//!
//! Because a fuzzer whose oracle never fires proves nothing, [`inject`]
//! provides self-validation: known miscompile classes are injected into
//! correct output and must be detected — and their repros shrink and land
//! in the corpus exactly like organic failures.
//!
//! ## Determinism
//!
//! Iteration `i` of a run with master seed `s` uses generator seed
//! `mix(s, i)` (a splitmix64 finalizer), independent of worker count:
//! `fuzz --seed 1 --iters 500 --jobs 8` and `--jobs 1` visit identical
//! programs and produce bit-identical reports. Only `--time-budget` runs
//! (where the iteration count itself depends on wall-clock) are exempt.

#![warn(missing_docs)]

pub mod corpus;
pub mod inject;
pub mod oracle;
pub mod reduce;

pub use inject::MutationClass;
pub use oracle::{CheckOptions, Failure};
pub use reduce::{ReduceOptions, ReduceOutcome};

use ipra_driver::SourceFile;
use ipra_workloads::generator::{random_program_with, GenConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Fuzzing-run parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed; every per-iteration seed derives from it.
    pub seed: u64,
    /// Number of iterations (ignored when `time_budget` is set).
    pub iters: usize,
    /// Run until this much wall-clock has elapsed instead of a fixed
    /// iteration count. Iteration seeds are still deterministic, but the
    /// stopping point is not.
    pub time_budget: Option<Duration>,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Where reduced repros are written; `None` disables corpus output.
    pub corpus_dir: Option<PathBuf>,
    /// Reduction budget per failure (predicate evaluations).
    pub reduce_checks: usize,
    /// Reduce and report at most this many failures (later ones are
    /// counted but left unreduced).
    pub max_reported: usize,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 1,
            iters: 100,
            time_budget: None,
            jobs: 0,
            corpus_dir: None,
            reduce_checks: ReduceOptions::default().max_checks,
            max_reported: 5,
        }
    }
}

/// One failing iteration, fully processed.
#[derive(Debug)]
pub struct FailureCase {
    /// Iteration index within the run.
    pub index: usize,
    /// The derived generator seed (reproduce with `--seed <this> --iters 1`
    /// is *not* enough — the shape rotation depends on the index — so the
    /// corpus stores the reduced sources themselves).
    pub seed: u64,
    /// Shape name from the rotation.
    pub shape: &'static str,
    /// What the oracle reported on the original program.
    pub failure: Failure,
    /// The reduced repro (the original sources if reduction was skipped
    /// or could not shrink).
    pub sources: Vec<SourceFile>,
    /// Module count before reduction.
    pub original_modules: usize,
    /// Predicate evaluations the reducer spent (0 = not reduced).
    pub reduce_checks: usize,
    /// Where the repro was saved, when a corpus directory was given.
    pub corpus_path: Option<PathBuf>,
}

/// The outcome of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Failures, in iteration order (at most
    /// [`FuzzOptions::max_reported`] are reduced; the rest only count in
    /// `total_failures`).
    pub failures: Vec<FailureCase>,
    /// Every failing iteration, including unreduced ones.
    pub total_failures: usize,
}

impl FuzzOutcome {
    /// Deterministic report: depends only on the seed/iteration stream,
    /// never on timing or worker count. Suitable for byte-comparison
    /// across `--jobs` widths.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: {} iterations, {} failure(s)",
            self.iterations, self.total_failures
        );
        for f in &self.failures {
            let _ = writeln!(
                out,
                "  [{}] seed {:#x} shape {}: {} ({} -> {} module(s))",
                f.index,
                f.seed,
                f.shape,
                f.failure.kind(),
                f.original_modules,
                f.sources.len()
            );
            if let Some(p) = &f.corpus_path {
                let _ = writeln!(out, "      saved {}", p.display());
            }
        }
        out
    }
}

/// A point in the shape rotation: a generator configuration plus the
/// oracle options it is checked under.
#[derive(Debug, Clone)]
pub struct Shape {
    /// Short name for reports.
    pub name: &'static str,
    /// Generator configuration.
    pub gen: GenConfig,
    /// Oracle options.
    pub check: CheckOptions,
}

/// The shape rotation: iteration `i` uses `shape_for(i)`. Mostly cheap
/// all-configuration differentials; the expensive build-level scenarios
/// (incremental rebuilds, trace purity, artifact-staged separate
/// compilation) run on three of every twelve iterations. The simulator
/// engine rotates too: most iterations run the default fast engine, two
/// pin the reference interpreter (so the oracle keeps exercising it), and
/// two run *both* engines demanding identical results
/// ([`CheckOptions::cross_engine`]). One slot per cycle additionally
/// round-trips the program through the `cmind` daemon wire codec
/// ([`CheckOptions::daemon_protocol`]), and one compiles every
/// configuration for *both* machine descriptions and demands identical
/// observable semantics ([`CheckOptions::cross_target`]).
pub fn shape_for(i: usize) -> Shape {
    let plain = CheckOptions::default();
    let g = GenConfig::default;
    match i % 12 {
        0 => Shape { name: "default", gen: g(), check: plain },
        1 => Shape {
            name: "wide",
            gen: GenConfig { modules: 3, funcs_per_module: 3, ..g() },
            check: CheckOptions { engine: vpr::Engine::Reference, ..plain },
        },
        2 => Shape {
            name: "alias",
            gen: GenConfig { globals_per_module: 8, funcs_per_module: 5, alias_mix: true, ..g() },
            check: plain,
        },
        3 => Shape { name: "fptr", gen: GenConfig { global_fn_ptrs: true, ..g() }, check: plain },
        4 => Shape {
            name: "all-shapes",
            gen: GenConfig {
                modules: 3,
                recursion: true,
                alias_mix: true,
                global_fn_ptrs: true,
                ptr_shapes: true,
                ..g()
            },
            check: CheckOptions { cross_engine: true, ..plain },
        },
        5 => Shape {
            name: "incremental",
            gen: g(),
            check: CheckOptions { incremental: true, ..plain },
        },
        6 => Shape {
            name: "trace-purity",
            gen: GenConfig {
                modules: 3,
                recursion: true,
                alias_mix: true,
                global_fn_ptrs: true,
                ..g()
            },
            check: CheckOptions { trace_purity: true, ..plain },
        },
        7 => Shape {
            name: "deep",
            gen: GenConfig { funcs_per_module: 6, max_stmts: 6, recursion: true, ..g() },
            check: CheckOptions { engine: vpr::Engine::Reference, ..plain },
        },
        8 => Shape {
            name: "separate",
            gen: GenConfig { modules: 3, alias_mix: true, ..g() },
            check: CheckOptions { separate: true, ..plain },
        },
        // Pointer-heavy: globals flowing into pointer parameters and
        // reassigned pointers, the shapes whose promotion decisions hinge
        // on the interprocedural points-to solve (configuration P).
        9 => Shape {
            name: "ptr",
            gen: GenConfig { globals_per_module: 6, alias_mix: true, ptr_shapes: true, ..g() },
            check: CheckOptions { cross_engine: true, ..plain },
        },
        // The daemon's wire protocol: multi-module programs (the sources
        // travel inside the request) round-tripped through the `cmind`
        // codec, with single-byte corruptions proven to be rejected.
        10 => Shape {
            name: "daemon",
            gen: GenConfig { modules: 3, alias_mix: true, ..g() },
            check: CheckOptions { daemon_protocol: true, ..plain },
        },
        // Both machine descriptions: every configuration is compiled for
        // VPR *and* RV32 (through one shared cache), verified under each
        // target's register convention, and must produce identical
        // observable RunResult semantics. Aliasing keeps the promotion
        // decisions — the target-sensitive part of the analysis — busy.
        _ => Shape {
            name: "cross-target",
            gen: GenConfig { modules: 3, alias_mix: true, recursion: true, ..g() },
            check: CheckOptions { cross_target: true, ..plain },
        },
    }
}

/// splitmix64 finalizer: the per-iteration seed derivation. Statistically
/// independent streams for adjacent `i`, and stable across releases (the
/// corpus records seeds).
pub fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn effective_jobs(jobs: usize) -> usize {
    if jobs != 0 {
        return jobs.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs one iteration: generate, check. Returns the failure (with the
/// generated sources) if the oracle fired.
fn run_iteration(master_seed: u64, index: usize) -> Option<(u64, Shape, Vec<SourceFile>, Failure)> {
    let shape = shape_for(index);
    let seed = mix(master_seed, index as u64);
    let sources = random_program_with(seed, &shape.gen);
    match oracle::check(&sources, &shape.check) {
        Ok(()) => None,
        Err(failure) => Some((seed, shape, sources, failure)),
    }
}

/// Runs iterations `[lo, hi)` across `jobs` workers (an index-pulling
/// scoped-thread pool; the driver's internal pool is not public), and
/// returns the failing iterations in index order regardless of worker
/// count or scheduling.
fn run_range(
    master_seed: u64,
    lo: usize,
    hi: usize,
    jobs: usize,
) -> Vec<(usize, u64, Shape, Vec<SourceFile>, Failure)> {
    let next = AtomicUsize::new(lo);
    let found = Mutex::new(Vec::new());
    let workers = effective_jobs(jobs).min(hi.saturating_sub(lo)).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= hi {
                    break;
                }
                if let Some((seed, shape, sources, failure)) = run_iteration(master_seed, i) {
                    found.lock().unwrap().push((i, seed, shape, sources, failure));
                }
            });
        }
    });
    let mut found = found.into_inner().unwrap();
    found.sort_by_key(|f| f.0);
    found
}

/// Runs the fuzzer. Deterministic in iteration-count mode; in
/// time-budget mode the visited seed stream is still deterministic but
/// its length is not.
pub fn fuzz(opts: &FuzzOptions) -> FuzzOutcome {
    let mut raw = Vec::new();
    let iterations;
    if let Some(budget) = opts.time_budget {
        let start = Instant::now();
        let chunk = (effective_jobs(opts.jobs) * 4).max(8);
        let mut done = 0usize;
        while start.elapsed() < budget {
            raw.extend(run_range(opts.seed, done, done + chunk, opts.jobs));
            done += chunk;
        }
        iterations = done;
    } else {
        raw = run_range(opts.seed, 0, opts.iters, opts.jobs);
        iterations = opts.iters;
    }

    let mut outcome = FuzzOutcome { iterations, failures: Vec::new(), total_failures: raw.len() };

    // Reduction and corpus output are serial: failures are rare, and the
    // report order must match iteration order.
    for (index, seed, shape, sources, failure) in raw.into_iter().take(opts.max_reported) {
        let original_modules = sources.len();
        let reduced = reduce::reduce(
            &sources,
            |cand| oracle::check(cand, &shape.check).err().is_some_and(|f| f.same_class(&failure)),
            &ReduceOptions { max_checks: opts.reduce_checks },
        );
        let corpus_path = opts.corpus_dir.as_ref().and_then(|dir| {
            let entry = corpus::CorpusEntry {
                seed,
                failure: failure.kind().to_string(),
                config: failure.config().map(|c| c.to_string()),
                mutation: None,
                sources: reduced.sources.clone(),
            };
            corpus::save(dir, &entry).ok()
        });
        outcome.failures.push(FailureCase {
            index,
            seed,
            shape: shape.name,
            failure,
            sources: reduced.sources,
            original_modules,
            reduce_checks: reduced.checks,
            corpus_path,
        });
    }
    outcome
}

/// One self-validation result: the injected class, the seed whose
/// generated program hosted it, and the reduced repro.
#[derive(Debug)]
pub struct SelfValidation {
    /// The injected miscompile class.
    pub class: MutationClass,
    /// Generator seed of the host program.
    pub seed: u64,
    /// Module count before reduction.
    pub original_modules: usize,
    /// The reduced repro (injection still applies and is still detected).
    pub sources: Vec<SourceFile>,
    /// Where the repro was saved, when a corpus directory was given.
    pub corpus_path: Option<PathBuf>,
}

/// Proves the oracle would fire: for each known miscompile class, find a
/// generated program that hosts an injection site, inject, demand the
/// verifier flags the class's diagnostic, then shrink the host program to
/// a minimal one where the injection is still detected and (optionally)
/// save it to the corpus.
///
/// # Errors
///
/// Returns a message if no host program is found within the seed budget
/// or — the one outcome that must fail the run loudly — the verifier does
/// not flag an applied injection.
pub fn self_validate(opts: &FuzzOptions) -> Result<Vec<SelfValidation>, String> {
    let mut out = Vec::new();
    // Two modules are enough to host every class (promotion webs and
    // clusters form across one module boundary) and keep repros minimal.
    let shape = GenConfig { modules: 2, ..GenConfig::default() };
    for class in MutationClass::ALL {
        // Salt the stream per class (FNV-1a over the class name) so all
        // classes hunt independently of each other and of the main fuzz
        // loop.
        let salt = class.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let mut hosted = None;
        for attempt in 0..400u64 {
            let seed = mix(opts.seed ^ salt, attempt);
            let sources = random_program_with(seed, &shape);
            let Ok(program) =
                ipra_driver::compile(&sources, &ipra_driver::CompileOptions::paper(class.config()))
            else {
                continue;
            };
            if !ipra_driver::verify_program(&program).is_clean() {
                continue;
            }
            let mut mutated = program;
            if inject::inject(&mut mutated, class).is_none() {
                continue;
            }
            let detected = ipra_verify::verify_modules(&mutated.objects, &mutated.database)
                .of_kind(class.diag_kind())
                .next()
                .is_some();
            if !detected {
                return Err(format!(
                    "self-validation FAILED: injected {} into seed {seed:#x} and the \
                     verifier did not flag it",
                    class.name()
                ));
            }
            hosted = Some((seed, sources));
            break;
        }
        let Some((seed, sources)) = hosted else {
            return Err(format!(
                "self-validation: no generated program hosted an injection site for {} \
                 within the seed budget",
                class.name()
            ));
        };
        let original_modules = sources.len();
        let reduced = reduce::reduce(
            &sources,
            |cand| inject::injected_detectable(cand, class),
            &ReduceOptions { max_checks: opts.reduce_checks },
        );
        let corpus_path = opts.corpus_dir.as_ref().and_then(|dir| {
            let entry = corpus::CorpusEntry {
                seed,
                failure: format!("injected-{}", class.name()),
                config: Some(class.config().to_string()),
                mutation: Some(class),
                sources: reduced.sources.clone(),
            };
            corpus::save(dir, &entry).ok()
        });
        out.push(SelfValidation {
            class,
            seed,
            original_modules,
            sources: reduced.sources,
            corpus_path,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_stable() {
        // The corpus records seeds; the derivation must never change.
        assert_eq!(mix(1, 0), mix(1, 0));
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_ne!(mix(1, 0), mix(2, 0));
        // Golden value: pinned so corpus seeds stay replayable forever.
        assert_eq!(mix(1, 0), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn shape_rotation_covers_all_extended_shapes() {
        let shapes: Vec<Shape> = (0..12).map(shape_for).collect();
        assert!(shapes.iter().any(|s| s.gen.recursion));
        assert!(shapes.iter().any(|s| s.gen.alias_mix));
        assert!(shapes.iter().any(|s| s.gen.global_fn_ptrs));
        assert!(shapes.iter().any(|s| s.gen.ptr_shapes));
        assert!(shapes.iter().any(|s| s.check.incremental));
        assert!(shapes.iter().any(|s| s.check.trace_purity));
        assert!(shapes.iter().any(|s| s.check.separate));
        // The engine rotation: the reference interpreter still gets fuzzed
        // directly, and the cross-engine differential runs on some shapes.
        assert!(shapes.iter().any(|s| s.check.engine == vpr::Engine::Reference));
        assert!(shapes.iter().any(|s| s.check.engine == vpr::Engine::Fast));
        assert!(shapes.iter().any(|s| s.check.cross_engine));
        assert!(shapes.iter().any(|s| s.check.daemon_protocol));
        assert!(shapes.iter().any(|s| s.check.cross_target));
        assert_eq!(shape_for(0).name, shape_for(12).name);
    }

    #[test]
    fn small_run_is_clean_and_jobs_independent() {
        let base = FuzzOptions { seed: 7, iters: 16, ..FuzzOptions::default() };
        let serial = fuzz(&FuzzOptions { jobs: 1, ..base.clone() });
        let parallel = fuzz(&FuzzOptions { jobs: 4, ..base });
        assert_eq!(serial.total_failures, 0, "{}", serial.render());
        assert_eq!(serial.render(), parallel.render());
    }
}
