//! The persistent regression corpus: every failure the fuzzer ever
//! reduced is checked into `tests/corpus/` as a single self-describing
//! `.cmin` file, and a replay test runs the whole directory forever after
//! — a bug found once can never be silently re-lost.
//!
//! ## File format
//!
//! One file holds one multi-module repro. `//!` header lines carry
//! metadata; `// === module NAME ===` separators delimit modules (the
//! `cmin` lexer treats both as ordinary comments, so the payload after
//! the headers is also directly feedable to `cminc`):
//!
//! ```text
//! //! seed: 0x1234abcd
//! //! failure: injected-missing-restore
//! //! config: L2
//! //! mutation: missing-restore
//! // === module m0 ===
//! int main() { ... }
//! // === module m1 ===
//! ...
//! ```

use crate::inject::MutationClass;
use ipra_driver::SourceFile;
use std::path::{Path, PathBuf};

/// Module separator prefix inside a corpus container file.
const MODULE_SEP: &str = "// === module ";

/// Joins multi-module sources into one container text with module
/// separators (no metadata headers).
pub fn join_sources(sources: &[SourceFile]) -> String {
    let mut out = String::new();
    for s in sources {
        out.push_str(MODULE_SEP);
        out.push_str(&s.name);
        out.push_str(" ===\n");
        out.push_str(&s.text);
        if !s.text.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

/// Splits a container text back into named modules. Text before the first
/// separator (e.g. metadata headers) is ignored; a text with no separator
/// at all becomes a single module named `m0`.
pub fn split_sources(text: &str) -> Vec<SourceFile> {
    let mut out: Vec<SourceFile> = Vec::new();
    let mut current: Option<(String, String)> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(MODULE_SEP) {
            if let Some((name, text)) = current.take() {
                out.push(SourceFile::new(name, text));
            }
            let name = rest.trim_end_matches(" ===").trim().to_string();
            current = Some((name, String::new()));
        } else if let Some((_, text)) = &mut current {
            text.push_str(line);
            text.push('\n');
        } else if !line.starts_with("//!") && !line.trim().is_empty() {
            // Headerless single-module text.
            current = Some(("m0".into(), format!("{line}\n")));
        }
    }
    if let Some((name, text)) = current.take() {
        out.push(SourceFile::new(name, text));
    }
    out
}

/// One corpus entry: the reduced repro plus enough metadata to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The generator seed that produced the original (pre-reduction)
    /// program.
    pub seed: u64,
    /// The failure class ([`crate::oracle::Failure::kind`], or
    /// `injected-<class>` for self-validation repros).
    pub failure: String,
    /// The paper configuration the failure occurred under, if any.
    pub config: Option<String>,
    /// For self-validation repros: the injected miscompile class. Replay
    /// re-applies the injection and demands the verifier still flags it.
    pub mutation: Option<MutationClass>,
    /// The reduced program.
    pub sources: Vec<SourceFile>,
}

impl CorpusEntry {
    /// Renders the entry in the container format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("//! seed: {:#x}\n", self.seed));
        out.push_str(&format!("//! failure: {}\n", self.failure));
        if let Some(c) = &self.config {
            out.push_str(&format!("//! config: {c}\n"));
        }
        if let Some(m) = &self.mutation {
            out.push_str(&format!("//! mutation: {}\n", m.name()));
        }
        out.push_str(&join_sources(&self.sources));
        out
    }

    /// Parses a container file.
    ///
    /// # Errors
    ///
    /// Returns a message if a header is malformed or no module is present.
    pub fn from_text(text: &str) -> Result<CorpusEntry, String> {
        let mut seed = 0u64;
        let mut failure = String::new();
        let mut config = None;
        let mut mutation = None;
        for line in text.lines() {
            let Some(header) = line.strip_prefix("//!") else { break };
            let Some((key, value)) = header.split_once(':') else {
                return Err(format!("malformed corpus header `{line}`"));
            };
            let value = value.trim();
            match key.trim() {
                "seed" => {
                    let digits = value.trim_start_matches("0x");
                    seed = u64::from_str_radix(digits, 16)
                        .or_else(|_| value.parse())
                        .map_err(|e| format!("bad seed `{value}`: {e}"))?;
                }
                "failure" => failure = value.to_string(),
                "config" => config = Some(value.to_string()),
                "mutation" => {
                    mutation = Some(
                        MutationClass::parse(value)
                            .ok_or_else(|| format!("unknown mutation class `{value}`"))?,
                    );
                }
                other => return Err(format!("unknown corpus header `{other}`")),
            }
        }
        let sources = split_sources(text);
        if sources.is_empty() {
            return Err("corpus entry has no modules".into());
        }
        Ok(CorpusEntry { seed, failure, config, mutation, sources })
    }

    /// Deterministic file name for this entry.
    pub fn file_name(&self) -> String {
        format!("{}-{:x}.cmin", self.failure, self.seed)
    }
}

/// Writes an entry into `dir` (created if needed) under its deterministic
/// name; returns the path.
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn save(dir: &Path, entry: &CorpusEntry) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(entry.file_name());
    std::fs::write(&path, entry.to_text()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Loads every `.cmin` entry in `dir`, sorted by file name (deterministic
/// replay order). A missing directory is an empty corpus.
///
/// # Errors
///
/// Returns the first parse or I/O error with its file name.
pub fn load(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Err(_) => return Ok(Vec::new()),
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "cmin"))
            .collect(),
    };
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry =
            CorpusEntry::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, entry));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_split_round_trips() {
        let sources = vec![
            SourceFile::new("m0", "int main() { return 0; }\n"),
            SourceFile::new("m1", "int f() { return 1; }\n"),
        ];
        assert_eq!(split_sources(&join_sources(&sources)), sources);
    }

    #[test]
    fn entry_round_trips_with_metadata() {
        let entry = CorpusEntry {
            seed: 0xdead_beef,
            failure: "injected-missing-restore".into(),
            config: Some("L2".into()),
            mutation: Some(MutationClass::MissingRestore),
            sources: vec![SourceFile::new("m0", "int main() { return 0; }\n")],
        };
        let parsed = CorpusEntry::from_text(&entry.to_text()).unwrap();
        assert_eq!(parsed, entry);
    }

    #[test]
    fn headerless_text_is_one_module() {
        let sources = split_sources("int main() { return 3; }\n");
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].name, "m0");
    }
}
