//! The differential oracle: one generated program, every way we know how
//! to falsify the compiler.
//!
//! A program passes [`check`] only if
//!
//! 1. the reference interpreter (which shares no code with the lowering,
//!    optimizer, analyzer, code generator, linker or simulator) accepts it
//!    and terminates without a trap;
//! 2. under **all seven paper configurations** — with one shared
//!    incremental cache across them, so cross-configuration cache
//!    soundness is on trial too — the program compiles, passes the
//!    `ipra-verify` register-discipline check, and its simulated output
//!    and exit code match the interpreter's;
//! 3. exact per-procedure attribution is internally consistent with the
//!    run statistics ([`vpr::Attribution::matches`]);
//! 4. optionally ([`CheckOptions::incremental`]) an edit → rebuild →
//!    revert sequence through one cache produces executables bit-identical
//!    to cold builds of the same sources;
//! 5. optionally ([`CheckOptions::trace_purity`]) compiling with decision
//!    tracing on yields a bit-identical executable (tracing must be pure
//!    observation);
//! 6. optionally ([`CheckOptions::separate`]) staging the build through
//!    on-disk artifacts (`.csum` → `.cdir` → `.vo` → `.vx`) yields an
//!    executable bit-identical to the in-memory `compile()` — the
//!    serialization layer must be lossless and the artifact pipeline must
//!    not perturb a single analyzer or codegen decision;
//! 7. optionally ([`CheckOptions::cross_engine`]) the *other* simulator
//!    engine (fast pre-decoded vs reference interpreter,
//!    [`vpr::Engine`]) produces an identical `Result<RunResult, SimError>`
//!    under every configuration — output, exit, stats, attribution, and
//!    trap kind/pc/symbolization must all agree bit-for-bit;
//! 8. optionally ([`CheckOptions::cross_target`]) the whole program is
//!    *also* compiled for the RV32 machine description under every
//!    configuration — through the same incremental cache, so per-target
//!    fingerprint separation is on trial too — and must pass
//!    `ipra-verify` under the RV32 convention and produce the same
//!    observable semantics (output stream and exit code) as both the
//!    interpreter and the VPR build. Register conventions differ per
//!    target; observable behavior must not.

use ipra_core::PaperConfig;
use ipra_driver::{
    compile, compile_configured, run_program_attributed, verify_program, CompilationCache,
    CompileOptions, SourceFile,
};
use std::fmt;
use std::path::PathBuf;

/// Execution budgets for the oracle's runs, far above anything a
/// generated program can legitimately execute (they are built from small
/// bounded loops and depth-clamped recursion) but small enough that a
/// *reducer-made* degenerate candidate — e.g. a `for` loop whose step
/// statement was dropped — fails fast as a trap (a different failure
/// class, so the reducer simply rejects the candidate) instead of
/// spinning through the engines' default multi-billion-step limits.
const ORACLE_INTERP_FUEL: u64 = 5_000_000;
const ORACLE_SIM_STEPS: u64 = 20_000_000;

/// What went wrong for one generated program. Every variant pinpoints the
/// failing stage; [`Failure::same_class`] is the reducer's "still fails
/// the same way" relation (kind + configuration, not exact payload).
#[derive(Debug, Clone)]
pub enum Failure {
    /// The frontend rejected a program the generator promised was
    /// well-formed.
    Frontend {
        /// The diagnostic.
        detail: String,
    },
    /// The reference interpreter trapped.
    InterpTrap {
        /// The trap.
        detail: String,
    },
    /// Compilation failed under one configuration.
    Compile {
        /// The failing configuration.
        config: PaperConfig,
        /// The driver error.
        detail: String,
    },
    /// The profile-feedback training run trapped.
    TrainingTrap {
        /// The failing configuration.
        config: PaperConfig,
        /// The trap.
        detail: String,
    },
    /// `ipra-verify` found a register-discipline violation.
    Verify {
        /// The failing configuration.
        config: PaperConfig,
        /// The rendered diagnostics.
        detail: String,
    },
    /// The simulator trapped on code the interpreter ran cleanly.
    SimTrap {
        /// The failing configuration.
        config: PaperConfig,
        /// The trap.
        detail: String,
    },
    /// Observable behavior diverged between interpreter and simulator.
    OutputDivergence {
        /// The failing configuration.
        config: PaperConfig,
        /// Interpreter output stream.
        oracle_out: Vec<i64>,
        /// Interpreter exit code.
        oracle_exit: i64,
        /// Simulator output stream.
        sim_out: Vec<i64>,
        /// Simulator exit code.
        sim_exit: i64,
    },
    /// Per-procedure attribution does not sum to the run totals.
    AttributionMismatch {
        /// The failing configuration.
        config: PaperConfig,
    },
    /// An incremental rebuild produced a different executable than a cold
    /// build of the same sources.
    IncrementalDivergence {
        /// The configuration under test.
        config: PaperConfig,
        /// Which leg of the edit/revert sequence diverged.
        detail: String,
    },
    /// Compiling with decision tracing on changed the emitted executable.
    TraceImpurity {
        /// The configuration under test.
        config: PaperConfig,
    },
    /// The artifact-staged separate-compilation build produced a different
    /// executable than the in-memory pipeline, or failed where the
    /// in-memory pipeline succeeded.
    SeparateDivergence {
        /// The configuration under test.
        config: PaperConfig,
        /// What diverged, including the preserved artifact directory.
        detail: String,
    },
    /// The two simulator engines disagreed on any observable of the same
    /// program — the fast engine's bit-identity contract is broken.
    EngineDivergence {
        /// The configuration under test.
        config: PaperConfig,
        /// The first observable that differed, with both engines' values.
        detail: String,
    },
    /// The `cmind` wire codec failed to round-trip a request/response
    /// built from the generated program, or accepted a corrupted frame.
    DaemonProtocol {
        /// What went wrong (which leg, which byte).
        detail: String,
    },
    /// The RV32 build of the same program failed, failed verification
    /// under the RV32 convention, or produced different observable
    /// semantics than the VPR build.
    CrossTargetDivergence {
        /// The configuration under test.
        config: PaperConfig,
        /// Which leg diverged, with both targets' observables.
        detail: String,
    },
}

impl Failure {
    /// Short kebab-case class name (used in corpus metadata and dedup).
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Frontend { .. } => "frontend-error",
            Failure::InterpTrap { .. } => "interp-trap",
            Failure::Compile { .. } => "compile-error",
            Failure::TrainingTrap { .. } => "training-trap",
            Failure::Verify { .. } => "verify-dirty",
            Failure::SimTrap { .. } => "sim-trap",
            Failure::OutputDivergence { .. } => "output-divergence",
            Failure::AttributionMismatch { .. } => "attribution-mismatch",
            Failure::IncrementalDivergence { .. } => "incremental-divergence",
            Failure::TraceImpurity { .. } => "trace-impurity",
            Failure::SeparateDivergence { .. } => "separate-divergence",
            Failure::EngineDivergence { .. } => "engine-divergence",
            Failure::DaemonProtocol { .. } => "daemon-protocol",
            Failure::CrossTargetDivergence { .. } => "cross-target-divergence",
        }
    }

    /// The configuration the failure occurred under, when it has one.
    pub fn config(&self) -> Option<PaperConfig> {
        match self {
            Failure::Frontend { .. }
            | Failure::InterpTrap { .. }
            | Failure::DaemonProtocol { .. } => None,
            Failure::Compile { config, .. }
            | Failure::TrainingTrap { config, .. }
            | Failure::Verify { config, .. }
            | Failure::SimTrap { config, .. }
            | Failure::OutputDivergence { config, .. }
            | Failure::AttributionMismatch { config }
            | Failure::IncrementalDivergence { config, .. }
            | Failure::TraceImpurity { config }
            | Failure::SeparateDivergence { config, .. }
            | Failure::EngineDivergence { config, .. }
            | Failure::CrossTargetDivergence { config, .. } => Some(*config),
        }
    }

    /// The reducer's invariant: a candidate still counts as reproducing
    /// this failure if it fails at the same stage under the same
    /// configuration (payload details may legitimately change as the
    /// program shrinks).
    pub fn same_class(&self, other: &Failure) -> bool {
        self.kind() == other.kind() && self.config() == other.config()
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Frontend { detail } => write!(f, "frontend error: {detail}"),
            Failure::InterpTrap { detail } => write!(f, "interpreter trap: {detail}"),
            Failure::Compile { config, detail } => write!(f, "[{config}] compile error: {detail}"),
            Failure::TrainingTrap { config, detail } => {
                write!(f, "[{config}] training run trapped: {detail}")
            }
            Failure::Verify { config, detail } => {
                write!(f, "[{config}] verification failed:\n{detail}")
            }
            Failure::SimTrap { config, detail } => write!(f, "[{config}] simulator trap: {detail}"),
            Failure::OutputDivergence { config, oracle_out, oracle_exit, sim_out, sim_exit } => {
                write!(
                    f,
                    "[{config}] diverged: oracle exit {oracle_exit} out {oracle_out:?} \
                     vs sim exit {sim_exit} out {sim_out:?}"
                )
            }
            Failure::AttributionMismatch { config } => {
                write!(f, "[{config}] per-procedure attribution does not sum to run totals")
            }
            Failure::IncrementalDivergence { config, detail } => {
                write!(f, "[{config}] incremental rebuild diverged from cold build: {detail}")
            }
            Failure::TraceImpurity { config } => {
                write!(f, "[{config}] tracing changed the emitted executable")
            }
            Failure::SeparateDivergence { config, detail } => {
                write!(f, "[{config}] artifact-staged build diverged from in-memory: {detail}")
            }
            Failure::EngineDivergence { config, detail } => {
                write!(f, "[{config}] simulator engines diverged: {detail}")
            }
            Failure::DaemonProtocol { detail } => {
                write!(f, "daemon wire codec violation: {detail}")
            }
            Failure::CrossTargetDivergence { config, detail } => {
                write!(f, "[{config}] rv32 build diverged from vpr: {detail}")
            }
        }
    }
}

/// Which optional oracle scenarios to run on top of the all-configuration
/// differential (both are build-level checks, independent of the random
/// program's behavior, so the fuzzer enables them on a rotating subset of
/// iterations to keep throughput).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckOptions {
    /// Run the edit → incremental rebuild → revert sequence and demand
    /// bit-identity with cold builds.
    pub incremental: bool,
    /// Compile once with decision tracing on and demand a bit-identical
    /// executable.
    pub trace_purity: bool,
    /// Stage the build through on-disk artifacts (`cminc c` → `analyze` →
    /// `link` equivalent) and demand an executable bit-identical to the
    /// in-memory pipeline.
    pub separate: bool,
    /// Which simulator engine runs the per-configuration differential leg
    /// (the fuzzer rotates this so the reference interpreter keeps getting
    /// fuzzed even though the fast engine is the default).
    pub engine: vpr::Engine,
    /// Additionally run every configuration's program under the *other*
    /// engine and demand an identical `Result<RunResult, SimError>`.
    pub cross_engine: bool,
    /// Round-trip a build request/response synthesized from the generated
    /// program through the `cmind` wire codec, then prove every
    /// single-byte corruption of the request frame is rejected with a
    /// typed error (never a panic, never a silent decode).
    pub daemon_protocol: bool,
    /// Additionally compile every configuration for the RV32 machine
    /// description (through the same cache) and demand a clean
    /// `ipra-verify` report plus observable semantics — output and exit —
    /// identical to the VPR build's [`vpr::RunResult`].
    pub cross_target: bool,
}

/// The configuration used for the build-level scenarios (incremental
/// rebuilds and trace purity). E exercises the richest machinery:
/// promotion webs, clusters, and spill-code motion.
const BUILD_SCENARIO_CONFIG: PaperConfig = PaperConfig::E;

/// Runs the full oracle over one program. `Ok(())` means every stage
/// agreed; the first discrepancy comes back as a typed [`Failure`].
pub fn check(sources: &[SourceFile], opts: &CheckOptions) -> Result<(), Failure> {
    let modules = match ipra_driver::frontend(sources) {
        Err(e) => return Err(Failure::Frontend { detail: e.to_string() }),
        Ok(m) => m,
    };
    let interp_opts =
        cmin_ir::interp::InterpOptions { fuel: ORACLE_INTERP_FUEL, ..Default::default() };
    let oracle = match cmin_ir::interp::interpret_with(&modules, &interp_opts) {
        Err(e) => return Err(Failure::InterpTrap { detail: e.to_string() }),
        Ok(r) => r,
    };

    // One cache across all eight configurations (the seven paper configs
    // plus alias-precision P): phase-1 entries must be reusable between
    // configs, and phase-2 entries must be correctly invalidated as the
    // database changes per config.
    let mut cache = CompilationCache::new();
    let copts = CompileOptions::default();
    for config in PaperConfig::ALL_WITH_ALIAS {
        let program = match compile_configured(sources, config, &[], &copts, &mut cache) {
            Err(e) => return Err(Failure::Compile { config, detail: e.to_string() }),
            Ok(Err(e)) => return Err(Failure::TrainingTrap { config, detail: e.to_string() }),
            Ok(Ok(p)) => p,
        };
        let report = verify_program(&program);
        if !report.is_clean() {
            return Err(Failure::Verify { config, detail: report.to_string() });
        }
        let sim_opts = vpr::SimOptions {
            attribute: true,
            max_steps: ORACLE_SIM_STEPS,
            engine: opts.engine,
            ..vpr::SimOptions::default()
        };
        let primary = vpr::run_with(&program.exe, &sim_opts);
        if opts.cross_engine {
            let other_opts = vpr::SimOptions { engine: opts.engine.other(), ..sim_opts.clone() };
            let other = vpr::run_with(&program.exe, &other_opts);
            if primary != other {
                return Err(Failure::EngineDivergence {
                    config,
                    detail: divergence_detail(opts.engine, &primary, &other),
                });
            }
        }
        let r = match primary {
            Err(e) => return Err(Failure::SimTrap { config, detail: e.to_string() }),
            Ok(r) => r,
        };
        if r.output != oracle.output || r.exit != oracle.exit {
            return Err(Failure::OutputDivergence {
                config,
                oracle_out: oracle.output.clone(),
                oracle_exit: oracle.exit,
                sim_out: r.output,
                sim_exit: r.exit,
            });
        }
        let attribution = r.attribution.as_ref().expect("attribution was requested");
        if !attribution.matches(&r.stats) {
            return Err(Failure::AttributionMismatch { config });
        }
        if opts.cross_target {
            check_cross_target(sources, config, &copts, &mut cache, &r)?;
        }
    }

    if opts.incremental {
        check_incremental(sources)?;
    }
    if opts.trace_purity {
        check_trace_purity(sources)?;
    }
    if opts.separate {
        check_separate(sources)?;
    }
    if opts.daemon_protocol {
        check_daemon(sources)?;
    }
    Ok(())
}

/// The cross-target leg: the same program, same configuration, compiled
/// for the RV32 machine description through the same shared cache (so the
/// per-target fingerprint separation of [`ipra_driver`]'s phase-2 keys is
/// exercised), verified under the RV32 register convention, and run —
/// output stream, exit code and attribution consistency must match the
/// VPR build's. Cycle and memory-reference counts legitimately differ
/// (the conventions partition the register file differently), so only
/// the observable semantics are compared.
fn check_cross_target(
    sources: &[SourceFile],
    config: PaperConfig,
    copts: &CompileOptions,
    cache: &mut CompilationCache,
    vpr_result: &vpr::RunResult,
) -> Result<(), Failure> {
    let fail = |detail: String| Failure::CrossTargetDivergence { config, detail };
    let rv_opts = CompileOptions { target: vpr::target::TargetId::Rv32, ..copts.clone() };
    let program = match compile_configured(sources, config, &[], &rv_opts, cache) {
        Err(e) => return Err(fail(format!("rv32 compile failed: {e}"))),
        Ok(Err(e)) => return Err(fail(format!("rv32 training run trapped: {e}"))),
        Ok(Ok(p)) => p,
    };
    let report = verify_program(&program);
    if !report.is_clean() {
        return Err(fail(format!("rv32 verification failed:\n{report}")));
    }
    let sim_opts = vpr::SimOptions {
        attribute: true,
        max_steps: ORACLE_SIM_STEPS,
        ..vpr::SimOptions::default()
    };
    let r = match vpr::run_with(&program.exe, &sim_opts) {
        Err(e) => return Err(fail(format!("rv32 simulator trap: {e}"))),
        Ok(r) => r,
    };
    if r.output != vpr_result.output || r.exit != vpr_result.exit {
        return Err(fail(format!(
            "vpr exit {} out {:?} vs rv32 exit {} out {:?}",
            vpr_result.exit, vpr_result.output, r.exit, r.output
        )));
    }
    let attribution = r.attribution.as_ref().expect("attribution was requested");
    if !attribution.matches(&r.stats) {
        return Err(fail("rv32 attribution does not sum to run totals".into()));
    }
    Ok(())
}

/// Names the first observable on which the two engines disagreed, with
/// both values — compact enough for a corpus entry, precise enough to
/// start debugging from.
fn divergence_detail(
    primary: vpr::Engine,
    a: &Result<vpr::RunResult, vpr::SimError>,
    b: &Result<vpr::RunResult, vpr::SimError>,
) -> String {
    let (pn, on) = (primary.name(), primary.other().name());
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            let field = if ra.output != rb.output {
                format!("output {:?} vs {:?}", ra.output, rb.output)
            } else if ra.exit != rb.exit {
                format!("exit {} vs {}", ra.exit, rb.exit)
            } else if ra.stats != rb.stats {
                format!("stats {:?} vs {:?}", ra.stats, rb.stats)
            } else {
                "attribution differs".to_string()
            };
            format!("{pn} vs {on}: {field}")
        }
        (Ok(_), Err(e)) => format!("{pn} ran clean but {on} trapped: {e}"),
        (Err(e), Ok(_)) => format!("{pn} trapped but {on} ran clean: {e}"),
        (Err(ea), Err(eb)) => format!("different traps: {pn} {ea} vs {on} {eb}"),
    }
}

/// The linked executable, serialized — the bit-identity currency for the
/// build-level scenarios.
fn exe_bytes(program: &ipra_driver::CompiledProgram) -> String {
    serde_json::to_string(&program.exe).expect("serialize")
}

/// Edit → incremental rebuild → revert through one cache; every leg must
/// be bit-identical to a cold build of the same sources. This is the
/// paper's §3 recompilation story as a falsifiable property.
fn check_incremental(sources: &[SourceFile]) -> Result<(), Failure> {
    let config = BUILD_SCENARIO_CONFIG;
    let opts = CompileOptions::paper(config);
    let fail = |detail: &str| Failure::IncrementalDivergence { config, detail: detail.into() };
    let compile_err =
        |e: ipra_driver::DriverError| Failure::Compile { config, detail: e.to_string() };

    let mut cache = CompilationCache::new();
    let cold0 =
        ipra_driver::compile_incremental(sources, &opts, &mut cache).map_err(compile_err)?;

    // Append an (unused, uncalled) procedure to module 0: its summary
    // changes, so the analyzer reruns and any module whose database slice
    // moved must be recompiled.
    let mut edited = sources.to_vec();
    edited[0].text.push_str("\nint zz_edit_probe(int p0) { return p0 + 1; }\n");
    let warm_edited =
        ipra_driver::compile_incremental(&edited, &opts, &mut cache).map_err(compile_err)?;
    let cold_edited = compile(&edited, &opts).map_err(compile_err)?;
    if exe_bytes(&warm_edited) != exe_bytes(&cold_edited) {
        return Err(fail("after edit, warm != cold"));
    }

    // Revert: the incremental rebuild must land exactly back on the
    // original cold build.
    let warm_reverted =
        ipra_driver::compile_incremental(sources, &opts, &mut cache).map_err(compile_err)?;
    if exe_bytes(&warm_reverted) != exe_bytes(&cold0) {
        return Err(fail("after revert, warm != original cold"));
    }
    Ok(())
}

/// Decision tracing must be pure observation: same sources, same config,
/// trace on vs off, bit-identical executables.
fn check_trace_purity(sources: &[SourceFile]) -> Result<(), Failure> {
    let config = BUILD_SCENARIO_CONFIG;
    let compile_err =
        |e: ipra_driver::DriverError| Failure::Compile { config, detail: e.to_string() };
    let plain = compile(sources, &CompileOptions::paper(config)).map_err(compile_err)?;
    let traced_opts = CompileOptions { trace: true, ..CompileOptions::paper(config) };
    let traced = compile(sources, &traced_opts).map_err(compile_err)?;
    if exe_bytes(&plain) != exe_bytes(&traced) {
        return Err(Failure::TraceImpurity { config });
    }
    Ok(())
}

/// Artifact-staged separate compilation must be invisible: building the
/// same sources through on-disk `.csum`/`.cdir`/`.vo`/`.vx` artifacts
/// (every stage re-reading its inputs from disk) must land on an
/// executable bit-identical to the in-memory pipeline's. The staging
/// directory is named by a content hash of the sources — deterministic
/// across `--jobs`, so concurrent workers on the same program stage
/// identical bytes — and is removed on success but preserved (and named
/// in the failure) on divergence, giving the debugging session the exact
/// artifacts that went wrong. The reducer re-runs this leg on every
/// shrink candidate, so the preserved directory always holds the
/// artifacts of the *minimal* reproducer.
fn check_separate(sources: &[SourceFile]) -> Result<(), Failure> {
    let config = BUILD_SCENARIO_CONFIG;
    let compile_err =
        |e: ipra_driver::DriverError| Failure::Compile { config, detail: e.to_string() };
    let in_memory = compile(sources, &CompileOptions::paper(config)).map_err(compile_err)?;

    let text = crate::corpus::join_sources(sources);
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        fp = (fp ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    let dir = std::env::temp_dir().join(format!("ipra-separate-{fp:016x}"));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cache = CompilationCache::new();
    let staged = match ipra_driver::separate::artifact_build_configured(
        sources,
        config,
        &[],
        &dir,
        &mut cache,
    ) {
        Err(e) => {
            return Err(Failure::SeparateDivergence {
                config,
                detail: format!("artifact build failed: {e} (artifacts kept in {})", dir.display()),
            })
        }
        Ok(Err(e)) => {
            return Err(Failure::SeparateDivergence {
                config,
                detail: format!(
                    "training run trapped in artifact build: {e} (artifacts kept in {})",
                    dir.display()
                ),
            })
        }
        Ok(Ok(b)) => b,
    };
    let staged_bytes = serde_json::to_string(&staged.exe).expect("serialize");
    if staged_bytes != exe_bytes(&in_memory) {
        return Err(Failure::SeparateDivergence {
            config,
            detail: format!(
                "staged .vx != in-memory executable (artifacts kept in {})",
                dir.display()
            ),
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// The daemon wire-protocol leg: synthesize a build request from the
/// generated program (config, flags and training input all derived from
/// the request fingerprint, so the leg is deterministic per seed but
/// walks the space across iterations), demand a lossless encode → decode
/// round-trip with a stable fingerprint, do the same for a response
/// carrying the program text, and then prove that flipping any sampled
/// single byte of the request frame yields a typed [`ProtocolError`] —
/// the corruption-rejection contract the shared-cache daemon leans on.
fn check_daemon(sources: &[SourceFile]) -> Result<(), Failure> {
    use ipra_daemon::protocol::{self, BuildRequest, BuildResponse, Request, Response, WireSource};

    let fail = |detail: String| Failure::DaemonProtocol { detail };
    let wire: Vec<WireSource> =
        sources.iter().map(|s| WireSource { name: s.name.clone(), text: s.text.clone() }).collect();
    let base = BuildRequest {
        config: "L2".to_string(),
        optimize: true,
        sources: wire,
        training_input: Vec::new(),
    };
    let salt = base.fingerprint();
    let configs = ["L2", "A", "B", "C", "D", "E", "F", "P"];
    let request = BuildRequest {
        config: configs[(salt % configs.len() as u64) as usize].to_string(),
        optimize: salt & 8 == 0,
        training_input: vec![(salt >> 4) as i64 & 0xff],
        ..base
    };
    let fp = request.fingerprint();
    let req = Request::Build(request);
    let frame = protocol::encode_request(&req);
    match protocol::decode_request(&frame) {
        Err(e) => return Err(fail(format!("freshly encoded request rejected: {e}"))),
        Ok(decoded) => {
            if decoded != req {
                return Err(fail("request round-trip changed the payload".to_string()));
            }
            if let Request::Build(rt) = &decoded {
                if rt.fingerprint() != fp {
                    return Err(fail(format!(
                        "fingerprint unstable across round-trip: {fp:#x} != {:#x}",
                        rt.fingerprint()
                    )));
                }
            }
        }
    }

    // A response carrying the generated program text as its payload: the
    // reply channel must round-trip arbitrary artifact bytes too.
    let resp = Response::Built(BuildResponse {
        vx: crate::corpus::join_sources(sources),
        fingerprint: fp,
        coalesced: salt & 16 == 0,
        recompiled: sources.iter().map(|s| s.name.clone()).collect(),
    });
    match protocol::decode_response(&protocol::encode_response(&resp)) {
        Err(e) => return Err(fail(format!("freshly encoded response rejected: {e}"))),
        Ok(decoded) if decoded != resp => {
            return Err(fail("response round-trip changed the payload".to_string()))
        }
        Ok(_) => {}
    }

    // Single-byte corruption: every flipped byte lands in the header, the
    // payload, or the trailing checksum, and each region is guarded — so
    // a typed error is mandatory and a clean decode is an oracle failure.
    // Sample positions pseudo-randomly (splitmix-style walk from the
    // fingerprint) plus the frame's edges.
    let mut probe = salt | 1;
    let mut positions = vec![0, frame.len() / 2, frame.len() - 1];
    for _ in 0..8 {
        probe = crate::mix(probe, 0x6461656d6f6e);
        positions.push((probe % frame.len() as u64) as usize);
    }
    for pos in positions {
        let mut bad = frame.clone();
        bad[pos] ^= 0x5a;
        if let Ok(decoded) = protocol::decode_request(&bad) {
            return Err(fail(format!(
                "corrupted byte {pos} of {} decoded cleanly as {decoded:?}",
                frame.len()
            )));
        }
    }
    Ok(())
}

/// On a divergence, rebuild the failing configuration with decision
/// tracing on, run both the L2 baseline and the failing binary with exact
/// per-procedure attribution, and dump everything a debugging session
/// needs (sources, database, analyzer trace, both attributions) to a temp
/// directory whose path goes into the report. Shared by the soak test,
/// the fuzzer and the reducer — one implementation, one format.
pub fn dump_divergence(sources: &[SourceFile], config: PaperConfig, label: &str) -> PathBuf {
    let slug: String = label.chars().map(|c| if c.is_alphanumeric() { c } else { '-' }).collect();
    let dir = std::env::temp_dir().join(format!("ipra-divergence-{slug}-{config}"));
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join("sources.cmin"), crate::corpus::join_sources(sources));
    let opts = CompileOptions { trace: true, ..CompileOptions::default() };
    let mut cache = CompilationCache::new();
    for cfg in [config, PaperConfig::L2] {
        let Ok(Ok(program)) = compile_configured(sources, cfg, &[], &opts, &mut cache) else {
            continue;
        };
        if cfg == config {
            let _ = std::fs::write(dir.join("database.json"), program.database.to_json());
            if let Some(t) = &program.trace {
                let _ = std::fs::write(dir.join("trace.json"), t.to_json());
            }
        }
        if let Ok(r) = run_program_attributed(&program, &[]) {
            if let Some(a) = &r.attribution {
                let json = serde_json::to_string_pretty(a).unwrap_or_default();
                let _ = std::fs::write(dir.join(format!("attribution-{cfg}.json")), json);
            }
        }
    }
    dir
}
