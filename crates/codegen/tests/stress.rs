//! Code-generation stress tests: adversarial combinations of register
//! pressure, argument counts, directives and indirection, each verified by
//! running the generated machine code on the simulator against values
//! computed in Rust.

use cmin_frontend::{analyze as sema, parse_module};
use cmin_ir::{lower_module, optimize_module};
use ipra_core::{ProcDirectives, ProgramDatabase, Promotion};
use vpr::program::link;
use vpr::regs::{Reg, RegSet};
use vpr::sim::{run_with, SimOptions};

fn run_src(src: &str, db: &ProgramDatabase, input: &[i64]) -> vpr::sim::RunResult {
    let m = parse_module("m", src).unwrap();
    let info = sema(&m).unwrap();
    let mut ir = lower_module(&m, &info);
    optimize_module(&mut ir);
    let obj = cmin_codegen::compile_module(&ir, db);
    let exe = link(&[obj]).unwrap();
    run_with(&exe, &SimOptions { input: input.to_vec(), ..SimOptions::default() })
        .unwrap_or_else(|e| panic!("trap: {e}"))
}

#[test]
fn ten_arguments_with_pressure_on_both_sides() {
    // 10 arguments (6 on the stack), with enough live values around the
    // call to force callee-saves usage and spills in the caller.
    let src = "
        int digest(int a, int b, int c, int d, int e, int f, int g, int h, int i, int j) {
            return a + b * 2 + c * 3 + d * 5 + e * 7 + f * 11 + g * 13 + h * 17 + i * 19 + j * 23;
        }
        int main() {
            int k0 = in(); int k1 = in(); int k2 = in(); int k3 = in(); int k4 = in();
            int k5 = k0 * k1; int k6 = k1 * k2; int k7 = k2 * k3; int k8 = k3 * k4;
            int r = digest(k0, k1, k2, k3, k4, k5, k6, k7, k8, k0 + k4);
            // All inputs still live after the call:
            return r + k0 + k1 + k2 + k3 + k4 + k5 + k6 + k7 + k8;
        }";
    let ks = [3i64, 5, 7, 11, 13];
    let (k0, k1, k2, k3, k4) = (ks[0], ks[1], ks[2], ks[3], ks[4]);
    let (k5, k6, k7, k8) = (k0 * k1, k1 * k2, k2 * k3, k3 * k4);
    let digest = k0
        + k1 * 2
        + k2 * 3
        + k3 * 5
        + k4 * 7
        + k5 * 11
        + k6 * 13
        + k7 * 17
        + k8 * 19
        + (k0 + k4) * 23;
    let expect = digest + k0 + k1 + k2 + k3 + k4 + k5 + k6 + k7 + k8;
    let r = run_src(src, &ProgramDatabase::new(), &ks);
    assert_eq!(r.exit, expect);
}

#[test]
fn nested_indirect_calls_with_spilled_pointers() {
    let src = "
        int inc(int x) { return x + 1; }
        int dbl(int x) { return x * 2; }
        int sq(int x) { return x * x; }
        int chain(int f, int g, int h, int x) { return f(g(h(x))); }
        int main() {
            int a = chain(&inc, &dbl, &sq, 3);   // inc(dbl(sq(3))) = 19
            int b = chain(&sq, &inc, &dbl, 4);   // sq(inc(dbl(4))) = 81
            out(a);
            out(b);
            return a + b;
        }";
    let r = run_src(src, &ProgramDatabase::new(), &[]);
    assert_eq!(r.output, vec![19, 81]);
    assert_eq!(r.exit, 100);
}

#[test]
fn deep_expression_trees_exhaust_registers() {
    // A single expression with ~40 live intermediate values.
    let mut expr = String::from("x1");
    for i in 2..=40 {
        expr = format!("({expr} + x{i} * {i})");
    }
    let mut src = String::from("int main() {\n");
    for i in 1..=40 {
        src.push_str(&format!("int x{i} = {i} * 3 - 1;\n"));
    }
    src.push_str(&format!("return {expr};\n}}"));
    let expect: i64 = {
        let x = |i: i64| i * 3 - 1;
        let mut acc = x(1);
        for i in 2..=40 {
            acc += x(i) * i;
        }
        acc
    };
    let r = run_src(&src, &ProgramDatabase::new(), &[]);
    assert_eq!(r.exit, expect);
}

#[test]
fn every_directive_class_at_once() {
    // One procedure carrying: a promoted web register (entry), FREE
    // registers, a trimmed CALLEE set, an MSPILL set (cluster root), and a
    // restricted caller claim — all simultaneously.
    let src = "
        int acc;
        int helper(int x) { return x * 3 + 1; }
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + helper(i);
                s = s + acc % 97;
            }
            return s;
        }
        int main() {
            acc = 0;
            out(work(50));
            out(acc);
            return 0;
        }";
    // Baseline.
    let expect = run_src(src, &ProgramDatabase::new(), &[]);

    let mut db = ProgramDatabase::new();
    let mut work = ProcDirectives::standard("work");
    work.promotions.push(Promotion {
        sym: "acc".into(),
        reg: Reg::new(3),
        is_entry: true,
        store_at_exit: true,
    });
    work.is_cluster_root = true;
    work.usage.mspill = [Reg::new(10), Reg::new(11)].into_iter().collect();
    work.usage.free = [Reg::new(4)].into_iter().collect();
    work.usage.callee = RegSet::callee_saves()
        - work.usage.mspill
        - work.usage.free
        - [Reg::new(3)].into_iter().collect::<RegSet>();
    // Restrict the claim to two registers.
    work.claimed_caller = [Reg::new(19), Reg::new(20)].into_iter().collect();
    db.insert(work);

    let mut helper = ProcDirectives::standard("helper");
    helper.usage.free = [Reg::new(10)].into_iter().collect();
    helper.usage.callee = RegSet::callee_saves() - helper.usage.free;
    helper.safe_caller_across = [Reg::new(21), Reg::new(22), Reg::new(29)].into_iter().collect();
    db.insert(helper);

    let got = run_src(src, &db, &[]);
    assert_eq!(got.output, expect.output);
    assert_eq!(got.exit, expect.exit);
}

#[test]
fn zero_claim_forces_preserved_registers_yet_stays_correct() {
    // claimed_caller = ∅: every scratch value must go to FREE/CALLEE or
    // spill; behavior must not change.
    let src = "
        int f(int a, int b, int c) { return a * b + c; }
        int main() {
            int s = 0;
            for (int i = 0; i < 20; i = i + 1) { s = s + f(i, i + 1, i + 2); }
            return s;
        }";
    let expect = run_src(src, &ProgramDatabase::new(), &[]);
    let mut db = ProgramDatabase::new();
    for name in ["main", "f"] {
        let mut d = ProcDirectives::standard(name);
        d.claimed_caller = RegSet::new();
        db.insert(d);
    }
    let got = run_src(src, &db, &[]);
    assert_eq!(got.exit, expect.exit);
}

#[test]
fn recursion_with_promoted_global() {
    // A recursive procedure inside a web: the register must survive the
    // recursion via the web-entry save/restore at the entry node.
    let src = "
        int depth_max;
        int probe(int d) {
            if (d > depth_max) { depth_max = d; }
            if (d >= 12) { return d; }
            int left = probe(d + 1);
            int right = probe(d + 2);
            if (left > right) { return left; }
            return right;
        }
        int main() {
            depth_max = 0;
            out(probe(0));
            out(depth_max);
            return depth_max;
        }";
    let expect = run_src(src, &ProgramDatabase::new(), &[]);

    // Promote depth_max over {main (entry), probe}.
    let mut db = ProgramDatabase::new();
    let mut main_d = ProcDirectives::standard("main");
    main_d.promotions.push(Promotion {
        sym: "depth_max".into(),
        reg: Reg::new(5),
        is_entry: true,
        store_at_exit: true,
    });
    main_d.usage.callee.remove(Reg::new(5));
    db.insert(main_d);
    let mut probe_d = ProcDirectives::standard("probe");
    probe_d.promotions.push(Promotion {
        sym: "depth_max".into(),
        reg: Reg::new(5),
        is_entry: false,
        store_at_exit: false,
    });
    probe_d.usage.callee.remove(Reg::new(5));
    db.insert(probe_d);

    let got = run_src(src, &db, &[]);
    assert_eq!(got.output, expect.output);
    assert_eq!(got.exit, expect.exit);
    // And the global's memory traffic inside the recursion is gone.
    assert!(got.stats.singleton_refs() < expect.stats.singleton_refs());
}
