//! IR rewriting for promoted globals.
//!
//! For every global the analyzer promoted in this procedure, accesses are
//! rewritten against a fresh *pinned temp* that the allocator will place in
//! the web's dedicated register:
//!
//! * `dst ← @g` becomes `dst ← tw`,
//! * `@g ← src` becomes `tw ← src`.
//!
//! A targeted cleanup then (1) forward-propagates reads of the pinned temp
//! so arithmetic consumes the web register directly, and (2) deletes the
//! now-dead read copies. This is the paper's §5 observation that promotion
//! "can enable additional intraprocedural optimizations such as register
//! copy elimination" — without it, promoted code trades each memory access
//! for a register copy and the cycle win evaporates.
//!
//! Writes to a pinned temp are *stores to the global* as far as the rest of
//! the program is concerned, so the cleanup never removes or reorders them;
//! the general optimizer must not run after this rewrite.

use cmin_ir::cfg::Cfg;
use cmin_ir::ir::{Function, Inst, Operand, Temp};
use cmin_ir::liveness::Liveness;
use std::collections::HashMap;
use vpr::regs::Reg;

/// Rewrites `f` for the given promotions (`sym → dedicated register`).
/// Returns the pin map for the allocator (`temp → register`).
pub fn rewrite_promotions(f: &mut Function, promotions: &[(String, Reg)]) -> HashMap<Temp, Reg> {
    if promotions.is_empty() {
        return HashMap::new();
    }
    let mut by_sym: HashMap<&str, Temp> = HashMap::new();
    let mut pins: HashMap<Temp, Reg> = HashMap::new();
    for (sym, reg) in promotions {
        let tw = f.new_temp();
        by_sym.insert(sym.as_str(), tw);
        pins.insert(tw, *reg);
    }

    // 1. Replace promoted global accesses with pinned-temp copies.
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            match inst {
                Inst::LoadGlobal { dst, sym } => {
                    if let Some(&tw) = by_sym.get(sym.as_str()) {
                        *inst = Inst::Copy { dst: *dst, src: Operand::Temp(tw) };
                    }
                }
                Inst::StoreGlobal { sym, src } => {
                    if let Some(&tw) = by_sym.get(sym.as_str()) {
                        *inst = Inst::Copy { dst: tw, src: *src };
                    }
                }
                _ => {}
            }
        }
    }

    // 2. Forward-propagate pinned reads within each block: a use of `t`
    //    where `t = tw` and neither has been redefined since reads `tw`
    //    directly.
    for block in &mut f.blocks {
        let mut equals: HashMap<Temp, Temp> = HashMap::new(); // t -> tw
        for inst in &mut block.insts {
            inst.map_uses(|o| match o {
                Operand::Temp(t) => match equals.get(&t) {
                    Some(&tw) => Operand::Temp(tw),
                    None => o,
                },
                c => c,
            });
            if matches!(inst, Inst::Call { .. }) {
                // A call may execute other web members, which read and
                // write the promoted globals through their registers:
                // every alias is stale afterwards.
                equals.clear();
            }
            if let Some(d) = inst.def() {
                equals.remove(&d);
                if pins.contains_key(&d) {
                    // The pinned temp was redefined (a store): all aliases
                    // to it are stale.
                    equals.retain(|_, v| *v != d);
                } else if let Inst::Copy { dst, src: Operand::Temp(s) } = inst {
                    if pins.contains_key(s) {
                        equals.insert(*dst, *s);
                    }
                }
            }
        }
        block.term.map_uses(|o| match o {
            Operand::Temp(t) => match equals.get(&t) {
                Some(&tw) => Operand::Temp(tw),
                None => o,
            },
            c => c,
        });
    }

    // 3. Drop read copies whose destination died: `t ← tw` with `t` dead.
    //    Writes (`tw ← x`) are global stores and always stay.
    let cfg = Cfg::new(f);
    let liveness = Liveness::compute(f, &cfg);
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut live = liveness.live_out(b).clone();
        f.block(b).term.for_each_use(|o| {
            if let Some(t) = o.as_temp() {
                live.insert(t);
            }
        });
        let block = &mut f.blocks[b.index()];
        let mut kept = Vec::with_capacity(block.insts.len());
        for inst in block.insts.drain(..).rev() {
            if let Inst::Copy { dst, src: Operand::Temp(s) } = &inst {
                if pins.contains_key(s) && !pins.contains_key(dst) && !live.contains(*dst) {
                    continue; // dead read of the web register
                }
            }
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            inst.for_each_use(|o| {
                if let Some(t) = o.as_temp() {
                    live.insert(t);
                }
            });
            kept.push(inst);
        }
        kept.reverse();
        block.insts = kept;
    }
    pins
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmin_frontend::{analyze as sema, parse_module};
    use cmin_ir::{lower_module, optimize_module};

    fn func(src: &str, name: &str) -> Function {
        let m = parse_module("m", src).unwrap();
        let info = sema(&m).unwrap();
        let mut ir = lower_module(&m, &info);
        optimize_module(&mut ir);
        ir.function(name).unwrap().clone()
    }

    fn count_global_ops(f: &Function, sym: &str) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| match i {
                Inst::LoadGlobal { sym: s, .. } | Inst::StoreGlobal { sym: s, .. } => s == sym,
                _ => false,
            })
            .count()
    }

    #[test]
    fn promoted_accesses_disappear() {
        let mut f = func(
            "int g; int main() { for (int i = 0; i < 9; i = i + 1) { g = g + i; } return g; }",
            "main",
        );
        assert!(count_global_ops(&f, "g") > 0);
        let pins = rewrite_promotions(&mut f, &[("g".to_string(), Reg::new(3))]);
        assert_eq!(pins.len(), 1);
        assert_eq!(count_global_ops(&f, "g"), 0);
        assert_eq!(*pins.values().next().unwrap(), Reg::new(3));
    }

    #[test]
    fn read_copies_are_eliminated() {
        let mut f = func("int g; int main() { int a = g; int b = g; return a + b; }", "main");
        let pins = rewrite_promotions(&mut f, &[("g".to_string(), Reg::new(4))]);
        let tw = *pins.keys().next().unwrap();
        // No surviving copies out of tw; the add reads tw directly.
        let copies_from_tw = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::Copy { src: Operand::Temp(s), .. } if *s == tw))
            .count();
        assert_eq!(copies_from_tw, 0, "{f}");
    }

    #[test]
    fn stores_to_pinned_temp_survive() {
        // The final store to g must never be removed even though nothing in
        // this function reads it afterwards: callers observe the register.
        let mut f = func("int g; int set() { g = 42; return 0; }", "set");
        let pins = rewrite_promotions(&mut f, &[("g".to_string(), Reg::new(3))]);
        let tw = *pins.keys().next().unwrap();
        let writes =
            f.blocks.iter().flat_map(|b| b.insts.iter()).filter(|i| i.def() == Some(tw)).count();
        assert_eq!(writes, 1, "{f}");
    }

    #[test]
    fn unpromoted_globals_untouched() {
        let mut f = func("int g; int h; int main() { g = h; return g + h; }", "main");
        rewrite_promotions(&mut f, &[("g".to_string(), Reg::new(3))]);
        assert_eq!(count_global_ops(&f, "g"), 0);
        assert!(count_global_ops(&f, "h") > 0);
    }

    #[test]
    fn propagation_stops_at_store() {
        // a reads old g, then g is stored; a's value must not read the new
        // register content.
        let mut f = func("int g; int main() { int a = g; g = 7; return a; }", "main");
        let pins = rewrite_promotions(&mut f, &[("g".to_string(), Reg::new(3))]);
        let tw = *pins.keys().next().unwrap();
        // The return must NOT be `ret tw` (that would read 7).
        for b in &f.blocks {
            if let cmin_ir::ir::Term::Ret(Some(Operand::Temp(t))) = b.term {
                assert_ne!(t, tw, "stale propagation across a store: {f}");
            }
        }
    }

    #[test]
    fn propagation_stops_at_calls() {
        // `ch` snapshots g before the call; the callee mutates g, so the
        // comparison after the call must read the snapshot, not the pinned
        // register.
        let mut f = func(
            "int g; int bump() { g = g + 1; return 0; }
             int check() { int ch = g; bump(); if (ch == 43) { out(1); } return ch; }",
            "check",
        );
        let pins = rewrite_promotions(&mut f, &[("g".to_string(), Reg::new(3))]);
        let tw = *pins.keys().next().unwrap();
        // After the call, no instruction or terminator may read tw where
        // the source read `ch`: the only legal tw reads are *before* the
        // call (the snapshot copy itself).
        let mut seen_call = false;
        for b in &f.blocks {
            for i in &b.insts {
                if matches!(i, Inst::Call { .. }) {
                    seen_call = true;
                }
                if seen_call && !matches!(i, Inst::Call { .. }) {
                    let mut reads_tw = false;
                    i.for_each_use(|o| reads_tw |= o == Operand::Temp(tw));
                    assert!(!reads_tw, "stale read of web register after call: {i} in {f}");
                }
            }
            if seen_call {
                let mut reads_tw = false;
                b.term.for_each_use(|o| reads_tw |= o == Operand::Temp(tw));
                assert!(!reads_tw, "stale read of web register in terminator: {f}");
            }
        }
        assert!(seen_call);
    }

    #[test]
    fn empty_promotions_do_nothing() {
        let mut f = func("int g; int main() { return g; }", "main");
        let before = f.clone();
        let pins = rewrite_promotions(&mut f, &[]);
        assert!(pins.is_empty());
        assert_eq!(f, before);
    }
}
