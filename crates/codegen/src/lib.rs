//! # cmin-codegen — the compiler second phase
//!
//! Translates optimized `cmin` IR into VPR machine code, consulting the
//! program database produced by the analyzer (paper §5). The two pieces:
//!
//! * [`alloc`] — priority-based intraprocedural register allocation over
//!   IR temps, drawing from the analyzer's `FREE`/`CALLER`/`CALLEE`/`MSPILL`
//!   register classes;
//! * [`emit`] — instruction selection, frames, calling convention,
//!   promoted-global register moves, web-entry load/store insertion, and
//!   the prologue/epilogue spill code the directives prescribe.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cmin_frontend::{analyze, parse_module};
//! use cmin_ir::{lower_module, optimize_module};
//! use cmin_codegen::compile_module;
//! use ipra_core::ProgramDatabase;
//!
//! let m = parse_module("m", "int main() { return 6 * 7; }")?;
//! let info = analyze(&m)?;
//! let mut ir = lower_module(&m, &info);
//! optimize_module(&mut ir);
//! let object = compile_module(&ir, &ProgramDatabase::new());
//! let exe = vpr::link(&[object])?;
//! assert_eq!(vpr::run(&exe)?.exit, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod emit;
pub mod promote;

pub use alloc::{allocate, Allocation, Loc};
pub use emit::{compile_function, compile_module, compile_module_for};
