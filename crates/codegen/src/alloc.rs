//! Intraprocedural register allocation (compiler second phase, paper §5).
//!
//! A priority-based allocator in the Chow–Hennessy tradition, operating on
//! IR temps with an interference graph built from liveness. What makes it
//! the *paper's* second phase is where the registers come from: the
//! analyzer's per-procedure directives.
//!
//! * Values **not live across calls** draw from `CALLER ∪ MSPILL` (a cluster
//!   root's must-spill registers behave like caller-saves locally), then
//!   from the preserved classes if the scratch pool runs dry.
//! * Values **live across calls** draw from `FREE` first — registers an
//!   ancestor cluster root already spills, so they cost nothing here — and
//!   only then from `CALLEE`, whose members must be saved in the prologue
//!   and restored in the epilogue.
//! * Registers dedicated to promoted globals never appear in any pool.
//!
//! Temps that get no register are assigned frame spill slots; the emitter
//! materializes them through the two reserved scratch registers.

use cmin_ir::cfg::{depth_weight, loop_depths, Cfg};
use cmin_ir::ir::{Callee, Function, Inst, Temp};
use cmin_ir::liveness::{live_across_calls, Liveness, TempSet};
use ipra_core::caller_prealloc::claim_pool_set;
use ipra_core::regsets::RegUsage;
use std::collections::HashMap;
use vpr::regs::{Reg, RegSet};
use vpr::target::TargetDesc;

/// The caller-saves preallocation contract for one procedure (paper §7.6.2
/// extension): the claim this procedure must stay within, plus the per-
/// callee *safe* sets the analyzer computed.
pub struct CallerPrealloc<'a> {
    /// Claim-pool registers this procedure may use at all.
    pub claimed: RegSet,
    /// `safe(callee)`: claim-pool registers untouched by any call to
    /// `callee`, transitively.
    pub safe_lookup: &'a dyn Fn(&str) -> RegSet,
}

impl CallerPrealloc<'_> {
    /// The extension-off contract: full claim, nothing safe across calls.
    pub fn standard() -> CallerPrealloc<'static> {
        CallerPrealloc { claimed: claim_pool_set(), safe_lookup: &|_| RegSet::new() }
    }

    /// [`CallerPrealloc::standard`] for an explicit target description.
    pub fn standard_for(desc: &TargetDesc) -> CallerPrealloc<'static> {
        CallerPrealloc { claimed: desc.claim_pool_set(), safe_lookup: &|_| RegSet::new() }
    }
}

/// Per-temp caller-saves clobber set: for each temp, the claim-pool
/// registers clobbered by some call the temp is live across. Temps that
/// cross an indirect call (or a call to a procedure with an empty safe
/// set) end up with the full pool.
fn cross_clobbers(
    f: &Function,
    liveness: &Liveness,
    safe_lookup: &dyn Fn(&str) -> RegSet,
    pool: RegSet,
) -> Vec<RegSet> {
    let mut clobber: Vec<RegSet> = vec![RegSet::new(); f.temp_count as usize];
    for b in f.block_ids() {
        let mut live = liveness.live_out(b).clone();
        let block = f.block(b);
        block.term.for_each_use(|o| {
            if let Some(t) = o.as_temp() {
                live.insert(t);
            }
        });
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.def() {
                live.remove(d);
            }
            if let Inst::Call { callee, .. } = inst {
                let cl = match callee {
                    Callee::Direct(name) => pool - safe_lookup(name),
                    Callee::Indirect(_) => pool,
                };
                for t in live.iter() {
                    clobber[t.0 as usize] |= cl;
                }
            }
            inst.for_each_use(|o| {
                if let Some(t) = o.as_temp() {
                    live.insert(t);
                }
            });
        }
    }
    clobber
}

/// Where a temp lives at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A machine register.
    Reg(Reg),
    /// A frame spill slot (word offset within the spill area).
    Slot(u32),
}

/// The allocator's result for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location of every temp that is ever live.
    pub locs: HashMap<Temp, Loc>,
    /// Callee-saves registers that must be saved/restored by this
    /// procedure (used registers from the `CALLEE` class).
    pub used_callee: RegSet,
    /// Number of spill slots needed.
    pub spill_slots: u32,
}

impl Allocation {
    /// The location of `t`, if it was allocated.
    pub fn loc(&self, t: Temp) -> Option<Loc> {
        self.locs.get(&t).copied()
    }
}

/// Registers reserved for the emitter's operand materialization (VPR).
pub fn scratch_regs() -> (Reg, Reg) {
    scratch_regs_for(&vpr::target::VPR)
}

/// Registers `desc` reserves for the emitter's operand materialization.
pub fn scratch_regs_for(desc: &TargetDesc) -> (Reg, Reg) {
    (desc.scratch1, desc.scratch2)
}

/// Allocates registers for `f` under the analyzer's `usage` directives.
/// `forbidden` contains registers dedicated to promoted globals in this
/// procedure (they hold the global, nothing else); `pins` maps the web
/// temps produced by [`crate::promote::rewrite_promotions`] to those
/// registers.
pub fn allocate(
    f: &Function,
    usage: &RegUsage,
    forbidden: RegSet,
    pins: &HashMap<Temp, Reg>,
) -> Allocation {
    allocate_with(f, usage, forbidden, pins, &CallerPrealloc::standard())
}

/// [`allocate`] with the §7.6.2 caller-saves preallocation contract: the
/// procedure's caller-saves scratch stays within `prealloc.claimed`, and
/// call-crossing values may additionally live in claimed registers that
/// every crossed call leaves safe.
pub fn allocate_with(
    f: &Function,
    usage: &RegUsage,
    forbidden: RegSet,
    pins: &HashMap<Temp, Reg>,
    prealloc: &CallerPrealloc<'_>,
) -> Allocation {
    allocate_for(f, usage, forbidden, pins, prealloc, &vpr::target::VPR)
}

/// [`allocate_with`] against an explicit target description: scratch
/// registers, the argument/return roles and the claim pool all come from
/// `desc` instead of the VPR convention.
pub fn allocate_for(
    f: &Function,
    usage: &RegUsage,
    forbidden: RegSet,
    pins: &HashMap<Temp, Reg>,
    prealloc: &CallerPrealloc<'_>,
    desc: &TargetDesc,
) -> Allocation {
    let cfg = Cfg::new(f);
    let liveness = Liveness::compute(f, &cfg);
    let crossing = live_across_calls(f, &liveness);
    let idom = cmin_ir::cfg::dominators(f, &cfg);
    let depths = loop_depths(f, &cfg, &idom);

    let n = f.temp_count as usize;
    // Interference graph and use-weight priorities.
    let mut interferes: Vec<TempSet> = (0..n).map(|_| TempSet::new(f.temp_count)).collect();
    let mut weight: Vec<u64> = vec![0; n];
    let mut ever_live: Vec<bool> = vec![false; n];

    let add_edge = |a: Temp, b: Temp, graph: &mut Vec<TempSet>| {
        if a != b {
            graph[a.0 as usize].insert(b);
            graph[b.0 as usize].insert(a);
        }
    };

    for b in f.block_ids() {
        let w = depth_weight(depths.get(b.index()).copied().unwrap_or(0));
        let mut live = liveness.live_out(b).clone();
        for t in live.iter() {
            ever_live[t.0 as usize] = true;
        }
        let block = f.block(b);
        block.term.for_each_use(|o| {
            if let Some(t) = o.as_temp() {
                live.insert(t);
                weight[t.0 as usize] += w;
                ever_live[t.0 as usize] = true;
            }
        });
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.def() {
                ever_live[d.0 as usize] = true;
                weight[d.0 as usize] += w;
                for l in live.iter() {
                    add_edge(d, l, &mut interferes);
                }
                live.remove(d);
            }
            inst.for_each_use(|o| {
                if let Some(t) = o.as_temp() {
                    live.insert(t);
                    weight[t.0 as usize] += w;
                    ever_live[t.0 as usize] = true;
                }
            });
        }
    }
    // Parameters are all defined simultaneously at entry.
    let entry_live = liveness.live_in(f.entry);
    for (i, &p) in f.params.iter().enumerate() {
        ever_live[p.0 as usize] = true;
        for l in entry_live.iter() {
            add_edge(p, l, &mut interferes);
        }
        for &q in f.params.iter().skip(i + 1) {
            add_edge(p, q, &mut interferes);
        }
    }

    // Register pools, in allocation preference order.
    let (s1, s2) = scratch_regs_for(desc);
    let pool = desc.claim_pool_set();
    let mut reserved = forbidden;
    reserved.insert(s1);
    reserved.insert(s2);
    reserved.insert(desc.rv);
    for &a in desc.args {
        reserved.insert(a);
    }
    // Claim-pool registers beyond this procedure's claim are untouchable:
    // ancestors may be keeping values in them across calls to us.
    let unclaimed = pool - prealloc.claimed;
    let caller_pool: Vec<Reg> =
        ((usage.caller | usage.mspill) - reserved - unclaimed).iter().collect();
    let free_pool: Vec<Reg> = (usage.free - reserved).iter().collect();
    let callee_pool: Vec<Reg> = (usage.callee - reserved).iter().collect();
    let clobber = cross_clobbers(f, &liveness, prealloc.safe_lookup, pool);
    // Claimed caller registers usable by a crossing temp, per temp.
    let safe_base = (pool & prealloc.claimed & usage.caller) - reserved;

    // Priority order: hottest temps first. Pinned temps are pre-assigned.
    let mut order: Vec<Temp> = (0..f.temp_count)
        .map(Temp)
        .filter(|t| ever_live[t.0 as usize] && !pins.contains_key(t))
        .collect();
    order.sort_by(|a, b| weight[b.0 as usize].cmp(&weight[a.0 as usize]).then(a.0.cmp(&b.0)));

    let mut locs: HashMap<Temp, Loc> = HashMap::new();
    for (&t, &r) in pins {
        locs.insert(t, Loc::Reg(r));
    }
    let mut used_callee = RegSet::new();
    let mut spill_slots: u32 = 0;

    for &t in &order {
        let taken: RegSet = interferes[t.0 as usize]
            .iter()
            .filter_map(|u| match locs.get(&u) {
                Some(Loc::Reg(r)) => Some(*r),
                _ => None,
            })
            .collect();
        let safe_callers: Vec<Reg>;
        let pools: Vec<&[Reg]> = if crossing.contains(t) {
            // §7.6.2: claimed caller registers that every crossed call
            // leaves alone cost nothing — try them before the preserved
            // classes.
            safe_callers = (safe_base - clobber[t.0 as usize]).iter().collect();
            vec![&safe_callers, &free_pool, &callee_pool]
        } else {
            vec![&caller_pool, &free_pool, &callee_pool]
        };
        let choice =
            pools.into_iter().flat_map(|p| p.iter().copied()).find(|r| !taken.contains(*r));
        match choice {
            Some(r) => {
                if callee_pool.contains(&r) {
                    used_callee.insert(r);
                }
                locs.insert(t, Loc::Reg(r));
            }
            None => {
                locs.insert(t, Loc::Slot(spill_slots));
                spill_slots += 1;
            }
        }
    }

    Allocation { locs, used_callee, spill_slots }
}

/// Sanity check used by tests and debug builds: no two interfering temps
/// share a register, call-crossing temps avoid caller-class registers, and
/// nothing lands in a forbidden register.
pub fn validate(
    f: &Function,
    usage: &RegUsage,
    forbidden: RegSet,
    pins: &HashMap<Temp, Reg>,
    alloc: &Allocation,
) -> Result<(), String> {
    validate_with(f, usage, forbidden, pins, alloc, &CallerPrealloc::standard())
}

/// [`validate`] under a caller-saves preallocation contract.
pub fn validate_with(
    f: &Function,
    usage: &RegUsage,
    forbidden: RegSet,
    pins: &HashMap<Temp, Reg>,
    alloc: &Allocation,
    prealloc: &CallerPrealloc<'_>,
) -> Result<(), String> {
    validate_for(f, usage, forbidden, pins, alloc, prealloc, &vpr::target::VPR)
}

/// [`validate_with`] against an explicit target description.
pub fn validate_for(
    f: &Function,
    usage: &RegUsage,
    forbidden: RegSet,
    pins: &HashMap<Temp, Reg>,
    alloc: &Allocation,
    prealloc: &CallerPrealloc<'_>,
    desc: &TargetDesc,
) -> Result<(), String> {
    let cfg = Cfg::new(f);
    let liveness = Liveness::compute(f, &cfg);
    let crossing = live_across_calls(f, &liveness);
    let pool = desc.claim_pool_set();
    let clobber = cross_clobbers(f, &liveness, prealloc.safe_lookup, pool);

    let caller_class = (usage.caller | usage.mspill) - usage.free;
    #[allow(clippy::needless_range_loop)]
    for (&t, &loc) in &alloc.locs {
        if let Loc::Reg(r) = loc {
            if forbidden.contains(r) && pins.get(&t) != Some(&r) {
                return Err(format!("{t} allocated to forbidden register {r}"));
            }
            if crossing.contains(t) && caller_class.contains(r) {
                // Permitted only under the §7.6.2 contract.
                let allowed = pool.contains(r)
                    && prealloc.claimed.contains(r)
                    && !clobber[t.0 as usize].contains(r);
                if !allowed {
                    return Err(format!("call-crossing {t} allocated to caller-class {r}"));
                }
            }
            if pool.contains(r) && !prealloc.claimed.contains(r) {
                return Err(format!("{t} allocated to unclaimed caller register {r}"));
            }
        }
    }
    // Interference: recompute pairwise at each def point.
    for b in f.block_ids() {
        let mut live = liveness.live_out(b).clone();
        let block = f.block(b);
        block.term.for_each_use(|o| {
            if let Some(t) = o.as_temp() {
                live.insert(t);
            }
        });
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.def() {
                for l in live.iter() {
                    if l != d {
                        if let (Some(Loc::Reg(a)), Some(Loc::Reg(b2))) =
                            (alloc.loc(d), alloc.loc(l))
                        {
                            if a == b2 {
                                return Err(format!("interfering {d} and {l} share register {a}"));
                            }
                        }
                    }
                }
                live.remove(d);
            }
            inst.for_each_use(|o| {
                if let Some(t) = o.as_temp() {
                    live.insert(t);
                }
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmin_frontend::{analyze as sema, parse_module};
    use cmin_ir::{lower_module, optimize_module};

    fn func(src: &str, name: &str) -> Function {
        let m = parse_module("m", src).unwrap();
        let info = sema(&m).unwrap();
        let mut ir = lower_module(&m, &info);
        optimize_module(&mut ir);
        ir.function(name).unwrap().clone()
    }

    fn alloc_std(f: &Function) -> Allocation {
        let pins = HashMap::new();
        let a = allocate(f, &RegUsage::standard(), RegSet::new(), &pins);
        validate(f, &RegUsage::standard(), RegSet::new(), &pins, &a).unwrap();
        a
    }

    #[test]
    fn simple_function_uses_caller_saves_only() {
        let f = func("int f(int a, int b) { return a * b + a; }", "f");
        let a = alloc_std(&f);
        assert!(a.used_callee.is_empty());
        assert_eq!(a.spill_slots, 0);
        for loc in a.locs.values() {
            match loc {
                Loc::Reg(r) => assert!(r.is_caller_saves(), "unexpected {r}"),
                Loc::Slot(_) => panic!("unexpected spill"),
            }
        }
    }

    #[test]
    fn call_crossing_values_get_preserved_registers() {
        let f = func(
            "int g(int x) { return x; }
             int f(int a, int b) { int r = g(a); return r + b; }",
            "f",
        );
        let a = alloc_std(&f);
        // b crosses the call: must be in a callee-saves register.
        let b_loc = a.loc(f.params[1]).unwrap();
        match b_loc {
            Loc::Reg(r) => assert!(r.is_callee_saves(), "b in {r}"),
            Loc::Slot(_) => panic!("b spilled needlessly"),
        }
        assert!(!a.used_callee.is_empty());
    }

    #[test]
    fn free_registers_avoid_save_restore() {
        let f = func(
            "int g(int x) { return x; }
             int f(int a, int b) { int r = g(a); return r + b; }",
            "f",
        );
        // Analyzer gave this node two FREE registers.
        let mut usage = RegUsage::standard();
        usage.free.insert(Reg::new(5));
        usage.free.insert(Reg::new(6));
        usage.callee.remove(Reg::new(5));
        usage.callee.remove(Reg::new(6));
        let pins = HashMap::new();
        let a = allocate(&f, &usage, RegSet::new(), &pins);
        validate(&f, &usage, RegSet::new(), &pins, &a).unwrap();
        // Crossing values should use the FREE registers and incur no
        // save/restore.
        assert!(a.used_callee.is_empty(), "{:?}", a.used_callee);
        match a.loc(f.params[1]).unwrap() {
            Loc::Reg(r) => assert!(usage.free.contains(r)),
            Loc::Slot(_) => panic!("spilled"),
        }
    }

    #[test]
    fn forbidden_registers_never_assigned() {
        let f = func("int f(int a, int b) { return a + b; }", "f");
        let mut forbidden = RegSet::new();
        // Forbid everything caller-saves except one register, plus a few
        // callee-saves; allocation must still be correct.
        for r in RegSet::caller_saves().iter().skip(1) {
            forbidden.insert(r);
        }
        let pins = HashMap::new();
        let a = allocate(&f, &RegUsage::standard(), forbidden, &pins);
        validate(&f, &RegUsage::standard(), forbidden, &pins, &a).unwrap();
    }

    #[test]
    fn high_pressure_spills() {
        // 20 simultaneously-live values crossing a call: more than the
        // callee-saves file; some must spill.
        let mut body = String::from("int g(int x) { return x; }\nint f(int p) {\n");
        for i in 0..20 {
            body.push_str(&format!("int v{i} = p + {i};\n"));
        }
        body.push_str("g(p);\nint s = 0;\n");
        for i in 0..20 {
            body.push_str(&format!("s = s + v{i};\n"));
        }
        body.push_str("return s;\n}");
        let f = func(&body, "f");
        let a = alloc_std(&f);
        assert!(a.spill_slots > 0, "expected spills");
        assert!(!a.used_callee.is_empty());
    }

    #[test]
    fn loop_variables_prioritized_over_cold_ones() {
        let f = func(
            "int f(int n, int cold) {
                 int s = 0;
                 for (int i = 0; i < n; i = i + 1) { s = s + i * n; }
                 return s + cold;
             }",
            "f",
        );
        let a = alloc_std(&f);
        // Everything fits in registers here; just confirm the allocation is
        // valid and complete.
        assert_eq!(a.spill_slots, 0);
    }

    #[test]
    fn scratch_registers_never_allocated() {
        let f = func("int f(int a, int b, int c) { return a + b * c; }", "f");
        let a = alloc_std(&f);
        let (s1, s2) = scratch_regs();
        for loc in a.locs.values() {
            if let Loc::Reg(r) = loc {
                assert_ne!(*r, s1);
                assert_ne!(*r, s2);
                assert_ne!(*r, Reg::RV);
                assert!(!Reg::ARGS.contains(r));
            }
        }
    }
}
