//! Machine-code emission (compiler second phase, paper §5).
//!
//! Walks the allocated IR and produces a [`MachineFunction`] under the VPR
//! linkage convention, implementing every directive from the program
//! database:
//!
//! * references to a promoted global become register moves against its
//!   dedicated register (no memory traffic, no base-register setup);
//! * web entry procedures save the dedicated register, load the global at
//!   entry, store it back at exit (unless the web never writes it) and
//!   restore the register;
//! * used `CALLEE` registers are saved/restored; at cluster roots the whole
//!   `MSPILL` set is saved/restored whether used or not;
//! * `FREE` registers are used without any spill code.
//!
//! Frame layout (words, stack grows down, `SP` = lowest address of the
//! frame):
//!
//! ```text
//! SP + frame_size - 1 - k   incoming stack argument k (parameter 4 + k)
//! ...                       saved registers (RP, CALLEE-used, MSPILL, web)
//! SP + 0 .. spill_slots     spill slots
//! ```
//!
//! Callers store outgoing stack arguments *below* their own `SP` — exactly
//! where the callee's frame will place its incoming area.

use crate::alloc::{allocate_for, scratch_regs_for, validate_for, Allocation, CallerPrealloc, Loc};
use crate::promote::rewrite_promotions;
use cmin_ir::ir::{self, BlockId, Callee, Function, IrModule, Operand, Temp};
use ipra_core::{ProcDirectives, ProgramDatabase};
use vpr::inst::{AluOp, Cond, Inst, Label, MemClass};
use vpr::program::{GlobalDef, MachineFunction, ObjectModule};
use vpr::regs::{Reg, RegSet};
use vpr::target::{TargetDesc, TargetId};

/// Compiles one optimized IR module into an object module, consulting the
/// program database for each procedure's directives (falling back to the
/// standard convention for procedures the analyzer never saw). VPR target;
/// see [`compile_module_for`].
pub fn compile_module(ir: &IrModule, db: &ProgramDatabase) -> ObjectModule {
    compile_module_for(ir, db, TargetId::Vpr)
}

/// [`compile_module`] for an explicit target: the linkage roles, argument
/// registers and claim pool all come from `target`'s machine description,
/// and the object module is tagged so the linker can reject mixed-target
/// links.
pub fn compile_module_for(ir: &IrModule, db: &ProgramDatabase, target: TargetId) -> ObjectModule {
    let desc = target.desc();
    let safe_lookup = |name: &str| -> vpr::regs::RegSet {
        db.get(name).map(|d| d.safe_caller_across).unwrap_or_default()
    };
    let functions = ir
        .functions
        .iter()
        .map(|f| {
            let directives = db.lookup_for(&f.name, target);
            compile_function_for(f, &directives, &safe_lookup, desc)
        })
        .collect();
    let globals = ir
        .globals
        .iter()
        .map(|g| GlobalDef { sym: g.sym.clone(), size: g.size as usize, init: g.init.clone() })
        .collect();
    ObjectModule { name: ir.name.clone(), functions, globals, target }
}

/// Compiles a single function under `directives` (no cross-procedure safe
/// sets: calls conservatively clobber every caller-saves register).
pub fn compile_function(f: &Function, directives: &ProcDirectives) -> MachineFunction {
    compile_function_with(f, directives, &|_| vpr::regs::RegSet::new())
}

/// Compiles a single function under `directives`, consulting `safe_lookup`
/// for the §7.6.2 per-callee safe caller-saves sets. VPR convention.
pub fn compile_function_with(
    f: &Function,
    directives: &ProcDirectives,
    safe_lookup: &dyn Fn(&str) -> vpr::regs::RegSet,
) -> MachineFunction {
    compile_function_for(f, directives, safe_lookup, &vpr::target::VPR)
}

/// [`compile_function_with`] against an explicit machine description.
pub fn compile_function_for(
    f: &Function,
    directives: &ProcDirectives,
    safe_lookup: &dyn Fn(&str) -> vpr::regs::RegSet,
    desc: &TargetDesc,
) -> MachineFunction {
    // Rewrite promoted-global accesses against pinned temps; their
    // registers are off limits to the allocator for anything else.
    let mut f = f.clone();
    let promo: Vec<(String, vpr::regs::Reg)> =
        directives.promotions.iter().map(|p| (p.sym.clone(), p.reg)).collect();
    let pins = rewrite_promotions(&mut f, &promo);
    let mut forbidden = RegSet::new();
    for p in &directives.promotions {
        forbidden.insert(p.reg);
    }
    let prealloc = CallerPrealloc { claimed: directives.claimed_caller, safe_lookup };
    let alloc = allocate_for(&f, &directives.usage, forbidden, &pins, &prealloc, desc);
    debug_assert!(
        validate_for(&f, &directives.usage, forbidden, &pins, &alloc, &prealloc, desc).is_ok(),
        "allocator produced an invalid assignment for {}",
        f.name
    );
    Emitter::new(&f, directives, alloc, desc).run()
}

struct Emitter<'a> {
    f: &'a Function,
    directives: &'a ProcDirectives,
    alloc: Allocation,
    desc: &'a TargetDesc,
    out: MachineFunction,
    block_labels: Vec<Label>,
    epilogue: Label,
    /// Registers to save in the prologue, in order, with their slot index.
    saves: Vec<(Reg, i64)>,
    frame_size: i64,
    spill_base: i64,
    rp_slot: Option<i64>,
    /// Return-value staging register.
    s1: Reg,
    s2: Reg,
}

impl<'a> Emitter<'a> {
    fn new(
        f: &'a Function,
        directives: &'a ProcDirectives,
        alloc: Allocation,
        desc: &'a TargetDesc,
    ) -> Emitter<'a> {
        let (s1, s2) = scratch_regs_for(desc);
        let mut out = MachineFunction::new(f.name.clone());
        let block_labels: Vec<Label> = f.blocks.iter().map(|_| out.new_label()).collect();
        let epilogue = out.new_label();

        let has_calls =
            f.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i, ir::Inst::Call { .. })));

        // Frame layout.
        let spill_base = 0i64;
        let mut next = alloc.spill_slots as i64;
        let mut rp_slot = None;
        if has_calls {
            rp_slot = Some(next);
            next += 1;
        }
        let mut saves: Vec<(Reg, i64)> = Vec::new();
        // Used CALLEE registers.
        for r in alloc.used_callee.iter() {
            saves.push((r, next));
            next += 1;
        }
        // MSPILL at cluster roots: saved whether used or not.
        if directives.is_cluster_root {
            for r in directives.usage.mspill.iter() {
                if !saves.iter().any(|(x, _)| *x == r) {
                    saves.push((r, next));
                    next += 1;
                }
            }
        }
        // Web entry nodes save/restore the dedicated register around the
        // global's residence in it.
        for p in &directives.promotions {
            if p.is_entry && !saves.iter().any(|(x, _)| *x == p.reg) {
                saves.push((p.reg, next));
                next += 1;
            }
        }
        // Incoming stack arguments occupy the top of the frame.
        let extra_in = f.params.len().saturating_sub(desc.args.len()) as i64;
        let frame_size = next + extra_in;

        Emitter {
            f,
            directives,
            alloc,
            desc,
            out,
            block_labels,
            epilogue,
            saves,
            frame_size,
            spill_base,
            rp_slot,
            s1,
            s2,
        }
    }

    fn push(&mut self, inst: Inst) {
        self.out.push(inst);
    }

    fn slot_disp(&self, slot: u32) -> i64 {
        self.spill_base + slot as i64
    }

    /// The register currently assigned to `t`; spilled temps are loaded
    /// into `scratch`.
    fn read_temp(&mut self, t: Temp, scratch: Reg) -> Reg {
        match self.alloc.loc(t) {
            Some(Loc::Reg(r)) => r,
            Some(Loc::Slot(s)) => {
                let disp = self.slot_disp(s);
                let sp = self.desc.sp;
                self.push(Inst::Ldw { rd: scratch, base: sp, disp, class: MemClass::Spill });
                scratch
            }
            None => self.desc.zero, // dead temp: any value will do
        }
    }

    /// Materializes `o` into a register (using `scratch` if needed).
    fn read_operand(&mut self, o: Operand, scratch: Reg) -> Reg {
        match o {
            Operand::Temp(t) => self.read_temp(t, scratch),
            Operand::Const(0) => self.desc.zero,
            Operand::Const(c) => {
                self.push(Inst::Ldi { rd: scratch, imm: c });
                scratch
            }
        }
    }

    /// The register a def should be computed into, plus whether a spill
    /// store must follow.
    fn def_target(&mut self, t: Temp) -> (Reg, Option<i64>) {
        match self.alloc.loc(t) {
            Some(Loc::Reg(r)) => (r, None),
            Some(Loc::Slot(s)) => (self.s1, Some(self.slot_disp(s))),
            None => (self.s1, None), // dead def
        }
    }

    fn finish_def(&mut self, spill: Option<i64>) {
        if let Some(disp) = spill {
            let sp = self.desc.sp;
            self.push(Inst::Stw { rs: self.s1, base: sp, disp, class: MemClass::Spill });
        }
    }

    /// The register holding promoted global `sym`, if it is promoted here.
    fn promoted_reg(&self, sym: &str) -> Option<Reg> {
        self.directives.promotions.iter().find(|p| p.sym == sym).map(|p| p.reg)
    }

    fn run(mut self) -> MachineFunction {
        self.prologue();
        for b in self.f.block_ids() {
            self.out.bind_label(self.block_labels[b.index()]);
            for i in 0..self.f.block(b).insts.len() {
                let inst = self.f.block(b).insts[i].clone();
                self.inst(&inst);
            }
            let term = self.f.block(b).term.clone();
            self.terminator(&term, b);
        }
        self.out.bind_label(self.epilogue);
        self.epilogue_code();
        self.peephole();
        self.out
    }

    fn prologue(&mut self) {
        let sp = self.desc.sp;
        let rp = self.desc.rp;
        if self.frame_size > 0 {
            self.push(Inst::Alui { op: AluOp::Sub, rd: sp, rs1: sp, imm: self.frame_size });
        }
        if let Some(slot) = self.rp_slot {
            self.push(Inst::Stw { rs: rp, base: sp, disp: slot, class: MemClass::Frame });
        }
        for (r, slot) in self.saves.clone() {
            self.push(Inst::Stw { rs: r, base: sp, disp: slot, class: MemClass::Spill });
        }
        // Web entry: load the promoted globals into their registers.
        for p in self.directives.promotions.clone() {
            if p.is_entry {
                self.push(Inst::Ldg {
                    rd: p.reg,
                    sym: p.sym.clone(),
                    offset: 0,
                    class: MemClass::ScalarGlobal,
                });
            }
        }
        // Move parameters from the argument registers / incoming slots to
        // their allocated homes.
        let argc = self.desc.args.len();
        for (i, &p) in self.f.params.iter().enumerate().collect::<Vec<_>>() {
            let src: Reg = if i < argc {
                self.desc.args[i]
            } else {
                let k = (i - argc) as i64;
                let disp = self.frame_size - 1 - k;
                self.push(Inst::Ldw { rd: self.s1, base: sp, disp, class: MemClass::Frame });
                self.s1
            };
            match self.alloc.loc(p) {
                Some(Loc::Reg(r)) => self.push(Inst::Copy { rd: r, rs: src }),
                Some(Loc::Slot(s)) => {
                    let disp = self.slot_disp(s);
                    self.push(Inst::Stw { rs: src, base: sp, disp, class: MemClass::Spill });
                }
                None => {}
            }
        }
    }

    fn epilogue_code(&mut self) {
        // Web entry: store promoted globals back (suppressed for read-only
        // webs), then restore the saved registers.
        for p in self.directives.promotions.clone() {
            if p.is_entry && p.store_at_exit {
                self.push(Inst::Stg {
                    rs: p.reg,
                    sym: p.sym.clone(),
                    offset: 0,
                    class: MemClass::ScalarGlobal,
                });
            }
        }
        let sp = self.desc.sp;
        let rp = self.desc.rp;
        for (r, slot) in self.saves.clone().into_iter().rev() {
            self.push(Inst::Ldw { rd: r, base: sp, disp: slot, class: MemClass::Spill });
        }
        if let Some(slot) = self.rp_slot {
            self.push(Inst::Ldw { rd: rp, base: sp, disp: slot, class: MemClass::Frame });
        }
        if self.frame_size > 0 {
            self.push(Inst::Alui { op: AluOp::Add, rd: sp, rs1: sp, imm: self.frame_size });
        }
        self.push(Inst::Bv { base: rp });
    }

    fn inst(&mut self, inst: &ir::Inst) {
        match inst {
            ir::Inst::Copy { dst, src } => {
                let (rd, spill) = self.def_target(*dst);
                match src {
                    Operand::Const(c) => self.push(Inst::Ldi { rd, imm: *c }),
                    Operand::Temp(t) => {
                        let rs = self.read_temp(*t, rd);
                        if rs != rd {
                            self.push(Inst::Copy { rd, rs });
                        }
                    }
                }
                self.finish_def(spill);
            }
            ir::Inst::Un { op, dst, src } => {
                let rs = self.read_operand(*src, self.s2);
                let (rd, spill) = self.def_target(*dst);
                let zero = self.desc.zero;
                match op {
                    ir::UnOp::Neg => {
                        self.push(Inst::Alu { op: AluOp::Sub, rd, rs1: zero, rs2: rs })
                    }
                    ir::UnOp::Not => {
                        self.push(Inst::Cmp { cond: Cond::Eq, rd, rs1: rs, rs2: zero })
                    }
                }
                self.finish_def(spill);
            }
            ir::Inst::Bin { op, dst, lhs, rhs } => self.bin(*op, *dst, *lhs, *rhs),
            ir::Inst::LoadGlobal { dst, sym } => {
                let (rd, spill) = self.def_target(*dst);
                match self.promoted_reg(sym) {
                    Some(wr) => self.push(Inst::Copy { rd, rs: wr }),
                    None => self.push(Inst::Ldg {
                        rd,
                        sym: sym.clone(),
                        offset: 0,
                        class: MemClass::ScalarGlobal,
                    }),
                }
                self.finish_def(spill);
            }
            ir::Inst::StoreGlobal { sym, src } => match self.promoted_reg(sym) {
                Some(wr) => {
                    let rs = self.read_operand(*src, self.s1);
                    if rs != wr {
                        self.push(Inst::Copy { rd: wr, rs });
                    }
                }
                None => {
                    let rs = self.read_operand(*src, self.s1);
                    self.push(Inst::Stg {
                        rs,
                        sym: sym.clone(),
                        offset: 0,
                        class: MemClass::ScalarGlobal,
                    });
                }
            },
            ir::Inst::LoadElem { dst, sym, index } => match index {
                Operand::Const(c) => {
                    let (rd, spill) = self.def_target(*dst);
                    self.push(Inst::Ldg {
                        rd,
                        sym: sym.clone(),
                        offset: *c,
                        class: MemClass::Aggregate,
                    });
                    self.finish_def(spill);
                }
                Operand::Temp(t) => {
                    let idx = self.read_temp(*t, self.s2);
                    self.push(Inst::Lga { rd: self.s1, sym: sym.clone(), offset: 0 });
                    self.push(Inst::Alu { op: AluOp::Add, rd: self.s1, rs1: self.s1, rs2: idx });
                    let (rd, spill) = self.def_target(*dst);
                    self.push(Inst::Ldw { rd, base: self.s1, disp: 0, class: MemClass::Aggregate });
                    self.finish_def(spill);
                }
            },
            ir::Inst::StoreElem { sym, index, src } => match index {
                Operand::Const(c) => {
                    let rs = self.read_operand(*src, self.s2);
                    self.push(Inst::Stg {
                        rs,
                        sym: sym.clone(),
                        offset: *c,
                        class: MemClass::Aggregate,
                    });
                }
                Operand::Temp(t) => {
                    let idx = self.read_temp(*t, self.s2);
                    self.push(Inst::Lga { rd: self.s1, sym: sym.clone(), offset: 0 });
                    self.push(Inst::Alu { op: AluOp::Add, rd: self.s1, rs1: self.s1, rs2: idx });
                    let rs = self.read_operand(*src, self.s2);
                    self.push(Inst::Stw { rs, base: self.s1, disp: 0, class: MemClass::Aggregate });
                }
            },
            ir::Inst::LoadInd { dst, addr } => {
                let base = self.read_operand(*addr, self.s1);
                let (rd, spill) = self.def_target(*dst);
                self.push(Inst::Ldw { rd, base, disp: 0, class: MemClass::Indirect });
                self.finish_def(spill);
            }
            ir::Inst::StoreInd { addr, src } => {
                let base = self.read_operand(*addr, self.s1);
                let rs = self.read_operand(*src, self.s2);
                self.push(Inst::Stw { rs, base, disp: 0, class: MemClass::Indirect });
            }
            ir::Inst::AddrGlobal { dst, sym } => {
                let (rd, spill) = self.def_target(*dst);
                self.push(Inst::Lga { rd, sym: sym.clone(), offset: 0 });
                self.finish_def(spill);
            }
            ir::Inst::AddrFunc { dst, func } => {
                let (rd, spill) = self.def_target(*dst);
                self.push(Inst::Ldfa { rd, func: func.clone() });
                self.finish_def(spill);
            }
            ir::Inst::Call { dst, callee, args } => self.call(dst, callee, args),
            ir::Inst::In { dst } => {
                let (rd, spill) = self.def_target(*dst);
                self.push(Inst::In { rd });
                self.finish_def(spill);
            }
            ir::Inst::Out { src } => {
                let rs = self.read_operand(*src, self.s1);
                self.push(Inst::Out { rs });
            }
        }
    }

    fn bin(&mut self, op: ir::BinOp, dst: Temp, lhs: Operand, rhs: Operand) {
        use ir::BinOp as B;
        let alu = |op: B| match op {
            B::Add => Some(AluOp::Add),
            B::Sub => Some(AluOp::Sub),
            B::Mul => Some(AluOp::Mul),
            B::Div => Some(AluOp::Div),
            B::Rem => Some(AluOp::Rem),
            _ => None,
        };
        let cond = |op: B| match op {
            B::Eq => Some(Cond::Eq),
            B::Ne => Some(Cond::Ne),
            B::Lt => Some(Cond::Lt),
            B::Le => Some(Cond::Le),
            B::Gt => Some(Cond::Gt),
            B::Ge => Some(Cond::Ge),
            _ => None,
        };
        if let Some(a) = alu(op) {
            // Immediate form for constant right operands.
            if let Operand::Const(c) = rhs {
                let rs1 = self.read_operand(lhs, self.s1);
                let (rd, spill) = self.def_target(dst);
                self.push(Inst::Alui { op: a, rd, rs1, imm: c });
                self.finish_def(spill);
                return;
            }
            let rs1 = self.read_operand(lhs, self.s1);
            let rs2 = self.read_operand(rhs, self.s2);
            let (rd, spill) = self.def_target(dst);
            self.push(Inst::Alu { op: a, rd, rs1, rs2 });
            self.finish_def(spill);
        } else {
            let c = cond(op).expect("comparison");
            let rs1 = self.read_operand(lhs, self.s1);
            let rs2 = self.read_operand(rhs, self.s2);
            let (rd, spill) = self.def_target(dst);
            self.push(Inst::Cmp { cond: c, rd, rs1, rs2 });
            self.finish_def(spill);
        }
    }

    fn call(&mut self, dst: &Option<Temp>, callee: &Callee, args: &[Operand]) {
        // Arguments: the leading ones in the convention's argument
        // registers, the rest below SP (the callee's incoming area).
        let argc = self.desc.args.len();
        let sp = self.desc.sp;
        let zero = self.desc.zero;
        for (i, a) in args.iter().enumerate() {
            if i < argc {
                let target = self.desc.args[i];
                match a {
                    Operand::Const(c) => self.push(Inst::Ldi { rd: target, imm: *c }),
                    Operand::Temp(t) => match self.alloc.loc(*t) {
                        Some(Loc::Reg(r)) => self.push(Inst::Copy { rd: target, rs: r }),
                        Some(Loc::Slot(s)) => {
                            let disp = self.slot_disp(s);
                            self.push(Inst::Ldw {
                                rd: target,
                                base: sp,
                                disp,
                                class: MemClass::Spill,
                            });
                        }
                        None => self.push(Inst::Copy { rd: target, rs: zero }),
                    },
                }
            } else {
                let rs = self.read_operand(*a, self.s1);
                let disp = -1 - (i as i64 - argc as i64);
                self.push(Inst::Stw { rs, base: sp, disp, class: MemClass::Frame });
            }
        }
        match callee {
            Callee::Direct(name) => self.push(Inst::Call { target: name.clone() }),
            Callee::Indirect(o) => {
                let base = self.read_operand(*o, self.s1);
                self.push(Inst::CallInd { base });
            }
        }
        if let Some(d) = dst {
            let rv = self.desc.rv;
            let (rd, spill) = self.def_target(*d);
            if rd != rv {
                self.push(Inst::Copy { rd, rs: rv });
            }
            self.finish_def(spill);
        }
    }

    fn terminator(&mut self, term: &ir::Term, current: BlockId) {
        match term {
            ir::Term::Jump(b) => {
                // Fall through when the target is the next block.
                if b.index() != current.index() + 1 {
                    self.push(Inst::B { target: self.block_labels[b.index()] });
                }
            }
            ir::Term::Branch { cond, lhs, rhs, then_b, else_b } => {
                let c = match cond {
                    ir::BinOp::Eq => Cond::Eq,
                    ir::BinOp::Ne => Cond::Ne,
                    ir::BinOp::Lt => Cond::Lt,
                    ir::BinOp::Le => Cond::Le,
                    ir::BinOp::Gt => Cond::Gt,
                    ir::BinOp::Ge => Cond::Ge,
                    other => unreachable!("non-comparison branch condition {other}"),
                };
                let rs1 = self.read_operand(*lhs, self.s1);
                let rs2 = self.read_operand(*rhs, self.s2);
                if else_b.index() == current.index() + 1 {
                    // Branch to then, fall through to else.
                    self.push(Inst::Comb {
                        cond: c,
                        rs1,
                        rs2,
                        target: self.block_labels[then_b.index()],
                    });
                } else if then_b.index() == current.index() + 1 {
                    self.push(Inst::Comb {
                        cond: c.negate(),
                        rs1,
                        rs2,
                        target: self.block_labels[else_b.index()],
                    });
                } else {
                    self.push(Inst::Comb {
                        cond: c,
                        rs1,
                        rs2,
                        target: self.block_labels[then_b.index()],
                    });
                    self.push(Inst::B { target: self.block_labels[else_b.index()] });
                }
            }
            ir::Term::Ret(v) => {
                let rv = self.desc.rv;
                match v {
                    Some(o) => {
                        let r = self.read_operand(*o, rv);
                        if r != rv {
                            self.push(Inst::Copy { rd: rv, rs: r });
                        }
                    }
                    None => self.push(Inst::Ldi { rd: rv, imm: 0 }),
                }
                // Jump to the single epilogue unless it is next.
                if current.index() + 1 != self.f.blocks.len() {
                    self.push(Inst::B { target: self.epilogue });
                } else {
                    // Even for the last block, the epilogue label binds
                    // right after — fall through.
                }
            }
        }
    }

    /// Tiny cleanup: drop self-copies produced by fortunate allocations.
    fn peephole(&mut self) {
        for inst in self.out.insts_mut().iter_mut() {
            if let Inst::Copy { rd, rs } = inst {
                if rd == rs {
                    *inst = Inst::Nop;
                }
            }
        }
        self.out.remove_nops();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmin_frontend::{analyze as sema, parse_module};
    use cmin_ir::{lower_module, optimize_module};
    use ipra_core::{ProcDirectives, Promotion};
    use vpr::program::link;
    use vpr::sim::{run_with, SimOptions};

    fn compile_run(src: &str) -> vpr::sim::RunResult {
        compile_run_with(src, &ProgramDatabase::new(), &[])
    }

    fn compile_run_with(src: &str, db: &ProgramDatabase, input: &[i64]) -> vpr::sim::RunResult {
        let m = parse_module("m", src).unwrap();
        let info = sema(&m).unwrap();
        let mut ir = lower_module(&m, &info);
        optimize_module(&mut ir);
        let obj = compile_module(&ir, db);
        let exe = link(&[obj]).unwrap();
        let opts = SimOptions { input: input.to_vec(), ..SimOptions::default() };
        run_with(&exe, &opts).unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let r = compile_run(
            "int main() {
                int s = 0;
                for (int i = 1; i <= 10; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; }
                }
                out(s);
                return s;
            }",
        );
        assert_eq!(r.output, vec![30]);
        assert_eq!(r.exit, 30);
    }

    #[test]
    fn calls_and_recursion() {
        let r = compile_run(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
             int main() { return fib(15); }",
        );
        assert_eq!(r.exit, 610);
    }

    #[test]
    fn many_arguments_spill_to_stack() {
        let r = compile_run(
            "int sum7(int a, int b, int c, int d, int e, int f, int g) {
                 return a + b * 10 + c * 100 + d * 1000 + e * 10000 + f * 100000 + g * 1000000;
             }
             int main() { return sum7(1, 2, 3, 4, 5, 6, 7); }",
        );
        assert_eq!(r.exit, 7654321);
    }

    #[test]
    fn globals_arrays_pointers() {
        let r = compile_run(
            "int g = 5;
             int a[4] = {10, 20, 30, 40};
             int main() {
                 g = g + a[1];
                 a[2] = g;
                 int p = &g;
                 *p = *p + a[2];
                 out(g);
                 out(a[2]);
                 return a[0] + a[3];
             }",
        );
        assert_eq!(r.output, vec![50, 25]);
        assert_eq!(r.exit, 50);
    }

    #[test]
    fn indirect_calls() {
        let r = compile_run(
            "int twice(int x) { return 2 * x; }
             int thrice(int x) { return 3 * x; }
             int apply(int f, int x) { return f(x); }
             int main() { return apply(&twice, 10) + apply(&thrice, 100); }",
        );
        assert_eq!(r.exit, 320);
    }

    #[test]
    fn io_round_trip() {
        let r = compile_run_with(
            "int main() { int s = 0; int v = in(); while (v >= 0) { s = s + v; v = in(); } out(s); return 0; }",
            &ProgramDatabase::new(),
            &[5, 10, 15],
        );
        assert_eq!(r.output, vec![30]);
    }

    #[test]
    fn register_pressure_spills_are_correct() {
        let mut src = String::from("int w(int x) { return x + 1; }\nint main() {\n");
        for i in 0..24 {
            src.push_str(&format!("int v{i} = {i} * 3 + 1;\n"));
        }
        src.push_str("int r = w(7);\nint s = r;\n");
        for i in 0..24 {
            src.push_str(&format!("s = s + v{i} * {i};\n"));
        }
        src.push_str("return s;\n}");
        let r = compile_run(&src);
        // Oracle: sum of (3i+1)*i for i in 0..24 plus w(7)=8.
        let expect: i64 = (0..24).map(|i: i64| (3 * i + 1) * i).sum::<i64>() + 8;
        assert_eq!(r.exit, expect);
    }

    #[test]
    fn promoted_global_uses_register_and_skips_memory() {
        let src = "int counter;
             int main() {
                 for (int i = 0; i < 100; i = i + 1) { counter = counter + 1; }
                 return counter;
             }";
        // Unpromoted baseline.
        let base = compile_run(src);
        assert_eq!(base.exit, 100);

        // Promote `counter` to r3 with main as the web entry.
        let mut db = ProgramDatabase::new();
        let mut d = ProcDirectives::standard("main");
        d.promotions.push(Promotion {
            sym: "counter".into(),
            reg: Reg::new(3),
            is_entry: true,
            store_at_exit: true,
        });
        d.usage.callee.remove(Reg::new(3));
        db.insert(d);
        let promoted = compile_run_with(src, &db, &[]);
        assert_eq!(promoted.exit, 100);
        // The loop's 200 global accesses become register operations: only
        // the entry load, exit store and spill traffic remain.
        assert!(
            promoted.stats.singleton_refs() < base.stats.singleton_refs() / 10,
            "promotion should eliminate the global's memory traffic: {} vs {}",
            promoted.stats.singleton_refs(),
            base.stats.singleton_refs()
        );
        assert!(promoted.stats.cycles <= base.stats.cycles);
    }

    #[test]
    fn read_only_web_suppresses_store() {
        let src = "int limit = 7;
             int main() { int s = 0; for (int i = 0; i < limit; i = i + 1) { s = s + i; } return s; }";
        let mut db = ProgramDatabase::new();
        let mut d = ProcDirectives::standard("main");
        d.promotions.push(Promotion {
            sym: "limit".into(),
            reg: Reg::new(3),
            is_entry: true,
            store_at_exit: false,
        });
        d.usage.callee.remove(Reg::new(3));
        db.insert(d);
        let r = compile_run_with(src, &db, &[]);
        assert_eq!(r.exit, 21);
        // Entry load happens; no store of `limit` at exit. The only global
        // singleton stores possible here would come from that suppressed
        // store-back plus register save/restore traffic.
        assert!(r.stats.singleton_loads >= 1);
    }

    #[test]
    fn mspill_cluster_root_saves_unconditionally() {
        let src = "int helper(int x) { return x * 2; }
             int main() { return helper(21); }";
        let mut db = ProgramDatabase::new();
        let mut d = ProcDirectives::standard("main");
        d.is_cluster_root = true;
        d.usage.mspill.insert(Reg::new(9));
        d.usage.mspill.insert(Reg::new(10));
        d.usage.callee.remove(Reg::new(9));
        d.usage.callee.remove(Reg::new(10));
        db.insert(d);
        // helper gets the registers for free.
        let mut h = ProcDirectives::standard("helper");
        h.usage.free.insert(Reg::new(9));
        h.usage.free.insert(Reg::new(10));
        h.usage.callee.remove(Reg::new(9));
        h.usage.callee.remove(Reg::new(10));
        db.insert(h);
        let r = compile_run_with(src, &db, &[]);
        assert_eq!(r.exit, 42);
        // main saved/restored both MSPILL registers: at least 2 spill
        // stores + 2 spill loads.
        assert!(r.stats.singleton_refs() >= 4);
    }

    #[test]
    fn web_member_value_preserved_across_external_calls() {
        // main is a web entry holding `acc` in r3 and calls an external
        // (non-member) procedure that uses callee-saves registers heavily;
        // the convention must preserve r3.
        let src = "int acc;
             int churn(int x) {
                 int a = x + 1; int b = x + 2; int c = x + 3; int d = x + 4;
                 int e = churn2(a);
                 return a + b + c + d + e;
             }
             int churn2(int y) { return y * 2; }
             int main() {
                 acc = 0;
                 for (int i = 0; i < 10; i = i + 1) {
                     acc = acc + churn(i);
                 }
                 return acc;
             }";
        let mut db = ProgramDatabase::new();
        let mut d = ProcDirectives::standard("main");
        d.promotions.push(Promotion {
            sym: "acc".into(),
            reg: Reg::new(3),
            is_entry: true,
            store_at_exit: true,
        });
        d.usage.callee.remove(Reg::new(3));
        db.insert(d);
        let with_web = compile_run_with(src, &db, &[]);
        let without = compile_run(src);
        assert_eq!(with_web.exit, without.exit);
        assert_eq!(with_web.output, without.output);
    }

    #[test]
    fn caller_preallocation_avoids_callee_saves_spill() {
        use ipra_core::caller_prealloc::claim_pool_set;
        // `b` is live across the call to a leaf that claims no caller
        // registers: with the extension the value stays in a claimed
        // caller-saves register and `f` needs no save/restore at all.
        let m = parse_module(
            "m",
            "int leaf(int x) { return x + 1; }
             int f(int a, int b) { int r = leaf(a); return r + b; }",
        )
        .unwrap();
        let info = sema(&m).unwrap();
        let mut ir = lower_module(&m, &info);
        optimize_module(&mut ir);
        let f = ir.function("f").unwrap();

        // Directives as the analyzer would emit them with the extension on:
        // leaf's tree uses nothing from the claim pool.
        let mut d = ProcDirectives::standard("f");
        d.claimed_caller = claim_pool_set();
        let safe = |name: &str| {
            if name == "leaf" {
                claim_pool_set()
            } else {
                vpr::regs::RegSet::new()
            }
        };
        let code = compile_function_with(f, &d, &safe);
        let spills =
            code.insts().iter().filter(|i| matches!(i.mem_class(), Some(MemClass::Spill))).count();
        assert_eq!(
            spills,
            0,
            "no callee-saves save/restore expected:\n{}",
            vpr::asm::function_asm(&code)
        );

        // Without the extension the crossing value needs a callee-saves
        // register and its save/restore pair.
        let code = compile_function(f, &d);
        let spills =
            code.insts().iter().filter(|i| matches!(i.mem_class(), Some(MemClass::Spill))).count();
        assert!(spills >= 2, "baseline should save/restore a callee-saves register");
    }

    #[test]
    fn fallthrough_layout_avoids_redundant_jumps() {
        let m = parse_module(
            "m",
            "int main() { int x = in(); if (x > 0) { out(1); } else { out(2); } return 0; }",
        )
        .unwrap();
        let info = sema(&m).unwrap();
        let mut ir = lower_module(&m, &info);
        optimize_module(&mut ir);
        let obj = compile_module(&ir, &ProgramDatabase::new());
        let f = &obj.functions[0];
        let jumps = f.insts().iter().filter(|i| matches!(i, Inst::B { .. })).count();
        // A diamond needs at most 2 unconditional branches with decent
        // layout (often fewer).
        assert!(jumps <= 3, "{}", vpr::asm::function_asm(f));
    }
}
