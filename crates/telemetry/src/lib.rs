//! Pipeline-wide telemetry for the IPRA toolchain.
//!
//! Two strictly separated kinds of data share one collector:
//!
//! * **Spans** — hierarchical wall-clock intervals (build → per-module
//!   phase-1/phase-2 tasks, analyze, link, cache I/O, artifact staging,
//!   simulator runs), each tagged with the *lane* (worker-thread slot) that
//!   ran it so `-j` utilization is visible. Spans export as Chrome
//!   trace-event JSON ([`Telemetry::chrome_trace_json`]) loadable in
//!   Perfetto or `about://tracing`.
//! * **Counters** — a registry of monotonically added `u64`s
//!   (instructions retired per opcode class, cache hits/misses per tier,
//!   bytes (de)serialized, fuzz iterations, …). Counters never contain
//!   wall-clock data, are keyed in a [`BTreeMap`], and are only ever
//!   *added to*, so the exported metrics JSON
//!   ([`Telemetry::metrics_json`]) is **byte-deterministic**: identical
//!   across `--jobs` widths, across runs, and across simulator engines.
//!
//! The collector is a cheap [`Clone`] handle (an `Arc` over interior
//! state); every pipeline layer takes an `Option<&Telemetry>` (or a stored
//! `Option<Telemetry>`) and does nothing when telemetry is off. The
//! [`SpanTimer`] returned by [`span`] measures elapsed seconds even with
//! telemetry off, so callers can derive report timings and trace spans
//! from one mechanism.
//!
//! # Span pairing
//!
//! A `B` (begin) event is recorded when a span starts and the matching `E`
//! (end) event when its [`SpanTimer`] is finished or dropped — so every
//! `B` in an exported trace has an `E` by construction, including on early
//! returns and error paths.

use serde::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// The current thread's lane id: 0 for the main thread, `w + 1` for
    /// worker slot `w` of a parallel stage. Exported as the Chrome-trace
    /// `tid` so per-module tasks visibly spread across workers.
    static LANE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Tags the current thread with a lane id for subsequent span events.
/// Worker pools call this once per worker thread; the main thread is
/// lane 0 by default.
pub fn set_lane(lane: u64) {
    LANE.with(|l| l.set(lane));
}

/// The current thread's lane id (see [`set_lane`]).
pub fn current_lane() -> u64 {
    LANE.with(std::cell::Cell::get)
}

/// One recorded trace event: a begin or end marker for a span.
#[derive(Debug, Clone)]
struct SpanEvent {
    /// Span name (e.g. `"phase1"`, `"phase1:mod_a"`).
    name: String,
    /// Category (e.g. `"build"`, `"cache"`, `"artifact"`, `"sim"`).
    cat: String,
    /// `'B'` or `'E'`.
    ph: char,
    /// Microseconds since the collector's epoch.
    ts_us: u64,
    /// Lane (worker slot) that recorded the event; Chrome-trace `tid`.
    lane: u64,
}

#[derive(Debug, Default)]
struct State {
    events: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// The telemetry collector: a cheap-to-clone handle shared by every layer
/// of one build/run. See the module docs for the span/counter split.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh collector whose span timestamps start at zero now.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner { epoch: Instant::now(), state: Mutex::new(State::default()) }),
        }
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    fn record(&self, name: &str, cat: &str, ph: char, ts_us: u64) {
        let ev = SpanEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph,
            ts_us,
            lane: current_lane(),
        };
        self.inner.state.lock().unwrap().events.push(ev);
    }

    /// Starts a span on this collector. Prefer the free [`span`] helper,
    /// which also covers the telemetry-off case.
    pub fn span(&self, cat: &str, name: &str) -> SpanTimer {
        span(Some(self), cat, name)
    }

    /// Adds `n` to the counter `key` (creating it at zero). Counters are
    /// additive and unordered, so concurrent increments from any number of
    /// workers produce identical totals.
    pub fn add(&self, key: &str, n: u64) {
        let mut st = self.inner.state.lock().unwrap();
        *st.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Adds 1 to the counter `key`.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// The current counter values, sorted by key.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.state.lock().unwrap().counters.clone()
    }

    /// The value of one counter (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.inner.state.lock().unwrap().counters.get(key).copied().unwrap_or(0)
    }

    /// Number of span events recorded so far (each span contributes a
    /// begin and an end event).
    pub fn event_count(&self) -> usize {
        self.inner.state.lock().unwrap().events.len()
    }

    /// Exports all recorded spans as Chrome trace-event JSON (the
    /// "JSON object format": `{"traceEvents": [...]}`), loadable in
    /// Perfetto or `about://tracing`. `pid` is always 1; `tid` is the
    /// recording lane.
    pub fn chrome_trace_json(&self) -> String {
        let st = self.inner.state.lock().unwrap();
        let events: Vec<Value> = st
            .events
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(e.name.clone())),
                    ("cat".to_string(), Value::Str(e.cat.clone())),
                    ("ph".to_string(), Value::Str(e.ph.to_string())),
                    ("ts".to_string(), Value::UInt(e.ts_us)),
                    ("pid".to_string(), Value::Int(1)),
                    ("tid".to_string(), Value::UInt(e.lane)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ]);
        serde_json::to_string_pretty(&doc).expect("trace serialization cannot fail")
    }

    /// Exports the counters registry as canonical, byte-deterministic
    /// JSON: keys sorted, values plain integers, **no wall-clock data**.
    /// Two runs doing the same work produce identical bytes regardless of
    /// `--jobs` width, machine speed, or simulator engine.
    pub fn metrics_json(&self) -> String {
        metrics_json_from(&self.counters())
    }
}

/// A counters snapshot as a JSON object value with sorted keys (the
/// workspace's generic `BTreeMap` serialization is an array of pairs to
/// admit non-string keys; metrics want a plain object).
pub fn counters_value(counters: &BTreeMap<String, u64>) -> Value {
    Value::Object(counters.iter().map(|(k, &v)| (k.clone(), Value::UInt(v))).collect())
}

/// A counters snapshot embeddable in derived-`Serialize` report structs:
/// serializes as a sorted JSON *object* (like [`counters_value`]) rather
/// than the generic map encoding, and compares by value so reports can
/// assert run-to-run counter identity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountersSnapshot(pub BTreeMap<String, u64>);

impl serde::Serialize for CountersSnapshot {
    fn serialize(&self) -> Value {
        counters_value(&self.0)
    }
}

impl serde::BinSerialize for CountersSnapshot {
    fn bin_serialize(&self, out: &mut Vec<u8>) {
        serde::BinSerialize::bin_serialize(&self.0, out);
    }
}

/// Renders a counters snapshot in the same canonical schema as
/// [`Telemetry::metrics_json`] (`schema` field + sorted `counters` map).
pub fn metrics_json_from(counters: &BTreeMap<String, u64>) -> String {
    let doc = Value::Object(vec![
        ("schema".to_string(), Value::Str("ipra-metrics-v1".to_string())),
        ("counters".to_string(), counters_value(counters)),
    ]);
    let mut s = serde_json::to_string_pretty(&doc).expect("metrics serialization cannot fail");
    s.push('\n');
    s
}

/// Starts a span that works with telemetry on *or* off.
///
/// Always measures elapsed wall-clock time ([`SpanTimer::finish`] returns
/// seconds), and additionally records `B`/`E` trace events when `tele` is
/// `Some`. This is the one timing mechanism for the pipeline: report
/// timings and exported traces can never disagree.
pub fn span(tele: Option<&Telemetry>, cat: &str, name: &str) -> SpanTimer {
    let rec = tele.map(|t| {
        t.record(name, cat, 'B', t.now_us());
        (t.clone(), name.to_string(), cat.to_string())
    });
    SpanTimer { start: Instant::now(), rec, done: false }
}

/// A running span: measures elapsed seconds, and (when attached to a
/// collector) guarantees the span's `E` event is recorded exactly once —
/// on [`finish`](SpanTimer::finish), or on drop for early exits.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
    rec: Option<(Telemetry, String, String)>,
    done: bool,
}

impl SpanTimer {
    fn record_end(&mut self) {
        self.done = true;
        if let Some((t, name, cat)) = self.rec.take() {
            t.record(&name, &cat, 'E', t.now_us());
        }
    }

    /// Ends the span and returns its elapsed wall-clock seconds.
    pub fn finish(mut self) -> f64 {
        self.record_end();
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.done {
            self.record_end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_pair_begin_and_end() {
        let t = Telemetry::new();
        {
            let _outer = t.span("build", "total");
            let inner = t.span("build", "phase1");
            let secs = inner.finish();
            assert!(secs >= 0.0);
        } // _outer ends via Drop
        assert_eq!(t.event_count(), 4);
        let json = t.chrome_trace_json();
        assert_eq!(json.matches("\"B\"").count(), 2);
        assert_eq!(json.matches("\"E\"").count(), 2);
    }

    #[test]
    fn span_timer_works_without_collector() {
        let timer = span(None, "build", "phase1");
        assert!(timer.finish() >= 0.0);
    }

    #[test]
    fn counters_are_sorted_and_deterministic() {
        let t = Telemetry::new();
        t.add("z.last", 2);
        t.incr("a.first");
        t.add("m.mid", 40);
        t.add("a.first", 1);
        let u = Telemetry::new();
        u.add("m.mid", 40);
        u.add("a.first", 2);
        u.add("z.last", 2);
        assert_eq!(t.metrics_json(), u.metrics_json());
        let json = t.metrics_json();
        let a = json.find("a.first").unwrap();
        let m = json.find("m.mid").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < m && m < z);
    }

    #[test]
    fn metrics_json_never_contains_wall_clock() {
        let t = Telemetry::new();
        let s = t.span("build", "total");
        t.add("sim.cycles", 123);
        drop(s);
        let json = t.metrics_json();
        assert!(!json.contains("seconds"));
        assert!(!json.contains("ts"));
        assert!(json.contains("sim.cycles"));
    }

    #[test]
    fn lanes_tag_trace_events() {
        let t = Telemetry::new();
        let t2 = t.clone();
        std::thread::spawn(move || {
            set_lane(3);
            let _s = t2.span("build", "worker-task");
        })
        .join()
        .unwrap();
        let json = t.chrome_trace_json();
        assert!(json.contains("\"tid\": 3"));
    }

    #[test]
    fn counters_merge_across_threads() {
        let t = Telemetry::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        t.incr("work.items");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.counter("work.items"), 400);
    }
}
