//! Offline stand-in for `serde_json`.
//!
//! JSON reading/writing over the [`serde`] stand-in's [`Value`] tree. The
//! API surface matches what this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and the [`Error`] type.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::deserialize(&value)?)
}

// ------------------------------------------------------------------ writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else {
            Err(self.err("invalid number"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn round_trip_containers() {
        let v: Vec<Option<i64>> = vec![Some(1), None, Some(-3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,-3]");
        assert_eq!(from_str::<Vec<Option<i64>>>(&json).unwrap(), v);

        let pairs: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let json = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(String, u64)>>(&json).unwrap(), pairs);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x".into())),
            ("items".into(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\""), "{pretty}");
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_carry_position() {
        let e = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<i64>("\"x\"").is_err());
    }

    #[test]
    fn large_u64_round_trips() {
        let n = u64::MAX;
        let json = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), n);
    }
}
