//! Offline stand-in for `rand`.
//!
//! The build environment has no registry access, so this crate provides the
//! small deterministic-RNG subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool,
//! gen_ratio}`. The generator is SplitMix64 — statistically fine for test
//! input generation, deterministic per seed (sequences differ from the real
//! `rand`'s ChaCha-based `StdRng`, which only matters if a seed were chosen
//! to reproduce a specific upstream sequence).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (`a..b` or `a..=b`). Panics on an
    /// empty range, like the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Returns `true` with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "gen_ratio: invalid ratio {numerator}/{denominator}"
        );
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types with uniform sampling over a bounded interval.
///
/// The `SampleRange` impls are blanket impls over this trait — a single
/// impl per range shape, which is what lets integer-literal fallback infer
/// `gen_range(-9..40)` as `i32` exactly like the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: $t, hi: $t, inclusive: bool, bits: u64) -> $t {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = (hi - lo) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, false, rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "gen_range: empty range");
        T::sample_in(*self.start(), *self.end(), true, rng.next_u64())
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0..100u32) == c.gen_range(0..100u32));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-9..40i64);
            assert!((-9..40).contains(&v));
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            let x = rng.gen_range(-128..=127i8);
            let _ = x;
        }
    }

    #[test]
    fn bool_and_ratio_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "gen_bool(0.25) hit {hits}/10000");
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "gen_ratio(1,4) hit {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
