//! # ipra-obsv — observability for the IPRA pipeline
//!
//! The paper's evaluation (§6) is a causal claim: cycles disappear *because*
//! a web promoted a global, *because* a cluster root hoisted spill code.
//! This crate turns the pipeline's raw observability data into those causal
//! statements:
//!
//! * [`explain`] renders the analyzer [decision
//!   trace](ipra_core::trace::AnalyzerTrace) for one symbol — the chain of
//!   web/cluster/claim decisions that touched a global or procedure,
//! * [`DiffReport`] joins per-procedure [dynamic
//!   attribution](vpr::sim::Attribution) deltas between two configurations
//!   with the directives and trace events that explain them, as a human
//!   table and as deterministic JSON.
//!
//! The data producers live upstream (`ipra_core::analyzer::analyze_traced`,
//! `vpr::sim` with `SimOptions::attribute`); this crate only consumes them,
//! so it can never perturb a compile or a run.

#![warn(missing_docs)]

mod explain;
mod report;

pub use explain::{explain, explain_for, render_event, render_event_for};
pub use report::{DiffReport, ProcDelta, Totals};
