//! Rendering of analyzer trace events as human-readable causal statements.
//!
//! Registers render with their ABI names (`a0`, `sp`, `s3`, …) from the
//! machine description the program was analyzed for, never as raw `r<N>`
//! indices — the same convention `cminc objdump` uses.

use ipra_core::trace::{AnalyzerTrace, TraceEvent};
use vpr::regs::RegSet;
use vpr::target::TargetDesc;

/// Renders a name list, truncating long ones (blanket webs span every
/// procedure in the program).
fn list(names: &[String]) -> String {
    const SHOWN: usize = 6;
    if names.len() <= SHOWN {
        format!("{{{}}}", names.join(", "))
    } else {
        format!("{{{}, … +{} more}}", names[..SHOWN].join(", "), names.len() - SHOWN)
    }
}

/// Renders a register set with the target's ABI names, e.g. `{s0, s1, t3}`.
pub(crate) fn regset_names(set: RegSet, desc: &TargetDesc) -> String {
    let names: Vec<&str> = set.iter().map(|r| desc.reg_name(r)).collect();
    format!("{{{}}}", names.join(", "))
}

/// [`render_event_for`] under the default (VPR) machine description.
pub fn render_event(e: &TraceEvent) -> String {
    render_event_for(e, &vpr::target::VPR)
}

/// Renders one trace event as a single human-readable line, naming
/// registers in `desc`'s ABI convention.
pub fn render_event_for(e: &TraceEvent, desc: &TargetDesc) -> String {
    match e {
        TraceEvent::WebFormed { web, sym, nodes, entries, written, benefit, entry_cost } => {
            format!(
                "web #{web}: formed for global `{sym}` over {} (entries {}), {}; \
                 benefit {benefit}, entry cost {entry_cost}",
                list(nodes),
                list(entries),
                if *written { "written" } else { "read-only" },
            )
        }
        TraceEvent::WebDiscarded { web, sym, nodes, reason, benefit, entry_cost } => {
            let which = match web {
                Some(i) => format!("web #{i}"),
                None => "web".to_string(),
            };
            format!(
                "{which}: discarded for global `{sym}` over {} — {}; \
                 benefit {benefit}, entry cost {entry_cost}",
                list(nodes),
                reason.describe(),
            )
        }
        TraceEvent::WebColored { web, sym, nodes, entries, reg, priority } => {
            format!(
                "web #{web}: global `{sym}` promoted to {} across {} \
                 (loaded at entries {}); priority {priority}",
                desc.reg_name(*reg),
                list(nodes),
                list(entries),
            )
        }
        TraceEvent::WebUncolored { web, sym, nodes } => {
            format!("web #{web}: no register available for `{sym}` over {}", list(nodes))
        }
        TraceEvent::ExitStoreSuppressed { web, sym, entries } => {
            format!(
                "web #{web}: exit store of `{sym}` suppressed at entries {} \
                 (never written inside the web)",
                list(entries),
            )
        }
        TraceEvent::ClusterFormed { root, members } => {
            format!("cluster rooted at `{root}` with members {}", list(members))
        }
        TraceEvent::SpillHoisted { root, regs, members } => {
            format!(
                "MSPILL {} hoisted to cluster root `{root}` on behalf of {}",
                regset_names(*regs, desc),
                list(members)
            )
        }
        TraceEvent::FreeRegsGranted { proc, regs } => {
            format!(
                "`{proc}` granted FREE {} \
                 (save/restore executed by an enclosing cluster root)",
                regset_names(*regs, desc),
            )
        }
        TraceEvent::CallerClaimGranted { proc, claimed, safe_across } => {
            format!(
                "`{proc}`: caller-saves claim {}; safe across its calls {}",
                regset_names(*claimed, desc),
                regset_names(*safe_across, desc),
            )
        }
        TraceEvent::AliasPromotable { sym, justification } => {
            format!("`{sym}` stays promotable despite its address being taken: {justification}")
        }
        TraceEvent::AliasDemoted { sym, justification } => {
            format!("`{sym}` must stay memory-resident: {justification}")
        }
    }
}

/// [`explain_for`] under the default (VPR) machine description.
pub fn explain(trace: &AnalyzerTrace, symbol: &str) -> String {
    explain_for(trace, symbol, &vpr::target::VPR)
}

/// Renders the causal chain for one symbol (a global or a procedure) from a
/// decision trace, one event per line in emission order, naming registers
/// in `desc`'s ABI convention.
pub fn explain_for(trace: &AnalyzerTrace, symbol: &str, desc: &TargetDesc) -> String {
    let events = trace.for_symbol(symbol);
    if events.is_empty() {
        return format!("no analyzer decisions mention `{symbol}`\n");
    }
    let mut out = format!(
        "analyzer decisions mentioning `{symbol}` ({} of {} events):\n",
        events.len(),
        trace.events.len()
    );
    for e in events {
        out.push_str("  - ");
        out.push_str(&render_event_for(e, desc));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr::regs::Reg;

    #[test]
    fn renders_each_event_kind() {
        let mut t = AnalyzerTrace::default();
        t.push(TraceEvent::WebColored {
            web: 3,
            sym: "g".into(),
            nodes: vec!["f".into(), "h".into()],
            entries: vec!["f".into()],
            reg: Reg::new(12),
            priority: 1232,
        });
        t.push(TraceEvent::ClusterFormed { root: "main".into(), members: vec!["f".into()] });
        let text = explain(&t, "f");
        assert!(text.contains("web #3"), "{text}");
        // r12 is s9 in the VPR ABI naming; raw r<N> indices never appear.
        assert!(text.contains("promoted to s9"), "{text}");
        assert!(text.contains("cluster rooted at `main`"), "{text}");
        assert!(explain(&t, "zzz").contains("no analyzer decisions"));
    }

    #[test]
    fn abi_names_follow_the_target_description() {
        let mut t = AnalyzerTrace::default();
        t.push(TraceEvent::WebColored {
            web: 0,
            sym: "g".into(),
            nodes: vec!["f".into()],
            entries: vec!["f".into()],
            reg: Reg::new(8),
            priority: 10,
        });
        let vpr_text = explain_for(&t, "g", &vpr::target::VPR);
        let rv_text = explain_for(&t, "g", &vpr::target::RV32);
        assert!(vpr_text.contains("promoted to s5"), "{vpr_text}");
        assert!(rv_text.contains("promoted to s0"), "{rv_text}");
    }

    #[test]
    fn long_name_lists_truncate() {
        let names: Vec<String> = (0..40).map(|i| format!("p{i}")).collect();
        let rendered = list(&names);
        assert!(rendered.contains("+34 more"), "{rendered}");
        assert!(rendered.len() < 200);
    }
}
