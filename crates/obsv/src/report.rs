//! Explainable diff reports: per-procedure dynamic cost deltas between two
//! configurations, joined with the analyzer decisions that caused them.

use crate::explain::{regset_names, render_event};
use ipra_core::database::{ProcDirectives, ProgramDatabase};
use ipra_core::trace::AnalyzerTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vpr::sim::{Attribution, ProcCost, RunStats};

/// Whole-program totals of one run (the columns the paper's Tables 4–5
/// report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Totals {
    /// Total cycles.
    pub cycles: u64,
    /// Total dynamic loads + stores.
    pub mem_refs: u64,
    /// Total singleton references.
    pub singleton_refs: u64,
    /// Total procedure calls.
    pub calls: u64,
}

impl Totals {
    /// Extracts the totals from a run's statistics.
    pub fn of(stats: &RunStats) -> Totals {
        Totals {
            cycles: stats.cycles,
            mem_refs: stats.mem_refs(),
            singleton_refs: stats.singleton_refs(),
            calls: stats.calls,
        }
    }
}

/// One procedure's cost under both configurations, with the deltas
/// (`b − a`; negative means configuration B saved) and the analyzer
/// decisions that explain them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcDelta {
    /// Procedure link name (or [`vpr::sim::STARTUP_PROC`]).
    pub name: String,
    /// Self cycles under configuration A.
    pub cycles_a: u64,
    /// Self cycles under configuration B.
    pub cycles_b: u64,
    /// `cycles_b − cycles_a`.
    pub cycles_delta: i64,
    /// Self memory references under A.
    pub mem_refs_a: u64,
    /// Self memory references under B.
    pub mem_refs_b: u64,
    /// `mem_refs_b − mem_refs_a`.
    pub mem_refs_delta: i64,
    /// Self singleton references under A.
    pub singleton_refs_a: u64,
    /// Self singleton references under B.
    pub singleton_refs_b: u64,
    /// `singleton_refs_b − singleton_refs_a`.
    pub singleton_refs_delta: i64,
    /// Activations under A.
    pub calls_a: u64,
    /// Activations under B.
    pub calls_b: u64,
    /// Inclusive (self + callees) cycles under A.
    pub inclusive_cycles_a: u64,
    /// Inclusive cycles under B.
    pub inclusive_cycles_b: u64,
    /// Why: configuration B's directives for this procedure, then every
    /// B-trace event mentioning it, rendered as human-readable lines.
    pub reasons: Vec<String>,
}

/// A per-procedure diff of two configurations' dynamic cost, with causes.
///
/// Invariant (checked by [`DiffReport::sums_match`]): the per-procedure
/// columns sum exactly to the whole-program totals on both sides — the
/// attribution is exact, so nothing is lost or double counted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Label of configuration A (the baseline, e.g. `L2`).
    pub config_a: String,
    /// Label of configuration B (the explained configuration, e.g. `C`).
    pub config_b: String,
    /// Whole-program totals under A.
    pub totals_a: Totals,
    /// Whole-program totals under B.
    pub totals_b: Totals,
    /// Per-procedure rows, most cycles saved first (ties by name).
    pub procs: Vec<ProcDelta>,
}

fn delta(b: u64, a: u64) -> i64 {
    b as i64 - a as i64
}

/// Configuration B's directive summary for one procedure, if it deviates
/// from the standard linkage convention.
fn directive_summary(d: &ProcDirectives) -> Option<String> {
    // Reports explain VPR builds; registers render with the VPR ABI names,
    // matching `explain` and `objdump`.
    let desc = &vpr::target::VPR;
    let mut parts: Vec<String> = Vec::new();
    for p in &d.promotions {
        let mut s = format!("holds `{}` in {}", p.sym, desc.reg_name(p.reg));
        if p.is_entry {
            s.push_str(if p.store_at_exit {
                " (web entry; stores back at exit)"
            } else {
                " (web entry; no exit store)"
            });
        }
        parts.push(s);
    }
    if d.is_cluster_root {
        parts.push(format!("cluster root spilling MSPILL {}", regset_names(d.usage.mspill, desc)));
    }
    if !d.usage.free.is_empty() {
        parts.push(format!("FREE {}", regset_names(d.usage.free, desc)));
    }
    if parts.is_empty() {
        None
    } else {
        Some(format!("directives: {}", parts.join("; ")))
    }
}

impl DiffReport {
    /// Builds the report from both runs' attributions and statistics plus
    /// configuration B's program database and decision trace.
    #[allow(clippy::too_many_arguments)] // the join really has seven inputs
    pub fn build(
        config_a: &str,
        config_b: &str,
        attr_a: &Attribution,
        attr_b: &Attribution,
        stats_a: &RunStats,
        stats_b: &RunStats,
        db_b: &ProgramDatabase,
        trace_b: &AnalyzerTrace,
    ) -> DiffReport {
        let names: BTreeSet<&String> = attr_a.procs.keys().chain(attr_b.procs.keys()).collect();
        let mut procs: Vec<ProcDelta> = names
            .into_iter()
            .map(|name| {
                let zero = ProcCost::default();
                let a = attr_a.get(name).unwrap_or(&zero);
                let b = attr_b.get(name).unwrap_or(&zero);
                let mut reasons: Vec<String> = Vec::new();
                if let Some(d) = db_b.get(name) {
                    reasons.extend(directive_summary(d));
                }
                reasons.extend(trace_b.for_symbol(name).iter().map(|e| render_event(e)));
                ProcDelta {
                    name: name.clone(),
                    cycles_a: a.cycles,
                    cycles_b: b.cycles,
                    cycles_delta: delta(b.cycles, a.cycles),
                    mem_refs_a: a.mem_refs(),
                    mem_refs_b: b.mem_refs(),
                    mem_refs_delta: delta(b.mem_refs(), a.mem_refs()),
                    singleton_refs_a: a.singleton_refs(),
                    singleton_refs_b: b.singleton_refs(),
                    singleton_refs_delta: delta(b.singleton_refs(), a.singleton_refs()),
                    calls_a: a.calls,
                    calls_b: b.calls,
                    inclusive_cycles_a: a.inclusive_cycles,
                    inclusive_cycles_b: b.inclusive_cycles,
                    reasons,
                }
            })
            .collect();
        procs.sort_by(|x, y| x.cycles_delta.cmp(&y.cycles_delta).then(x.name.cmp(&y.name)));
        DiffReport {
            config_a: config_a.to_string(),
            config_b: config_b.to_string(),
            totals_a: Totals::of(stats_a),
            totals_b: Totals::of(stats_b),
            procs,
        }
    }

    /// Do the per-procedure columns sum exactly to the whole-program totals
    /// on both sides?
    pub fn sums_match(&self) -> bool {
        let sum = |f: &dyn Fn(&ProcDelta) -> u64| self.procs.iter().map(f).sum::<u64>();
        sum(&|p| p.cycles_a) == self.totals_a.cycles
            && sum(&|p| p.cycles_b) == self.totals_b.cycles
            && sum(&|p| p.mem_refs_a) == self.totals_a.mem_refs
            && sum(&|p| p.mem_refs_b) == self.totals_b.mem_refs
            && sum(&|p| p.singleton_refs_a) == self.totals_a.singleton_refs
            && sum(&|p| p.singleton_refs_b) == self.totals_b.singleton_refs
            && sum(&|p| p.calls_a) == self.totals_a.calls
            && sum(&|p| p.calls_b) == self.totals_b.calls
    }

    /// Serializes the report as deterministic JSON (field order is fixed by
    /// the struct definitions; procedure order by the sort in `build`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying deserialization error message.
    pub fn from_json(text: &str) -> Result<DiffReport, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Renders the human-readable table plus per-procedure explanations.
    pub fn render_table(&self) -> String {
        let (a, b) = (&self.config_a, &self.config_b);
        let mut out = format!("per-procedure breakdown: {a} → {b}\n\n");
        out.push_str(&format!(
            "{:<22} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
            "procedure",
            format!("cycles {a}"),
            format!("cycles {b}"),
            "Δcycles",
            "Δmemrefs",
            "Δsingleton"
        ));
        for p in &self.procs {
            if p.cycles_delta == 0 && p.mem_refs_delta == 0 && p.singleton_refs_delta == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<22} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
                p.name,
                p.cycles_a,
                p.cycles_b,
                p.cycles_delta,
                p.mem_refs_delta,
                p.singleton_refs_delta
            ));
        }
        out.push_str(&format!(
            "{:<22} {:>12} {:>12} {:>10} {:>10} {:>10}\n",
            "total",
            self.totals_a.cycles,
            self.totals_b.cycles,
            delta(self.totals_b.cycles, self.totals_a.cycles),
            delta(self.totals_b.mem_refs, self.totals_a.mem_refs),
            delta(self.totals_b.singleton_refs, self.totals_a.singleton_refs)
        ));
        for p in &self.procs {
            if p.cycles_delta == 0 || p.reasons.is_empty() {
                continue;
            }
            let verb = if p.cycles_delta < 0 { "saved" } else { "gained" };
            out.push_str(&format!(
                "\n`{}` {verb} {} cycles ({} mem refs):\n",
                p.name,
                p.cycles_delta.unsigned_abs(),
                p.mem_refs_delta
            ));
            for r in &p.reasons {
                out.push_str("  - ");
                out.push_str(r);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_core::trace::TraceEvent;
    use vpr::regs::Reg;

    fn cost(cycles: u64, loads: u64, calls: u64) -> ProcCost {
        ProcCost { cycles, loads, calls, inclusive_cycles: cycles, ..ProcCost::default() }
    }

    fn attribution(entries: &[(&str, ProcCost)]) -> (Attribution, RunStats) {
        let mut a = Attribution::default();
        let mut s = RunStats::default();
        for (name, c) in entries {
            a.procs.insert(name.to_string(), *c);
            s.cycles += c.cycles;
            s.loads += c.loads;
            s.calls += c.calls;
        }
        (a, s)
    }

    fn sample() -> DiffReport {
        let (aa, sa) = attribution(&[("f", cost(2000, 100, 3)), ("main", cost(500, 10, 1))]);
        let (ab, sb) = attribution(&[("f", cost(760, 40, 3)), ("main", cost(500, 10, 1))]);
        let mut trace = AnalyzerTrace::default();
        trace.push(TraceEvent::WebColored {
            web: 3,
            sym: "g".into(),
            nodes: vec!["f".into()],
            entries: vec!["f".into()],
            reg: Reg::new(12),
            priority: 120,
        });
        DiffReport::build("L2", "C", &aa, &ab, &sa, &sb, &ProgramDatabase::new(), &trace)
    }

    #[test]
    fn sums_and_ordering() {
        let r = sample();
        assert!(r.sums_match());
        // f saved the most cycles → first row.
        assert_eq!(r.procs[0].name, "f");
        assert_eq!(r.procs[0].cycles_delta, -1240);
        assert_eq!(r.procs[0].mem_refs_delta, -60);
        // The delta is linked to the promotion event (r12 renders as its
        // VPR ABI name, s9).
        assert!(r.procs[0].reasons.iter().any(|s| s.contains("s9")), "{:?}", r.procs[0].reasons);
    }

    #[test]
    fn json_round_trip_and_determinism() {
        let r = sample();
        let j1 = r.to_json();
        let j2 = sample().to_json();
        assert_eq!(j1, j2, "same inputs must serialize identically");
        let back = DiffReport::from_json(&j1).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn table_mentions_cause() {
        let r = sample();
        let t = r.render_table();
        assert!(t.contains("`f` saved 1240 cycles"), "{t}");
        assert!(t.contains("promoted to s9"), "{t}");
        assert!(t.contains("total"), "{t}");
    }

    #[test]
    fn mismatched_totals_fail_the_invariant() {
        let mut r = sample();
        r.totals_a.cycles += 1;
        assert!(!r.sums_match());
    }
}
