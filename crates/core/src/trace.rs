//! The analyzer decision trace: a structured, serializable record of every
//! decision the program analyzer makes — webs formed, discarded (and by
//! which §5/§6.2 heuristic), colored; clusters formed; MSPILL hoisted to a
//! root; exit stores suppressed; caller-saves claims granted.
//!
//! The trace exists for observability only: [`crate::analyzer::analyze`]
//! never records one, and [`crate::analyzer::analyze_traced`] produces a
//! byte-identical [`crate::analyzer::Analysis`] alongside the trace, so
//! enabling tracing can never perturb the program database (the incremental
//! driver's fingerprints depend on that).
//!
//! Events carry procedure and global names (not internal node ids) so a
//! trace is meaningful on its own, after the analyzer's in-memory state is
//! gone. `cminc explain <symbol>` renders the events mentioning one symbol;
//! `cminc report` joins them with per-procedure dynamic cost deltas.

use serde::{Deserialize, Serialize};
use vpr::regs::{Reg, RegSet};

/// Which heuristic discarded a web (paper §6.2 and §7.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiscardReason {
    /// Too few member procedures actually reference the global
    /// (`L_REF` ratio below threshold).
    Sparse,
    /// A single-node web whose weighted reference count is too small to
    /// pay for its entry code.
    Trivial,
    /// Estimated entry cost meets or exceeds the estimated benefit.
    Unprofitable,
    /// A `static`'s web entry landed outside the defining module (§7.4).
    StaticCrossModule,
}

impl DiscardReason {
    /// Short human-readable description of the heuristic.
    pub fn describe(self) -> &'static str {
        match self {
            DiscardReason::Sparse => "too sparse (L_REF ratio below threshold)",
            DiscardReason::Trivial => "trivial singleton (too few weighted references)",
            DiscardReason::Unprofitable => "unprofitable (entry cost >= benefit)",
            DiscardReason::StaticCrossModule => {
                "static's web entry falls outside its defining module (§7.4)"
            }
        }
    }
}

/// One analyzer decision. Web indices refer to the web list of the same
/// analyzer run (`Analysis::webs`); statically discarded webs (§7.4) never
/// enter that list, so their `web` is `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A web was identified for `sym` over `nodes` (§4.1.1).
    WebFormed {
        /// Index into the run's web list.
        web: usize,
        /// The global's link name.
        sym: String,
        /// Member procedure names.
        nodes: Vec<String>,
        /// Entry procedure names.
        entries: Vec<String>,
        /// Does any member write the global?
        written: bool,
        /// Estimated dynamic references saved inside the web.
        benefit: u64,
        /// Estimated load/store/save/restore cost at web entries.
        entry_cost: u64,
    },
    /// A web was discarded before coloring.
    WebDiscarded {
        /// Index into the run's web list (`None` for §7.4 static discards,
        /// which are dropped before the list is built).
        web: Option<usize>,
        /// The global's link name.
        sym: String,
        /// Member procedure names.
        nodes: Vec<String>,
        /// Which heuristic fired.
        reason: DiscardReason,
        /// Estimated benefit at the time of the decision.
        benefit: u64,
        /// Estimated entry cost at the time of the decision.
        entry_cost: u64,
    },
    /// A web was colored to a dedicated callee-saves register (§4.1.3).
    WebColored {
        /// Index into the run's web list.
        web: usize,
        /// The global's link name.
        sym: String,
        /// Member procedure names.
        nodes: Vec<String>,
        /// Entry procedure names.
        entries: Vec<String>,
        /// The dedicated register.
        reg: Reg,
        /// The web's priority (benefit − entry cost) at coloring time.
        priority: i64,
    },
    /// A web survived the discard heuristics but found no free register.
    WebUncolored {
        /// Index into the run's web list.
        web: usize,
        /// The global's link name.
        sym: String,
        /// Member procedure names.
        nodes: Vec<String>,
    },
    /// A colored web's global is never written inside the web, so its
    /// entries need no store-back at exit (§5).
    ExitStoreSuppressed {
        /// Index into the run's web list.
        web: usize,
        /// The global's link name.
        sym: String,
        /// Entry procedure names that skip the store.
        entries: Vec<String>,
    },
    /// A spill-motion cluster was formed (§4.2).
    ClusterFormed {
        /// The cluster root's procedure name.
        root: String,
        /// Non-root member procedure names.
        members: Vec<String>,
    },
    /// Callee-saves save/restore code for `regs` was hoisted from the
    /// cluster members to the root's prologue/epilogue (MSPILL, §4.2.2).
    SpillHoisted {
        /// The cluster root's procedure name.
        root: String,
        /// The hoisted (MSPILL) register set.
        regs: RegSet,
        /// Member procedure names relieved of the spill code.
        members: Vec<String>,
    },
    /// A procedure may use `regs` without save/restore because an enclosing
    /// cluster root spills them on its behalf (FREE, §4.2.2).
    FreeRegsGranted {
        /// The procedure name.
        proc: String,
        /// The granted (FREE) register set.
        regs: RegSet,
    },
    /// Caller-saves preallocation (§7.6.2): the claim a procedure owns and
    /// the pool registers safe across its calls.
    CallerClaimGranted {
        /// The procedure name.
        proc: String,
        /// Registers this procedure claims for its own values.
        claimed: RegSet,
        /// Pool registers no callee in its subtree claims.
        safe_across: RegSet,
    },
    /// The interprocedural alias analysis kept an address-taken global
    /// promotable that the blanket rule would have rejected.
    AliasPromotable {
        /// The global's link name.
        sym: String,
        /// The points-to justification (why aliasing is harmless).
        justification: String,
    },
    /// The interprocedural alias analysis confirmed a global must stay in
    /// memory, with the witnessing procedure.
    AliasDemoted {
        /// The global's link name.
        sym: String,
        /// The points-to justification (which effect demands memory).
        justification: String,
    },
}

impl TraceEvent {
    /// Does this event mention `symbol` (as a global or a procedure)?
    pub fn mentions(&self, symbol: &str) -> bool {
        let hit = |s: &str| s == symbol;
        let any = |v: &[String]| v.iter().any(|s| hit(s));
        match self {
            TraceEvent::WebFormed { sym, nodes, entries, .. }
            | TraceEvent::WebColored { sym, nodes, entries, .. } => {
                hit(sym) || any(nodes) || any(entries)
            }
            TraceEvent::WebDiscarded { sym, nodes, .. }
            | TraceEvent::WebUncolored { sym, nodes, .. } => hit(sym) || any(nodes),
            TraceEvent::ExitStoreSuppressed { sym, entries, .. } => hit(sym) || any(entries),
            TraceEvent::ClusterFormed { root, members }
            | TraceEvent::SpillHoisted { root, members, .. } => hit(root) || any(members),
            TraceEvent::FreeRegsGranted { proc, .. }
            | TraceEvent::CallerClaimGranted { proc, .. } => hit(proc),
            TraceEvent::AliasPromotable { sym, justification }
            | TraceEvent::AliasDemoted { sym, justification } => {
                hit(sym) || justification.contains(symbol)
            }
        }
    }
}

/// The full decision trace of one analyzer run, in emission order: web
/// events first (in web-index order), then cluster/spill events, then
/// caller-saves claims. The order is deterministic for a given summary and
/// options.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerTrace {
    /// All recorded events.
    pub events: Vec<TraceEvent>,
}

impl AnalyzerTrace {
    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Every event mentioning `symbol`, in emission order.
    pub fn for_symbol(&self, symbol: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.mentions(symbol)).collect()
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying deserialization error message.
    pub fn from_json(text: &str) -> Result<AnalyzerTrace, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalyzerTrace {
        let mut t = AnalyzerTrace::default();
        t.push(TraceEvent::WebFormed {
            web: 0,
            sym: "g1".into(),
            nodes: vec!["B".into(), "D".into()],
            entries: vec!["B".into()],
            written: true,
            benefit: 40,
            entry_cost: 4,
        });
        t.push(TraceEvent::WebColored {
            web: 0,
            sym: "g1".into(),
            nodes: vec!["B".into(), "D".into()],
            entries: vec!["B".into()],
            reg: Reg::new(3),
            priority: 36,
        });
        t.push(TraceEvent::ClusterFormed { root: "r".into(), members: vec!["s".into()] });
        t
    }

    #[test]
    fn symbol_query_finds_globals_and_procs() {
        let t = sample();
        assert_eq!(t.for_symbol("g1").len(), 2);
        assert_eq!(t.for_symbol("B").len(), 2);
        assert_eq!(t.for_symbol("s").len(), 1);
        assert!(t.for_symbol("nothing").is_empty());
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let json = t.to_json();
        let back = AnalyzerTrace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn discard_reasons_describe_themselves() {
        for r in [
            DiscardReason::Sparse,
            DiscardReason::Trivial,
            DiscardReason::Unprofitable,
            DiscardReason::StaticCrossModule,
        ] {
            assert!(!r.describe().is_empty());
        }
    }
}
