//! Stable content fingerprints for incremental recompilation.
//!
//! The paper's recompilation story (§3) hinges on knowing *when* a phase's
//! inputs actually changed: the compiler first phase depends only on a
//! module's source text, and the second phase depends only on the module's
//! IR plus the slice of the program database it consults. The driver keys
//! its [`CompilationCache`](../../ipra_driver/struct.CompilationCache.html)
//! on the 64-bit FNV-1a fingerprints computed here.
//!
//! FNV-1a is not cryptographic — it is a fast, dependency-free, fully
//! deterministic hash whose value is stable across processes, platforms and
//! thread schedules, which is exactly what a build cache key needs. A
//! collision would mean a stale object is reused; at 64 bits over a handful
//! of modules that risk is negligible for a build cache (and any paranoia
//! can be settled by `cargo clean`'s moral equivalent,
//! `CompilationCache::clear`).

/// An incremental FNV-1a 64-bit hasher.
///
/// ```
/// use ipra_core::fingerprint::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_str("module");
/// h.write_u64(42);
/// assert_eq!(h.finish(), {
///     let mut h2 = Fnv64::new();
///     h2.write_str("module");
///     h2.write_u64(42);
///     h2.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher in the initial state.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds a 64-bit integer (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot fingerprint of a string.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(fingerprint_str("abc"), fingerprint_str("abc"));
        assert_ne!(fingerprint_str("abc"), fingerprint_str("abd"));
        assert_ne!(fingerprint_str(""), fingerprint_str("\0"));
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    /// Pins `write` to the published FNV-1a 64-bit reference vectors.
    /// If these move, every on-disk cache key in existence silently
    /// invalidates — treat a failure here as an ABI break, not a test to
    /// update.
    #[test]
    fn raw_write_matches_published_fnv1a_vectors() {
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    /// Byte-pins the length-prefixed string encoding. These values fold in
    /// the 8-byte little-endian length before the bytes, so they differ from
    /// the raw vectors above on purpose.
    #[test]
    fn golden_string_fingerprints() {
        assert_eq!(fingerprint_str(""), 0xa8c7_f832_281a_39c5);
        assert_eq!(fingerprint_str("module"), 0xa298_7d78_245a_346f);
    }
}
