//! The program call graph.
//!
//! Built from the per-module summary files (paper §4: "the program analyzer
//! first reads in all the summary files to construct a call graph for the
//! program"). Nodes are procedures by link name — including *undefined*
//! externals (run-time library routines, §7.2), which are modeled as leaves
//! under the paper's partial-call-graph assumptions. Indirect calls follow
//! §7.3: every procedure whose address has been computed is a potential
//! callee of every procedure that makes indirect calls.
//!
//! The graph also carries the analyzer's *estimated invocation counts*: the
//! paper's normalized heuristic (start nodes seed the flow, counts propagate
//! along edges in SCC-condensation topological order, recursive arcs and
//! arcs to leaf procedures get boosted weights, §6.2), or exact counts from
//! a profile (configurations B and F).

use crate::profile::ProfileData;
use ipra_summary::ProgramSummary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A call graph node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the graph's node vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A call edge with its local (per-activation) frequency estimate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Calling procedure.
    pub from: NodeId,
    /// Called procedure.
    pub to: NodeId,
    /// Loop-depth-weighted local call frequency from the summary, or 1 for
    /// conservatively-added indirect edges.
    pub local_freq: u64,
    /// Was this edge added for a possible indirect call?
    pub indirect: bool,
}

/// A node: one procedure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Link name.
    pub name: String,
    /// Defined in some summarized module (false = external library).
    pub defined: bool,
    /// Defining module (empty for externals).
    pub module: String,
    /// Estimated callee-saves register need (from the summary).
    pub callee_saves_estimate: u32,
    /// Estimated caller-saves register need (from the summary; used by the
    /// caller-saves preallocation extension).
    pub caller_saves_estimate: u32,
}

/// The program call graph plus invocation-count estimates.
#[derive(Debug, Clone)]
pub struct CallGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    by_name: HashMap<String, NodeId>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    /// Strongly connected component index per node.
    scc: Vec<u32>,
    /// Number of SCCs.
    scc_count: u32,
    /// SCC-condensation topological order of nodes (callers before callees,
    /// intra-SCC order arbitrary but deterministic).
    topo: Vec<NodeId>,
    /// Estimated invocations per node.
    call_count: Vec<u64>,
    /// Estimated traversals per edge (parallel to `edges`).
    edge_count: Vec<u64>,
}

/// Boost applied to invocation counts of recursive procedures (§6.2:
/// "increasing the weights on recursive arcs").
const RECURSION_BOOST: u64 = 10;
/// Boost applied to edges targeting leaf procedures (§6.2).
const LEAF_BOOST_NUM: u64 = 2;
/// Saturation cap, so pathological loop nests cannot overflow.
const COUNT_CAP: u64 = 1 << 48;

impl CallGraph {
    /// Builds the call graph from summaries, with heuristic counts, or with
    /// profile counts when `profile` is given.
    pub fn build(summary: &ProgramSummary, profile: Option<&ProfileData>) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        let mut by_name: HashMap<String, NodeId> = HashMap::new();
        let intern = |nodes: &mut Vec<Node>, by_name: &mut HashMap<String, NodeId>, name: &str| {
            if let Some(&id) = by_name.get(name) {
                return id;
            }
            let id = NodeId(nodes.len() as u32);
            nodes.push(Node {
                name: name.to_string(),
                defined: false,
                module: String::new(),
                callee_saves_estimate: 0,
                caller_saves_estimate: 0,
            });
            by_name.insert(name.to_string(), id);
            id
        };

        for p in summary.procs() {
            let id = intern(&mut nodes, &mut by_name, &p.name);
            let n = &mut nodes[id.index()];
            n.defined = true;
            n.module = p.module.clone();
            n.callee_saves_estimate = p.callee_saves_estimate;
            n.caller_saves_estimate = p.caller_saves_estimate;
        }

        let mut edges: Vec<Edge> = Vec::new();
        let mut address_taken: Vec<NodeId> = Vec::new();
        let mut indirect_callers: Vec<NodeId> = Vec::new();
        for p in summary.procs() {
            let from = by_name[&p.name];
            for c in &p.calls {
                let to = intern(&mut nodes, &mut by_name, &c.callee);
                edges.push(Edge { from, to, local_freq: c.freq, indirect: false });
            }
            for t in &p.taken_addresses {
                let id = intern(&mut nodes, &mut by_name, t);
                if !address_taken.contains(&id) {
                    address_taken.push(id);
                }
            }
            if p.makes_indirect_calls {
                indirect_callers.push(from);
            }
        }
        // §7.3: any address-taken procedure may be the target of any
        // indirect call site.
        for &from in &indirect_callers {
            for &to in &address_taken {
                if !edges.iter().any(|e| e.from == from && e.to == to) {
                    edges.push(Edge { from, to, local_freq: 1, indirect: true });
                }
            }
        }

        let n = nodes.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            succs[e.from.index()].push(i);
            preds[e.to.index()].push(i);
        }

        let (scc, scc_count, topo) = sccs(n, &edges, &succs);
        let mut g = CallGraph {
            nodes,
            edges,
            by_name,
            succs,
            preds,
            scc,
            scc_count,
            topo,
            call_count: vec![0; n],
            edge_count: Vec::new(),
        };
        g.edge_count = vec![0; g.edges.len()];
        match profile {
            Some(p) => g.apply_profile(p),
            None => g.estimate_counts(),
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node ids in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The node for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks a node up by link name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of `n` (as edge indices).
    pub fn succ_edges(&self, n: NodeId) -> impl Iterator<Item = (usize, &Edge)> {
        self.succs[n.index()].iter().map(move |&i| (i, &self.edges[i]))
    }

    /// Incoming edges of `n` (as edge indices).
    pub fn pred_edges(&self, n: NodeId) -> impl Iterator<Item = (usize, &Edge)> {
        self.preds[n.index()].iter().map(move |&i| (i, &self.edges[i]))
    }

    /// Distinct successor nodes of `n` (may repeat if parallel edges exist).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[n.index()].iter().map(move |&i| self.edges[i].to)
    }

    /// Distinct predecessor nodes of `n`.
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[n.index()].iter().map(move |&i| self.edges[i].from)
    }

    /// Nodes with no predecessors (the paper's *start nodes*).
    pub fn start_nodes(&self) -> Vec<NodeId> {
        self.node_ids().filter(|n| self.preds[n.index()].is_empty()).collect()
    }

    /// Is `n` on a recursive call chain (nontrivial SCC or self loop)?
    pub fn is_recursive(&self, n: NodeId) -> bool {
        let my = self.scc[n.index()];
        let shared = self.node_ids().any(|m| m != n && self.scc[m.index()] == my);
        shared || self.successors(n).any(|s| s == n)
    }

    /// The SCC index of `n`.
    pub fn scc_of(&self, n: NodeId) -> u32 {
        self.scc[n.index()]
    }

    /// Number of SCCs.
    pub fn scc_count(&self) -> u32 {
        self.scc_count
    }

    /// Nodes in SCC-condensation topological order (callers first).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Estimated (or profiled) invocations of `n`.
    pub fn call_count(&self, n: NodeId) -> u64 {
        self.call_count[n.index()]
    }

    /// Estimated (or profiled) traversals of edge `i`.
    pub fn edge_count(&self, i: usize) -> u64 {
        self.edge_count[i]
    }

    /// Is `n` a leaf procedure (no outgoing calls)?
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.succs[n.index()].is_empty()
    }

    /// The paper's normalized heuristic: start nodes are invoked once;
    /// counts flow along edges as `count(caller) × local_freq`, saturating;
    /// recursive procedures get [`RECURSION_BOOST`]; arcs into leaves are
    /// up-weighted.
    fn estimate_counts(&mut self) {
        for &s in &self.start_nodes() {
            self.call_count[s.index()] = 1;
        }
        // Process in condensation topological order; all cross-SCC
        // predecessors are final by the time an SCC is reached.
        let order = self.topo.clone();
        let mut scc_seen: Vec<bool> = vec![false; self.scc_count as usize];
        for &n in &order {
            let scc = self.scc[n.index()] as usize;
            if !scc_seen[scc] {
                scc_seen[scc] = true;
                // Gather the SCC members.
                let members: Vec<NodeId> =
                    order.iter().copied().filter(|m| self.scc[m.index()] as usize == scc).collect();
                let recursive = members.len() > 1
                    || members.iter().any(|&m| self.successors(m).any(|s| s == m));
                // Incoming flow from outside the SCC.
                let mut incoming: u64 = members
                    .iter()
                    .map(|&m| {
                        self.preds[m.index()]
                            .iter()
                            .map(|&ei| {
                                if self.scc[self.edges[ei].from.index()] as usize == scc {
                                    0
                                } else {
                                    self.edge_count[ei]
                                }
                            })
                            .sum::<u64>()
                    })
                    .sum();
                if incoming == 0 && members.iter().any(|&m| self.preds[m.index()].is_empty()) {
                    incoming = 1; // start node seed
                }
                let mut count = if recursive {
                    incoming.saturating_mul(RECURSION_BOOST).min(COUNT_CAP)
                } else {
                    incoming.min(COUNT_CAP)
                };
                // Leaf procedures get their node weight boosted (they tend
                // to be the hottest); edge counts stay unboosted so the
                // cluster-root heuristic compares real call volumes.
                if members.len() == 1 && self.succs[members[0].index()].is_empty() {
                    count = count.saturating_mul(LEAF_BOOST_NUM).min(COUNT_CAP);
                }
                for &m in &members {
                    self.call_count[m.index()] = count;
                    // Outgoing edge counts from m.
                    for &ei in &self.succs[m.index()] {
                        let e = &self.edges[ei];
                        let c = count.saturating_mul(e.local_freq);
                        self.edge_count[ei] = c.min(COUNT_CAP);
                    }
                }
            }
        }
    }

    fn apply_profile(&mut self, profile: &ProfileData) {
        for (i, e) in self.edges.iter().enumerate() {
            let from = &self.nodes[e.from.index()].name;
            let to = &self.nodes[e.to.index()].name;
            self.edge_count[i] = profile.edge(from, to);
        }
        for n in 0..self.nodes.len() {
            let name = &self.nodes[n].name;
            self.call_count[n] = profile.calls(name).max(
                // Nodes the profile never saw keep a floor of 0; start nodes
                // get 1 (main runs once).
                if self.preds[n].is_empty() { 1 } else { 0 },
            );
        }
    }
}

/// Tarjan SCCs (iterative). Returns `(scc index per node, scc count, nodes
/// in condensation topological order — callers before callees)`.
fn sccs(n: usize, edges: &[Edge], succs: &[Vec<usize>]) -> (Vec<u32>, u32, Vec<NodeId>) {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc = vec![u32::MAX; n];
    let mut scc_count = 0u32;
    let mut counter = 0usize;
    let mut order: Vec<NodeId> = Vec::new(); // reverse condensation topo (callees first)

    #[derive(Clone)]
    struct Frame {
        v: usize,
        edge_pos: usize,
    }

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call_stack = vec![Frame { v: root, edge_pos: 0 }];
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(fr) = call_stack.last_mut() {
            let v = fr.v;
            if fr.edge_pos < succs[v].len() {
                let ei = succs[v][fr.edge_pos];
                fr.edge_pos += 1;
                let w = edges[ei].to.index();
                if index[w] == usize::MAX {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push(Frame { v: w, edge_pos: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc[w] = scc_count;
                        order.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                let lv = low[v];
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    low[parent.v] = low[parent.v].min(lv);
                }
            }
        }
    }
    order.reverse(); // callers before callees
    (scc, scc_count, order)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ipra_summary::{CallRef, ModuleSummary, ProcSummary, ProgramSummary};

    pub(crate) fn proc(name: &str, calls: &[(&str, u64)]) -> ProcSummary {
        ProcSummary {
            name: name.to_string(),
            module: "m".to_string(),
            global_refs: vec![],
            calls: calls.iter().map(|(c, f)| CallRef { callee: c.to_string(), freq: *f }).collect(),
            taken_addresses: vec![],
            makes_indirect_calls: false,
            callee_saves_estimate: 2,
            caller_saves_estimate: 2,
            alias: Default::default(),
        }
    }

    pub(crate) fn summary_of(procs: Vec<ProcSummary>) -> ProgramSummary {
        ProgramSummary {
            modules: vec![ModuleSummary { module: "m".into(), procs, globals: vec![] }],
        }
    }

    #[test]
    fn builds_nodes_and_edges() {
        let s = summary_of(vec![
            proc("main", &[("a", 1), ("b", 2)]),
            proc("a", &[("b", 3)]),
            proc("b", &[]),
        ]);
        let g = CallGraph::build(&s, None);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edges().len(), 3);
        let main = g.by_name("main").unwrap();
        assert_eq!(g.successors(main).count(), 2);
        assert_eq!(g.start_nodes(), vec![main]);
    }

    #[test]
    fn undefined_externals_are_leaf_nodes() {
        let s = summary_of(vec![proc("main", &[("libc_qsort", 1)])]);
        let g = CallGraph::build(&s, None);
        let q = g.by_name("libc_qsort").unwrap();
        assert!(!g.node(q).defined);
        assert!(g.is_leaf(q));
    }

    #[test]
    fn indirect_edges_connect_callers_to_taken_addresses() {
        let mut cmp = proc("cmp", &[]);
        cmp.callee_saves_estimate = 0;
        let mut m = proc("main", &[("sorter", 1)]);
        m.taken_addresses = vec!["cmp".into()];
        let mut sorter = proc("sorter", &[]);
        sorter.makes_indirect_calls = true;
        let s = summary_of(vec![m, sorter, cmp]);
        let g = CallGraph::build(&s, None);
        let sorter = g.by_name("sorter").unwrap();
        let cmp = g.by_name("cmp").unwrap();
        assert!(g.successors(sorter).any(|x| x == cmp));
        assert!(g.succ_edges(sorter).any(|(_, e)| e.indirect));
    }

    #[test]
    fn sccs_and_topo_order() {
        let s = summary_of(vec![
            proc("main", &[("a", 1)]),
            proc("a", &[("b", 1)]),
            proc("b", &[("a", 1), ("c", 1)]), // a <-> b recursive pair
            proc("c", &[]),
        ]);
        let g = CallGraph::build(&s, None);
        let (a, b, c, main) = (
            g.by_name("a").unwrap(),
            g.by_name("b").unwrap(),
            g.by_name("c").unwrap(),
            g.by_name("main").unwrap(),
        );
        assert_eq!(g.scc_of(a), g.scc_of(b));
        assert_ne!(g.scc_of(a), g.scc_of(c));
        assert!(g.is_recursive(a) && g.is_recursive(b));
        assert!(!g.is_recursive(c) && !g.is_recursive(main));
        let pos = |n: NodeId| g.topo_order().iter().position(|&x| x == n).unwrap();
        assert!(pos(main) < pos(a));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn self_loop_is_recursive() {
        let s = summary_of(vec![proc("main", &[("r", 1)]), proc("r", &[("r", 1)])]);
        let g = CallGraph::build(&s, None);
        assert!(g.is_recursive(g.by_name("r").unwrap()));
    }

    #[test]
    fn heuristic_counts_flow_and_boost() {
        let s = summary_of(vec![
            proc("main", &[("mid", 10)]),
            proc("mid", &[("leaf", 10)]),
            proc("leaf", &[]),
        ]);
        let g = CallGraph::build(&s, None);
        let main = g.by_name("main").unwrap();
        let mid = g.by_name("mid").unwrap();
        let leaf = g.by_name("leaf").unwrap();
        assert_eq!(g.call_count(main), 1);
        assert_eq!(g.call_count(mid), 10);
        // 10 (mid count) * 10 (freq) * 2 (leaf boost)
        assert_eq!(g.call_count(leaf), 200);
    }

    #[test]
    fn recursion_boost_applies() {
        let s = summary_of(vec![proc("main", &[("r", 1)]), proc("r", &[("r", 1)])]);
        let g = CallGraph::build(&s, None);
        let r = g.by_name("r").unwrap();
        assert_eq!(g.call_count(r), 10); // 1 incoming × RECURSION_BOOST
    }

    #[test]
    fn counts_saturate() {
        // Deep chain of very hot loops must not overflow.
        let mut procs = vec![proc("main", &[("p0", 10_000)])];
        for i in 0..20 {
            procs.push(proc(&format!("p{i}"), &[(&format!("p{}", i + 1), 10_000)]));
        }
        procs.push(proc("p20", &[]));
        let g = CallGraph::build(&summary_of(procs), None);
        for n in g.node_ids() {
            assert!(g.call_count(n) <= COUNT_CAP);
        }
    }

    #[test]
    fn profile_counts_override_heuristics() {
        let s = summary_of(vec![proc("main", &[("a", 100)]), proc("a", &[])]);
        let mut p = ProfileData::default();
        p.record_edge("main", "a", 7);
        let g = CallGraph::build(&s, Some(&p));
        let a = g.by_name("a").unwrap();
        assert_eq!(g.call_count(a), 7);
        let (i, _) = g.succ_edges(g.by_name("main").unwrap()).next().unwrap();
        assert_eq!(g.edge_count(i), 7);
    }
}
