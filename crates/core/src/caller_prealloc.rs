//! Caller-saves preallocation (paper §7.6.2, after [Chow 88]).
//!
//! The paper's prototype moves only callee-saves spill code; §7.6.2 sketches
//! the complementary extension: "pre-allocate caller-saves registers ... in
//! a bottom-up order ... The total caller-saves register usage for the call
//! tree rooted at each procedure can be communicated to the compiler second
//! phase. This would allow the compiler second phase to keep live values in
//! caller-saves registers across calls that don't make use of those
//! caller-saves registers."
//!
//! The contract here:
//!
//! * Each procedure *claims* a prefix of the fixed [`claim_pool`] ordering,
//!   sized by its summary estimate; the second phase confines its own
//!   caller-saves scratch to that claim.
//! * `tree_caller(P)` is the union of claims over P's entire call tree.
//!   Calls to procedures on recursive chains, through indirect call sites,
//!   or into undefined (library) procedures conservatively clobber the
//!   whole pool — the limitation the paper itself notes.
//! * A caller may then keep a value in a claim-pool register across a call
//!   to `P` when the register avoids `tree_caller(P)` (and sits inside the
//!   caller's own claim).

use crate::callgraph::{CallGraph, NodeId};
use vpr::regs::{Reg, RegSet};
use vpr::target::TargetDesc;

/// The claimable caller-saves registers, in the second phase's selection
/// order: the caller-saves file minus argument registers, the return-value
/// register and the emitter's scratch registers. VPR convention; see
/// [`claim_pool_for`] for the target-parameterized form.
pub fn claim_pool() -> Vec<Reg> {
    claim_pool_for(&vpr::target::VPR)
}

/// The claimable caller-saves registers of `desc`, in hand-out order.
pub fn claim_pool_for(desc: &TargetDesc) -> Vec<Reg> {
    desc.claim_pool.to_vec()
}

/// The full claim pool as a set (VPR convention).
pub fn claim_pool_set() -> RegSet {
    claim_pool().into_iter().collect()
}

/// The full claim pool of `desc` as a set.
pub fn claim_pool_set_for(desc: &TargetDesc) -> RegSet {
    desc.claim_pool_set()
}

/// The claim of one node: the first `estimate` registers of the pool.
pub fn own_claim(graph: &CallGraph, n: NodeId) -> RegSet {
    own_claim_for(graph, n, &vpr::target::VPR)
}

/// [`own_claim`] against `desc`'s claim pool.
pub fn own_claim_for(graph: &CallGraph, n: NodeId, desc: &TargetDesc) -> RegSet {
    if !graph.node(n).defined {
        return claim_pool_set_for(desc); // library code may use anything
    }
    claim_pool_for(desc).into_iter().take(graph.node(n).caller_saves_estimate as usize).collect()
}

/// Computes `tree_caller` for every node: the claim-pool registers a call
/// to that node may clobber, transitively (VPR convention).
pub fn compute_tree_caller(graph: &CallGraph) -> Vec<RegSet> {
    compute_tree_caller_for(graph, &vpr::target::VPR)
}

/// [`compute_tree_caller`] against `desc`'s claim pool.
pub fn compute_tree_caller_for(graph: &CallGraph, desc: &TargetDesc) -> Vec<RegSet> {
    let n = graph.len();
    let mut tree: Vec<RegSet> = vec![RegSet::new(); n];
    // Bottom-up over the condensation; recursive SCCs clobber everything
    // (re-entry makes per-activation claims meaningless).
    let order: Vec<NodeId> = graph.topo_order().iter().rev().copied().collect();
    for &p in &order {
        let mut acc = own_claim_for(graph, p, desc);
        if graph.is_recursive(p) || !graph.node(p).defined {
            acc = claim_pool_set_for(desc);
        } else {
            for s in graph.successors(p) {
                acc |= tree[s.index()];
            }
        }
        tree[p.index()] = acc;
    }
    // Within SCCs a single pass may under-approximate; iterate to fixpoint
    // (recursive nodes are already saturated, so this is cheap).
    loop {
        let mut changed = false;
        for &p in &order {
            if graph.is_recursive(p) {
                continue;
            }
            let mut acc = tree[p.index()];
            for s in graph.successors(p) {
                acc |= tree[s.index()];
            }
            if acc != tree[p.index()] {
                tree[p.index()] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::tests::{proc, summary_of};

    #[test]
    fn chain_accumulates_claims() {
        // main -> a -> b; estimates are 2 each (test helper default).
        let s = summary_of(vec![proc("main", &[("a", 1)]), proc("a", &[("b", 1)]), proc("b", &[])]);
        let g = CallGraph::build(&s, None);
        let tree = compute_tree_caller(&g);
        let b = g.by_name("b").unwrap();
        let a = g.by_name("a").unwrap();
        // b's tree = its own claim (first 2 pool registers).
        assert_eq!(tree[b.index()], own_claim(&g, b));
        assert_eq!(tree[b.index()].len(), 2);
        // a's tree = a's claim ∪ b's — same first-2 prefix here.
        assert_eq!(tree[a.index()], own_claim(&g, a) | tree[b.index()]);
        // Three registers stay safe across a call to b.
        let safe = claim_pool_set() - tree[b.index()];
        assert_eq!(safe.len(), 3);
    }

    #[test]
    fn recursion_clobbers_everything() {
        let s = summary_of(vec![proc("main", &[("r", 1)]), proc("r", &[("r", 1)])]);
        let g = CallGraph::build(&s, None);
        let tree = compute_tree_caller(&g);
        let r = g.by_name("r").unwrap();
        assert_eq!(tree[r.index()], claim_pool_set());
        // And it propagates up.
        let main = g.by_name("main").unwrap();
        assert_eq!(tree[main.index()], claim_pool_set());
    }

    #[test]
    fn undefined_callees_clobber_everything() {
        let s = summary_of(vec![proc("main", &[("libc", 1)])]);
        let g = CallGraph::build(&s, None);
        let tree = compute_tree_caller(&g);
        let libc = g.by_name("libc").unwrap();
        assert_eq!(tree[libc.index()], claim_pool_set());
    }

    #[test]
    fn leaf_with_zero_estimate_is_fully_safe() {
        let mut leaf = proc("leaf", &[]);
        leaf.caller_saves_estimate = 0;
        let s = summary_of(vec![proc("main", &[("leaf", 1)]), leaf]);
        let g = CallGraph::build(&s, None);
        let tree = compute_tree_caller(&g);
        let l = g.by_name("leaf").unwrap();
        assert!(tree[l.index()].is_empty());
        assert_eq!((claim_pool_set() - tree[l.index()]).len(), 5);
    }

    #[test]
    fn pool_is_disjoint_from_args_rv_scratch() {
        let pool = claim_pool_set();
        for a in Reg::ARGS {
            assert!(!pool.contains(a));
        }
        assert!(!pool.contains(Reg::RV));
        assert!(!pool.contains(Reg::AT));
        assert!(!pool.contains(Reg::new(31)));
        assert!(pool.is_subset(RegSet::caller_saves()));
    }
}
