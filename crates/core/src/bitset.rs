//! A compact bitset over small integer ids, used for the dataflow sets
//! (`L_REF`/`P_REF`/`C_REF`) and node sets throughout the analyzer.

/// A fixed-capacity bitset.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set holding ids `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let added = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        added
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` in; returns whether anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Intersects with `other` in place.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| w & (1 << b) != 0).map(move |b| wi * 64 + b)
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(0));
        assert!(s.insert(99));
        assert!(!s.insert(99));
        assert!(s.contains(99));
        assert!(!s.contains(50));
        assert!(!s.contains(1000));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.remove(12345));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn union_and_intersect() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 65]);
    }

    #[test]
    fn debug_format() {
        let mut s = BitSet::new(8);
        s.insert(3);
        assert_eq!(format!("{s:?}"), "{3}");
        assert!(BitSet::new(8).is_empty());
        assert_eq!(BitSet::new(8).capacity(), 8);
    }
}
