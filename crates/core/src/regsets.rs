//! Register usage sets and spill code preallocation (paper §4.2.3–§4.2.4,
//! Figure 6).
//!
//! Every procedure ends up with four disjoint register classes:
//!
//! * `FREE` — usable without save/restore, and may hold values across calls
//!   (some cluster root above spills them);
//! * `CALLER` — usable without save/restore, but not live across calls;
//! * `CALLEE` — usable, but must be saved/restored by the procedure itself
//!   if used;
//! * `MSPILL` — must be saved on entry and restored on exit *whether used or
//!   not*; only cluster roots carry a non-empty `MSPILL`. These registers
//!   behave like `CALLER` registers locally (they may not hold values
//!   across calls into the cluster).
//!
//! Cluster roots are processed bottom-up. Within a cluster, `AVAIL` flows
//! from the root through the members by intersection over predecessors;
//! members pre-allocate `FREE` registers from it, nested roots migrate their
//! `MSPILL` upward, and everything consumed lands in the current root's
//! `MSPILL`. A post-pass widens member `CALLER` sets with
//! `AVAIL[Q] ∩ MSPILL[R]` (the Figure 7 diamond optimization).
//!
//! Interaction with promoted webs: registers dedicated to a web are removed
//! from the root's `AVAIL` for the whole cluster (the paper's conservative
//! prototype), or — with `precise` set, the §7.6.2 refinement — only from
//! `AVAIL` at the web's own member nodes, letting the register circulate
//! along cluster paths where the global is not live.

use crate::callgraph::{CallGraph, NodeId};
use crate::cluster::Clustering;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vpr::regs::{Reg, RegSet};
use vpr::target::TargetDesc;

/// The per-procedure register directive set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegUsage {
    /// Free preserved registers (spilled by an ancestor cluster root).
    pub free: RegSet,
    /// Caller-saves-behaving registers.
    pub caller: RegSet,
    /// Classic callee-saves registers (save if used).
    pub callee: RegSet,
    /// Must-spill registers (cluster roots only).
    pub mspill: RegSet,
}

impl RegUsage {
    /// The standard linkage convention (no interprocedural information),
    /// for the VPR target.
    pub fn standard() -> RegUsage {
        RegUsage::standard_for(&vpr::target::VPR)
    }

    /// The standard linkage convention of `desc`.
    pub fn standard_for(desc: &TargetDesc) -> RegUsage {
        RegUsage {
            free: RegSet::new(),
            caller: desc.caller_saves,
            callee: desc.callee_saves,
            mspill: RegSet::new(),
        }
    }

    /// Removes `regs` (e.g. web-dedicated registers) from every class.
    pub fn exclude(&self, regs: RegSet) -> RegUsage {
        RegUsage {
            free: self.free - regs,
            caller: self.caller - regs,
            callee: self.callee - regs,
            mspill: self.mspill, // must-spill stays: the root still saves it
        }
    }
}

/// Computes register usage sets for every node.
///
/// `web_regs[n]` holds the registers dedicated to promoted globals at node
/// `n`; `precise` selects the §7.6.2 refinement over the conservative
/// whole-cluster exclusion.
pub fn compute_register_sets(
    graph: &CallGraph,
    clustering: &Clustering,
    web_regs: &[RegSet],
    precise: bool,
) -> Vec<RegUsage> {
    compute_register_sets_for(graph, clustering, web_regs, precise, &vpr::target::VPR)
}

/// [`compute_register_sets`] against an explicit machine description: the
/// callee-saves universe the clusters draw from is `desc`'s.
pub fn compute_register_sets_for(
    graph: &CallGraph,
    clustering: &Clustering,
    web_regs: &[RegSet],
    precise: bool,
    desc: &TargetDesc,
) -> Vec<RegUsage> {
    let n = graph.len();
    assert_eq!(web_regs.len(), n, "web_regs must cover every node");
    let mut usage: Vec<RegUsage> = vec![RegUsage::standard_for(desc); n];

    // Bottom-up over cluster roots (clusters are stored in root topological
    // order, so reverse iteration is bottom-up).
    for cluster in clustering.clusters.iter().rev() {
        let root = cluster.root;
        let in_cluster = |x: NodeId| cluster.contains(x);

        // Registers already in the MSPILL of nested roots: selected last so
        // they stay available for upward migration.
        let mut child_mspill = RegSet::new();
        for &m in &cluster.members {
            if clustering.is_root(m) {
                child_mspill |= usage[m.index()].mspill;
            }
        }
        let priority: Vec<Reg> = desc
            .callee_saves
            .iter()
            .filter(|r| !child_mspill.contains(*r))
            .chain(desc.callee_saves.iter().filter(|r| child_mspill.contains(*r)))
            .collect();

        // Select the root's own callee-saves registers by its estimate,
        // never picking a register dedicated to a web at the root itself
        // (it holds a promoted global there and cannot serve local values).
        let est = graph.node(root).callee_saves_estimate as usize;
        let root_callee: RegSet = priority
            .iter()
            .copied()
            .filter(|r| !web_regs[root.index()].contains(*r))
            .take(est)
            .collect();
        usage[root.index()].callee = root_callee;
        let mut avail_root = desc.callee_saves - root_callee;
        if precise {
            avail_root -= web_regs[root.index()];
        } else {
            // Conservative: any register promoted over any cluster node is
            // unavailable throughout the cluster.
            avail_root -= web_regs[root.index()];
            for &m in &cluster.members {
                avail_root -= web_regs[m.index()];
            }
        }

        // Figure 6's Preallocate_Node, iteratively: visit nodes once all
        // their in-cluster predecessors are visited.
        let mut avail: HashMap<NodeId, RegSet> = HashMap::new();
        let mut visited: HashMap<NodeId, bool> = HashMap::new();
        let mut used = RegSet::new();
        avail.insert(root, avail_root);

        let mut work = vec![root];
        while let Some(node) = work.pop() {
            if visited.get(&node).copied().unwrap_or(false) {
                continue;
            }
            if node != root {
                // All in-cluster preds must be visited (guaranteed by the
                // scheduling below, but re-checked for safety).
                if !graph
                    .predecessors(node)
                    .all(|p| !in_cluster(p) || visited.get(&p).copied().unwrap_or(false))
                {
                    continue;
                }
                // AVAIL[N] = ∩ AVAIL[P] over immediate predecessors.
                let mut a: Option<RegSet> = None;
                for p in graph.predecessors(node) {
                    if !in_cluster(p) {
                        continue;
                    }
                    let pa = avail.get(&p).copied().unwrap_or(RegSet::new());
                    a = Some(match a {
                        None => pa,
                        Some(x) => x & pa,
                    });
                }
                let mut a = a.unwrap_or_default();
                if precise {
                    a -= web_regs[node.index()];
                }
                avail.insert(node, a);
            }
            visited.insert(node, true);

            let a_in = avail[&node];
            let u = &mut usage[node.index()];
            if node != root && clustering.is_root(node) {
                // A *recursive* root is only sound because it executes its
                // own spill code on every activation (§4.2.2, footnote 4);
                // migrating its MSPILL upward or trading its CALLEE saves
                // for FREE registers would remove that per-activation code
                // and let recursive re-entries clobber live values. Leave it
                // untouched — and since it saves everything it uses, its
                // AVAIL passes through unchanged.
                if !graph.is_recursive(node) {
                    // Nested root: migrate its MSPILL upward where possible
                    // and cover its own callee-saves need for free.
                    let migrate = u.mspill & a_in;
                    used |= migrate;
                    u.mspill -= a_in;
                    let free = u.callee & a_in;
                    used |= free;
                    u.free |= free;
                    u.callee -= free;
                    // Everything the nested root consumed stays live
                    // throughout its subtree, so successors must not
                    // re-allocate it: publish the reduced AVAIL exactly like
                    // the ordinary-member branch does.
                    avail.insert(node, a_in - (migrate | free));
                }
            } else if node != root {
                // Ordinary member: pre-allocate FREE registers.
                let need = graph.node(node).callee_saves_estimate as usize;
                let mut free = RegSet::new();
                for &r in &priority {
                    if free.len() >= need {
                        break;
                    }
                    if a_in.contains(r) {
                        free.insert(r);
                    }
                }
                let a_out = a_in - free;
                u.free |= free;
                u.callee -= free | a_out;
                used |= free;
                avail.insert(node, a_out);
            }

            // Schedule successors whose in-cluster preds are all visited.
            for s in graph.successors(node) {
                if s != node
                    && in_cluster(s)
                    && s != root
                    && !visited.get(&s).copied().unwrap_or(false)
                    && graph
                        .predecessors(s)
                        .all(|p| !in_cluster(p) || visited.get(&p).copied().unwrap_or(false))
                {
                    work.push(s);
                }
            }
        }

        usage[root.index()].mspill |= used;

        // Post-pass (Figure 7): members may use root-spilled registers that
        // stayed available on their paths as caller-saves scratch.
        let root_mspill = usage[root.index()].mspill;
        for &q in &cluster.members {
            if !clustering.is_root(q) {
                let extra = avail.get(&q).copied().unwrap_or(RegSet::new()) & root_mspill;
                usage[q.index()].caller |= extra;
            }
        }
    }

    // Finally, exclude web-dedicated registers from each node's classes.
    for node in graph.node_ids() {
        let w = web_regs[node.index()];
        if !w.is_empty() {
            usage[node.index()] = usage[node.index()].exclude(w);
        }
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{identify_clusters, ClusterHeuristics};
    use crate::dataflow::testutil::summary;
    use ipra_summary::ProgramSummary;

    fn build(s: &ProgramSummary) -> (CallGraph, Clustering) {
        let g = CallGraph::build(s, None);
        let c = identify_clusters(&g, &ClusterHeuristics::default());
        (g, c)
    }

    fn no_webs(g: &CallGraph) -> Vec<RegSet> {
        vec![RegSet::new(); g.len()]
    }

    fn node(g: &CallGraph, n: &str) -> NodeId {
        g.by_name(n).unwrap()
    }

    /// Invariants every correct result satisfies.
    fn check_invariants(g: &CallGraph, c: &Clustering, usage: &[RegUsage]) {
        for n in g.node_ids() {
            let u = &usage[n.index()];
            // Classes are disjoint.
            assert!(u.free.is_disjoint(u.caller), "{n}: free/caller overlap");
            assert!(u.free.is_disjoint(u.callee), "{n}: free/callee overlap");
            assert!(u.caller.is_disjoint(u.callee), "{n}: caller/callee overlap");
            // FREE and MSPILL contain only callee-saves registers.
            assert!(u.free.is_subset(RegSet::callee_saves()));
            assert!(u.mspill.is_subset(RegSet::callee_saves()));
            // Only cluster roots may carry MSPILL.
            if !u.mspill.is_empty() {
                assert!(c.is_root(n), "{n} has MSPILL but is not a root");
            }
        }
        // A callee's FREE registers are clobbered without save, and a
        // caller's FREE registers may hold values across calls — so along
        // any call edge the two sets must be disjoint (the miscompile the
        // differential fuzzer caught: a nested root and its callee both
        // granted the same FREE register).
        for p in g.node_ids() {
            for q in g.successors(p) {
                if p == q {
                    continue;
                }
                assert!(
                    usage[p.index()].free.is_disjoint(usage[q.index()].free),
                    "call edge {p}->{q}: FREE sets overlap ({} vs {})",
                    usage[p.index()].free,
                    usage[q.index()].free
                );
            }
        }
        // Every FREE register of a member is covered by the MSPILL of some
        // root on its cluster chain (the direct root, or an outer root the
        // spill migrated to).
        for cl in &c.clusters {
            let mut chain_mspill = usage[cl.root.index()].mspill;
            // Collect MSPILL of every cluster that (transitively) contains
            // this cluster's root as a member.
            let mut roots = vec![cl.root];
            loop {
                let mut grew = false;
                for outer in &c.clusters {
                    if roots.iter().any(|r| outer.members.contains(r))
                        && !roots.contains(&outer.root)
                    {
                        roots.push(outer.root);
                        chain_mspill |= usage[outer.root.index()].mspill;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            for &m in &cl.members {
                let free = usage[m.index()].free;
                assert!(
                    free.is_subset(chain_mspill),
                    "member {m} FREE {free} not covered by cluster-chain MSPILL {chain_mspill}"
                );
            }
        }
    }

    #[test]
    fn simple_cluster_moves_spill_to_root() {
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("s", 100), ("t", 100)], &[]),
                ("s", &[], &[]),
                ("t", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let usage = compute_register_sets(&g, &c, &no_webs(&g), false);
        check_invariants(&g, &c, &usage);

        let (r, s_, t) = (node(&g, "r"), node(&g, "s"), node(&g, "t"));
        // Members (estimate 2 each) got FREE registers.
        assert_eq!(usage[s_.index()].free.len(), 2);
        assert_eq!(usage[t.index()].free.len(), 2);
        // Siblings share the same registers (AVAIL flows to both).
        assert_eq!(usage[s_.index()].free, usage[t.index()].free);
        // Root spills exactly those.
        assert_eq!(usage[r.index()].mspill, usage[s_.index()].free);
        // Root's own callee-saves were selected by its estimate.
        assert_eq!(usage[r.index()].callee.len(), 2);
        // Root CALLEE and member FREE are disjoint.
        assert!(usage[r.index()].callee.is_disjoint(usage[s_.index()].free));
        // main is untouched.
        assert_eq!(usage[node(&g, "main").index()], RegUsage::standard());
    }

    #[test]
    fn figure7_diamond_caller_augmentation() {
        // J roots {K, L, M}; K and L each need 1, M needs 2. Registers that
        // J spills but that are AVAIL and unused at K become caller-saves
        // scratch there.
        let mut s = summary(
            &[
                ("main", &[("j", 1)], &[]),
                ("j", &[("k", 50), ("l", 50)], &[]),
                ("k", &[("m", 10)], &[]),
                ("l", &[("m", 10)], &[]),
                ("m", &[], &[]),
            ],
            &[],
        );
        // Set estimates: k=1, l=2, m=1.
        for p in &mut s.modules[0].procs {
            p.callee_saves_estimate = match p.name.as_str() {
                "k" | "m" => 1,
                "l" => 2,
                "j" => 2,
                _ => 2,
            };
        }
        let (g, c) = build(&s);
        let usage = compute_register_sets(&g, &c, &no_webs(&g), false);
        check_invariants(&g, &c, &usage);
        let (j, k, l, m) = (node(&g, "j"), node(&g, "k"), node(&g, "l"), node(&g, "m"));

        assert_eq!(usage[k.index()].free.len(), 1);
        assert_eq!(usage[l.index()].free.len(), 2);
        assert_eq!(usage[m.index()].free.len(), 1);
        // M's FREE must avoid K's and L's (it is downstream of both).
        assert!(usage[m.index()].free.is_disjoint(usage[k.index()].free));
        assert!(usage[m.index()].free.is_disjoint(usage[l.index()].free));
        // The paper's Figure 7 point: a register in MSPILL[J] that is not
        // allocated at K (L grabbed it) becomes caller-saves scratch at K.
        let extra_at_k = usage[k.index()].caller & usage[j.index()].mspill;
        assert!(!extra_at_k.is_empty(), "K should gain caller-saves scratch from J's MSPILL");
        // MSPILL[J] covers all member FREE sets.
        let all_free = usage[k.index()].free | usage[l.index()].free | usage[m.index()].free;
        assert!(all_free.is_subset(usage[j.index()].mspill));
    }

    #[test]
    fn nested_cluster_mspill_migrates_upward() {
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("s", 50)], &[]),
                ("s", &[("x", 50), ("y", 50)], &[]),
                ("x", &[], &[]),
                ("y", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let usage = compute_register_sets(&g, &c, &no_webs(&g), false);
        check_invariants(&g, &c, &usage);
        let (r, s_) = (node(&g, "r"), node(&g, "s"));
        // s roots the inner cluster but r's cluster covers s: s's MSPILL
        // migrated up to r, so s spills nothing itself.
        assert!(
            usage[s_.index()].mspill.is_empty(),
            "inner root MSPILL should fully migrate: {:?}",
            usage[s_.index()]
        );
        assert!(!usage[r.index()].mspill.is_empty());
        // x's free regs are covered by r's MSPILL now.
        let x = node(&g, "x");
        assert!(usage[x.index()].free.is_subset(usage[r.index()].mspill));
    }

    #[test]
    fn web_registers_conservative_vs_precise() {
        use vpr::regs::Reg;
        // Cluster r -> {s, t}; a web reserves r3 at s only. The root itself
        // needs no callee-saves registers, so r3 would otherwise circulate.
        let mut s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("s", 100), ("t", 100)], &[]),
                ("s", &[], &[]),
                ("t", &[], &[]),
            ],
            &[],
        );
        for p in &mut s.modules[0].procs {
            if p.name == "r" || p.name == "main" {
                p.callee_saves_estimate = 0;
            }
        }
        let (g, c) = build(&s);
        let mut web_regs = no_webs(&g);
        let mut set = RegSet::new();
        set.insert(Reg::new(3));
        web_regs[node(&g, "s").index()] = set;

        let conservative = compute_register_sets(&g, &c, &web_regs, false);
        let precise = compute_register_sets(&g, &c, &web_regs, true);
        check_invariants(&g, &c, &conservative);
        check_invariants(&g, &c, &precise);

        let t = node(&g, "t");
        let s_ = node(&g, "s");
        // Conservative: r3 circulates nowhere in the cluster.
        assert!(!conservative[t.index()].free.contains(Reg::new(3)));
        assert!(!conservative[s_.index()].free.contains(Reg::new(3)));
        // Precise: r3 may be FREE at t (the web is not live there)…
        assert!(precise[t.index()].free.contains(Reg::new(3)), "{:?}", precise[t.index()]);
        // …but never at the web node s.
        assert!(!precise[s_.index()].free.contains(Reg::new(3)));
        // In both modes no class of s contains the web register.
        for u in [&conservative[s_.index()], &precise[s_.index()]] {
            assert!(!u.free.contains(Reg::new(3)));
            assert!(!u.caller.contains(Reg::new(3)));
            assert!(!u.callee.contains(Reg::new(3)));
        }
    }

    #[test]
    fn no_clusters_means_standard_sets_minus_webs() {
        use vpr::regs::Reg;
        let s = summary(&[("main", &[("leaf", 1)], &["g"]), ("leaf", &[], &["g"])], &["g"]);
        let (g, c) = build(&s);
        assert!(c.clusters.is_empty());
        let mut web_regs = no_webs(&g);
        let mut set = RegSet::new();
        set.insert(Reg::new(3));
        web_regs[node(&g, "main").index()] = set;
        web_regs[node(&g, "leaf").index()] = set;
        let usage = compute_register_sets(&g, &c, &web_regs, false);
        for n in [node(&g, "main"), node(&g, "leaf")] {
            assert!(!usage[n.index()].callee.contains(Reg::new(3)));
            assert_eq!(usage[n.index()].callee.len(), 15);
            assert_eq!(usage[n.index()].caller, RegSet::caller_saves());
        }
    }

    /// The miscompile the differential fuzzer found (reduced): `main`
    /// roots an outer cluster whose members `f2` and `f1` are themselves
    /// nested roots, and `f2` calls `f1`. The nested-root branch must
    /// publish its reduced AVAIL, or `f1` inherits `f2`'s converted FREE
    /// register through the predecessor intersection and both end up
    /// clobbering the same unsaved register — caller live value lost.
    #[test]
    fn chained_nested_roots_get_disjoint_free_registers() {
        let mut s = summary(
            &[
                ("main", &[("f2", 1), ("f1", 1)], &[]),
                ("f2", &[("f1", 100), ("f0", 100)], &[]),
                ("f1", &[("f3", 300)], &[]),
                ("f0", &[], &[]),
                ("f3", &[], &[]),
            ],
            &[],
        );
        for p in &mut s.modules[0].procs {
            p.callee_saves_estimate = if p.name == "main" { 0 } else { 1 };
        }
        let (g, c) = build(&s);
        let (f1, f2) = (node(&g, "f1"), node(&g, "f2"));
        // The shape under test: both callees of main are roots in their own
        // right, nested inside a cluster rooted at main.
        assert!(c.is_root(node(&g, "main")) && c.is_root(f1) && c.is_root(f2), "{c:?}");
        let usage = compute_register_sets(&g, &c, &no_webs(&g), false);
        check_invariants(&g, &c, &usage);
        // f2 converted its CALLEE save into a FREE grant from main's
        // MSPILL; f1, downstream of f2, must not receive the same register.
        assert!(!usage[f2.index()].free.is_empty(), "{:?}", usage[f2.index()]);
        assert!(
            usage[f2.index()].free.is_disjoint(usage[f1.index()].free),
            "caller {:?} / callee {:?} share a FREE register",
            usage[f2.index()],
            usage[f1.index()]
        );
    }

    /// A recursive nested root keeps its own spill code (§4.2.2 footnote
    /// 4): nothing migrates upward and no CALLEE save is traded for FREE,
    /// or recursive re-entries would clobber live values the root no
    /// longer saves per activation.
    #[test]
    fn recursive_nested_root_keeps_its_spill_code() {
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("r", 40), ("s", 100), ("t", 100)], &[]),
                ("s", &[], &[]),
                ("t", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let r = node(&g, "r");
        assert!(g.is_recursive(r));
        assert!(c.is_root(r), "{c:?}");
        let usage = compute_register_sets(&g, &c, &no_webs(&g), false);
        check_invariants(&g, &c, &usage);
        // r still saves its members' FREE registers itself on every
        // activation, and converted none of its own CALLEE saves to FREE.
        let s_free = usage[node(&g, "s").index()].free;
        assert!(s_free.is_subset(usage[r.index()].mspill), "{:?}", usage[r.index()]);
        assert!(usage[r.index()].free.is_empty(), "{:?}", usage[r.index()]);
    }

    #[test]
    fn member_estimate_larger_than_avail_is_clipped() {
        let mut s =
            summary(&[("main", &[("r", 1)], &[]), ("r", &[("s", 100)], &[]), ("s", &[], &[])], &[]);
        for p in &mut s.modules[0].procs {
            p.callee_saves_estimate = 16; // wants everything
        }
        let (g, c) = build(&s);
        let usage = compute_register_sets(&g, &c, &no_webs(&g), false);
        check_invariants(&g, &c, &usage);
        let (r, s_) = (node(&g, "r"), node(&g, "s"));
        // Root takes all 16 as CALLEE; nothing remains for members.
        assert_eq!(usage[r.index()].callee.len(), 16);
        assert!(usage[s_.index()].free.is_empty());
    }
}
