//! # ipra-core — interprocedural register allocation
//!
//! The primary contribution of *Register Allocation Across Procedure and
//! Module Boundaries* (Santhanam & Odnert, PLDI 1990): a **program
//! analyzer** that reads per-module summary files, builds the program call
//! graph, and computes register allocation directives that a compiler
//! second phase applies while compiling each module independently.
//!
//! Two algorithms do the work:
//!
//! * **Global variable promotion** ([`dataflow`], [`webs`], [`color`]) —
//!   eligible globals are partitioned into call-graph *webs* and colored
//!   onto callee-saves registers, so one register serves different globals
//!   in disjoint program regions (§4.1).
//! * **Spill code motion** ([`cluster`], [`regsets`]) — call-intensive
//!   regions become *clusters* whose root executes the callee-saves
//!   save/restore code for all members, giving members free registers
//!   (§4.2).
//!
//! The entry point is [`analyzer::analyze`]; its output is a
//! [`database::ProgramDatabase`] of per-procedure directives.
//!
//! ```
//! use ipra_core::analyzer::{analyze, AnalyzerOptions};
//! use ipra_summary::ProgramSummary;
//!
//! // Empty program: the analyzer still runs and yields an empty database.
//! let analysis = analyze(&ProgramSummary::default(), &AnalyzerOptions::default());
//! assert!(analysis.database.is_empty());
//! ```

#![warn(missing_docs)]

pub mod analyzer;
pub mod bitset;
pub mod caller_prealloc;
pub mod callgraph;
pub mod cluster;
pub mod color;
pub mod database;
pub mod dataflow;
pub mod dot;
pub mod fingerprint;
pub mod profile;
pub mod regsets;
pub mod trace;
pub mod webs;

pub use analyzer::{
    analyze, analyze_traced, Analysis, AnalyzerOptions, AnalyzerStats, PaperConfig, PromotionMode,
    WebReport,
};
pub use callgraph::{CallGraph, NodeId};
pub use database::{ProcDirectives, ProgramDatabase, Promotion};
pub use profile::ProfileData;
pub use regsets::RegUsage;
pub use trace::{AnalyzerTrace, DiscardReason, TraceEvent};
