//! The program database (paper §4.3).
//!
//! The analyzer's output: one entry per procedure, holding the promoted
//! globals (with their dedicated registers and web-entry flags) and the
//! four register usage sets. The compiler second phase queries this
//! database by procedure name — in any order, which is the point of the
//! two-pass design: "since the directives are stored in a single program
//! database, the compiler second phase can be run on each source module
//! independently".

use crate::fingerprint::Fnv64;
use crate::regsets::RegUsage;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vpr::regs::Reg;

/// One promoted global in one procedure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Promotion {
    /// The global's link name.
    pub sym: String,
    /// The callee-saves register dedicated to it in this procedure.
    pub reg: Reg,
    /// Is this procedure a web entry node (load the global at entry)?
    pub is_entry: bool,
    /// Must web entries store the global back at exit? `false` when no web
    /// member writes it (§5's store suppression).
    pub store_at_exit: bool,
}

/// All directives for one procedure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcDirectives {
    /// Procedure link name.
    pub name: String,
    /// Promoted globals visible in this procedure.
    pub promotions: Vec<Promotion>,
    /// The FREE/CALLER/CALLEE/MSPILL register sets.
    pub usage: RegUsage,
    /// Is this procedure a cluster root (spills its MSPILL set
    /// unconditionally)?
    pub is_cluster_root: bool,
    /// Claim-pool registers this procedure may use as caller-saves scratch
    /// (§7.6.2 caller-saves preallocation; the full pool when the extension
    /// is off).
    #[serde(default = "full_claim")]
    pub claimed_caller: vpr::regs::RegSet,
    /// Claim-pool registers guaranteed untouched by any call to this
    /// procedure, transitively (empty when the extension is off).
    #[serde(default)]
    pub safe_caller_across: vpr::regs::RegSet,
}

fn full_claim() -> vpr::regs::RegSet {
    crate::caller_prealloc::claim_pool_set()
}

impl ProcDirectives {
    /// Directives equivalent to the standard linkage convention (what a
    /// procedure gets when interprocedural allocation is off or the
    /// database has no entry for it). VPR convention.
    pub fn standard(name: impl Into<String>) -> ProcDirectives {
        ProcDirectives::standard_for(name, vpr::target::TargetId::Vpr)
    }

    /// The standard-convention directives of `target`.
    pub fn standard_for(name: impl Into<String>, target: vpr::target::TargetId) -> ProcDirectives {
        let desc = target.desc();
        ProcDirectives {
            name: name.into(),
            promotions: Vec::new(),
            usage: RegUsage::standard_for(desc),
            is_cluster_root: false,
            claimed_caller: desc.claim_pool_set(),
            safe_caller_across: vpr::regs::RegSet::new(),
        }
    }
}

/// The whole-program register allocation database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramDatabase {
    entries: BTreeMap<String, ProcDirectives>,
}

impl ProgramDatabase {
    /// An empty database (every query falls back to the standard
    /// convention).
    pub fn new() -> ProgramDatabase {
        ProgramDatabase::default()
    }

    /// Inserts or replaces a procedure's directives.
    pub fn insert(&mut self, d: ProcDirectives) {
        self.entries.insert(d.name.clone(), d);
    }

    /// The directives for `name`, if the analyzer produced any.
    pub fn get(&self, name: &str) -> Option<&ProcDirectives> {
        self.entries.get(name)
    }

    /// The directives for `name`, falling back to the standard convention
    /// (VPR).
    pub fn lookup(&self, name: &str) -> ProcDirectives {
        self.lookup_for(name, vpr::target::TargetId::Vpr)
    }

    /// The directives for `name`, falling back to `target`'s standard
    /// convention for procedures the analyzer never saw.
    pub fn lookup_for(&self, name: &str, target: vpr::target::TargetId) -> ProcDirectives {
        self.entries
            .get(name)
            .cloned()
            .unwrap_or_else(|| ProcDirectives::standard_for(name, target))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcDirectives> {
        self.entries.values()
    }

    /// Stable fingerprint of one procedure's directives, as the compiler
    /// second phase would see them: absent entries hash as the standard
    /// linkage convention, so adding an explicit `standard()` entry does
    /// not change the fingerprint-visible contract.
    pub fn proc_fingerprint(&self, name: &str) -> u64 {
        let mut h = Fnv64::new();
        hash_directives(&mut h, &self.lookup(name));
        h.finish()
    }

    /// Stable fingerprint of the *module-relevant slice* of the database:
    /// everything the compiler second phase consults while compiling one
    /// module. That is, per [`cmin_codegen`]'s query pattern:
    ///
    /// * the **full directives** of every procedure the module defines
    ///   (`defined`), and
    /// * the **`safe_caller_across` sets** of every procedure the module
    ///   calls directly (`callees`) — the only cross-procedure fact codegen
    ///   reads at call sites.
    ///
    /// Two databases that agree on this slice direct byte-identical codegen
    /// for the module, so an incremental driver can skip its second phase.
    /// Names are sorted and deduplicated internally; callers may pass them
    /// in any order.
    pub fn module_slice_fingerprint<'a>(
        &self,
        defined: impl IntoIterator<Item = &'a str>,
        callees: impl IntoIterator<Item = &'a str>,
    ) -> u64 {
        let mut defined: Vec<&str> = defined.into_iter().collect();
        defined.sort_unstable();
        defined.dedup();
        let mut callees: Vec<&str> = callees.into_iter().collect();
        callees.sort_unstable();
        callees.dedup();

        let mut h = Fnv64::new();
        h.write_u64(defined.len() as u64);
        for name in defined {
            h.write_str(name);
            hash_directives(&mut h, &self.lookup(name));
        }
        h.write_u64(callees.len() as u64);
        for name in callees {
            h.write_str(name);
            // Codegen reads exactly `db.get(name)`'s safe set, defaulting to
            // empty for procedures the analyzer never saw.
            let safe = self.get(name).map(|d| d.safe_caller_across).unwrap_or_default();
            h.write_str(&safe.to_string());
        }
        h.finish()
    }

    /// Serializes the database (the paper's on-disk program database).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("database serialization cannot fail")
    }

    /// Reads a database back.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(s: &str) -> Result<ProgramDatabase, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Feeds one procedure's directives to a hasher via their canonical JSON
/// form (all directive fields serialize deterministically: promotions are
/// analyzer-ordered `Vec`s and register sets print in register order).
fn hash_directives(h: &mut Fnv64, d: &ProcDirectives) {
    h.write_str(&serde_json::to_string(d).expect("directive serialization cannot fail"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpr::regs::RegSet;

    #[test]
    fn lookup_falls_back_to_standard() {
        let db = ProgramDatabase::new();
        let d = db.lookup("anything");
        assert_eq!(d.usage.callee, RegSet::callee_saves());
        assert_eq!(d.usage.caller, RegSet::caller_saves());
        assert!(d.usage.free.is_empty() && d.usage.mspill.is_empty());
        assert!(d.promotions.is_empty());
        assert!(!d.is_cluster_root);
        assert!(db.get("anything").is_none());
    }

    #[test]
    fn insert_and_query() {
        let mut db = ProgramDatabase::new();
        let mut d = ProcDirectives::standard("f");
        d.promotions.push(Promotion {
            sym: "g".into(),
            reg: Reg::new(3),
            is_entry: true,
            store_at_exit: true,
        });
        d.is_cluster_root = true;
        db.insert(d.clone());
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("f"), Some(&d));
        assert_eq!(db.lookup("f"), d);
    }

    #[test]
    fn json_round_trip() {
        let mut db = ProgramDatabase::new();
        let mut d = ProcDirectives::standard("f");
        d.usage.free.insert(Reg::new(5));
        d.usage.mspill.insert(Reg::new(6));
        db.insert(d);
        db.insert(ProcDirectives::standard("g"));
        let back = ProgramDatabase::from_json(&db.to_json()).unwrap();
        assert_eq!(db, back);
        assert!(ProgramDatabase::from_json("nope").is_err());
    }

    #[test]
    fn proc_fingerprint_tracks_directive_changes() {
        let mut db = ProgramDatabase::new();
        let base = db.proc_fingerprint("f");
        // An explicit standard entry is indistinguishable from no entry.
        db.insert(ProcDirectives::standard("f"));
        assert_eq!(db.proc_fingerprint("f"), base);
        // Any directive change moves the fingerprint.
        let mut d = ProcDirectives::standard("f");
        d.usage.free.insert(Reg::new(5));
        db.insert(d);
        assert_ne!(db.proc_fingerprint("f"), base);
    }

    #[test]
    fn slice_fingerprint_sees_only_the_relevant_slice() {
        let mut db = ProgramDatabase::new();
        let mut f = ProcDirectives::standard("f");
        f.is_cluster_root = true;
        db.insert(f);
        db.insert(ProcDirectives::standard("g"));
        let before = db.module_slice_fingerprint(["f"], ["g"]);

        // A change to an unrelated procedure leaves the slice unchanged.
        let mut far = ProcDirectives::standard("far");
        far.usage.mspill.insert(Reg::new(4));
        db.insert(far);
        assert_eq!(db.module_slice_fingerprint(["f"], ["g"]), before);

        // A change to a defined procedure's directives moves it.
        let mut f2 = db.lookup("f");
        f2.promotions.push(Promotion {
            sym: "glob".into(),
            reg: Reg::new(3),
            is_entry: true,
            store_at_exit: false,
        });
        db.insert(f2);
        let after_def = db.module_slice_fingerprint(["f"], ["g"]);
        assert_ne!(after_def, before);

        // A callee change is only visible through its safe set.
        let mut g = db.lookup("g");
        g.is_cluster_root = true; // codegen of callers never reads this
        db.insert(g);
        assert_eq!(db.module_slice_fingerprint(["f"], ["g"]), after_def);
        let mut g2 = db.lookup("g");
        g2.safe_caller_across.insert(Reg::new(20));
        db.insert(g2);
        assert_ne!(db.module_slice_fingerprint(["f"], ["g"]), after_def);
    }

    /// The incremental driver persists databases as JSON between builds and
    /// keys its cache on these fingerprints — so a round-trip through the
    /// on-disk form must reproduce them bit-for-bit, and independently
    /// constructed equal databases must agree regardless of insert order.
    #[test]
    fn fingerprints_are_stable_across_serialization_and_construction() {
        let mut db = ProgramDatabase::new();
        let mut f = ProcDirectives::standard("f");
        f.usage.free.insert(Reg::new(5));
        f.promotions.push(Promotion {
            sym: "g".into(),
            reg: Reg::new(3),
            is_entry: true,
            store_at_exit: true,
        });
        db.insert(f.clone());
        db.insert(ProcDirectives::standard("g"));

        let mut db2 = ProgramDatabase::new();
        db2.insert(ProcDirectives::standard("g"));
        db2.insert(f);
        let db3 = ProgramDatabase::from_json(&db.to_json()).unwrap();

        for other in [&db2, &db3] {
            assert_eq!(db.proc_fingerprint("f"), other.proc_fingerprint("f"));
            assert_eq!(db.proc_fingerprint("g"), other.proc_fingerprint("g"));
            assert_eq!(
                db.module_slice_fingerprint(["f"], ["g"]),
                other.module_slice_fingerprint(["f"], ["g"])
            );
        }
    }

    #[test]
    fn slice_fingerprint_is_order_insensitive() {
        let mut db = ProgramDatabase::new();
        db.insert(ProcDirectives::standard("a"));
        db.insert(ProcDirectives::standard("b"));
        assert_eq!(
            db.module_slice_fingerprint(["a", "b"], ["c", "d", "c"]),
            db.module_slice_fingerprint(["b", "a", "a"], ["d", "c"])
        );
        // Defined and callee roles are not interchangeable.
        assert_ne!(
            db.module_slice_fingerprint(["a"], ["b"]),
            db.module_slice_fingerprint(["b"], ["a"])
        );
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut db = ProgramDatabase::new();
        db.insert(ProcDirectives::standard("zeta"));
        db.insert(ProcDirectives::standard("alpha"));
        let names: Vec<&str> = db.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
