//! Web identification (paper §4.1.1–§4.1.2, Figure 2).
//!
//! A *web* for a global variable is a minimal subgraph of the call graph
//! such that the variable is referenced in no ancestor and no descendant of
//! the subgraph. Candidate web entry nodes have the variable in `L_REF` but
//! not `P_REF`; webs grow downward through successors with the variable in
//! `L_REF ∪ C_REF`, and a repair loop pulls in external predecessors of
//! internal nodes until every node is either an entry (no predecessor inside
//! the web) or internal (no predecessor outside). Overlapping webs for the
//! same variable merge.
//!
//! Recursive call chains that reference a variable but have it in `P_REF`
//! everywhere get no entry candidate; each such strongly connected component
//! seeds its own web, which is then repaired the same way (§4.1.2's "simple
//! solution").
//!
//! Webs for `static` globals whose entry nodes fall outside the defining
//! module are discarded (§7.4): the second phase could not address the
//! module-private symbol from another module.

use crate::bitset::BitSet;
use crate::callgraph::{CallGraph, NodeId};
use crate::dataflow::{Eligibility, GlobalId, RefSets};

/// A web: a set of call-graph nodes over which one global variable may be
/// kept in a dedicated register.
#[derive(Debug, Clone)]
pub struct Web {
    /// The promoted global.
    pub global: GlobalId,
    /// Member nodes, ascending.
    pub nodes: Vec<NodeId>,
    /// Entry nodes (members with no predecessor inside the web), ascending.
    pub entries: Vec<NodeId>,
    /// Does any member write the global? (If not, web entries need no
    /// store-back at exit, §5.)
    pub written: bool,
}

impl Web {
    /// Is `n` a member?
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.binary_search(&n).is_ok()
    }

    /// Is `n` an entry node?
    pub fn is_entry(&self, n: NodeId) -> bool {
        self.entries.binary_search(&n).is_ok()
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Webs never come up empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Statistics from web identification (the paper's §6.2 numbers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WebStats {
    /// Eligible globals examined.
    pub eligible_globals: usize,
    /// Webs identified in total.
    pub webs_total: usize,
    /// Webs discarded because a `static`'s entry left its module.
    pub discarded_static: usize,
    /// `(symbol, member procedure names)` of each §7.4 static discard, in
    /// discovery order (reporting/trace only).
    pub static_discards: Vec<(String, Vec<String>)>,
}

/// Identifies all webs for all eligible globals.
pub fn identify_webs(
    graph: &CallGraph,
    elig: &Eligibility,
    refs: &RefSets,
) -> (Vec<Web>, WebStats) {
    let mut webs: Vec<Web> = Vec::new();
    let mut stats = WebStats { eligible_globals: elig.len(), ..WebStats::default() };

    for g in elig.ids() {
        let mut webs_g: Vec<BitSet> = Vec::new();

        // Phase 1: entry-candidate seeded webs (Figure 2).
        for p in graph.node_ids() {
            if !refs.in_l(p, g) || refs.in_p(p, g) {
                continue;
            }
            if webs_g.iter().any(|w| w.contains(p.index())) {
                continue; // already absorbed by an earlier web (merge-equivalent)
            }
            let w = grow_web(graph, refs, g, &[p]);
            merge_in(&mut webs_g, w);
        }

        // Phase 2: recursive cycles that reference g but got no entry
        // candidate anywhere in the cycle.
        for scc in recursive_sccs(graph) {
            let refs_g = scc.iter().any(|&n| refs.in_l(n, g));
            let uncovered = scc.iter().all(|&n| !webs_g.iter().any(|w| w.contains(n.index())));
            if refs_g && uncovered {
                let w = grow_web(graph, refs, g, &scc);
                merge_in(&mut webs_g, w);
            }
        }

        for w in webs_g {
            stats.webs_total += 1;
            let nodes: Vec<NodeId> = w.iter().map(|i| NodeId(i as u32)).collect();
            let entries: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|&n| !graph.predecessors(n).any(|p| w.contains(p.index())))
                .collect();
            // §7.4: a static's web entry must live in the defining module.
            let eg = elig.global(g);
            if eg.is_static {
                let foreign_entry = entries.iter().any(|&e| graph.node(e).module != eg.module);
                if foreign_entry {
                    stats.discarded_static += 1;
                    stats.static_discards.push((
                        eg.sym.clone(),
                        nodes.iter().map(|&n| graph.node(n).name.clone()).collect(),
                    ));
                    continue;
                }
            }
            let written = nodes.iter().any(|&n| elig.writes(n, g));
            webs.push(Web { global: g, nodes, entries, written });
        }
    }
    (webs, stats)
}

/// Grows a web from `seeds`: expands each seed through successors with the
/// variable in `L_REF ∪ C_REF`, then repeatedly repairs nodes that have both
/// internal and external predecessors by pulling the external predecessors
/// in (Figure 2's repeat/until loop).
fn grow_web(graph: &CallGraph, refs: &RefSets, g: GlobalId, seeds: &[NodeId]) -> BitSet {
    let mut w = BitSet::new(graph.len());
    let mut temp: Vec<NodeId> = seeds.to_vec();
    loop {
        for &q in &temp {
            expand_web(graph, refs, g, &mut w, q);
        }
        // S = members with at least one predecessor inside and one outside.
        let mut fixups: Vec<NodeId> = Vec::new();
        for i in w.iter() {
            let z = NodeId(i as u32);
            let mut internal = false;
            let mut external: Vec<NodeId> = Vec::new();
            for p in graph.predecessors(z) {
                if w.contains(p.index()) {
                    internal = true;
                } else if !external.contains(&p) {
                    external.push(p);
                }
            }
            if internal && !external.is_empty() {
                fixups.extend(external);
            }
        }
        if fixups.is_empty() {
            return w;
        }
        fixups.sort();
        fixups.dedup();
        temp = fixups;
    }
}

/// Figure 2's `Expand_Web`: add `q`, then recurse into successors with the
/// variable in `L_REF ∪ C_REF` (iterative worklist form).
fn expand_web(graph: &CallGraph, refs: &RefSets, g: GlobalId, w: &mut BitSet, q: NodeId) {
    let mut work = vec![q];
    w.insert(q.index());
    while let Some(n) = work.pop() {
        for s in graph.successors(n) {
            if !w.contains(s.index()) && (refs.in_c(s, g) || refs.in_l(s, g)) {
                w.insert(s.index());
                work.push(s);
            }
        }
    }
}

/// Merges `w` into the per-global web list, unioning any overlapping webs.
fn merge_in(webs_g: &mut Vec<BitSet>, mut w: BitSet) {
    loop {
        let overlap = webs_g.iter().position(|x| x.iter().any(|i| w.contains(i)));
        match overlap {
            Some(i) => {
                let x = webs_g.swap_remove(i);
                w.union_with(&x);
            }
            None => break,
        }
    }
    webs_g.push(w);
}

/// All recursive SCCs (more than one node, or a self loop), each as a sorted
/// node list.
fn recursive_sccs(graph: &CallGraph) -> Vec<Vec<NodeId>> {
    let mut by_scc: std::collections::HashMap<u32, Vec<NodeId>> = std::collections::HashMap::new();
    for n in graph.node_ids() {
        by_scc.entry(graph.scc_of(n)).or_default().push(n);
    }
    let mut out: Vec<Vec<NodeId>> = by_scc
        .into_values()
        .filter(|ns| ns.len() > 1 || ns.iter().any(|&n| graph.successors(n).any(|s| s == n)))
        .collect();
    for ns in &mut out {
        ns.sort();
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::testutil::{figure3, summary};
    use ipra_summary::ProgramSummary;

    fn build(s: &ProgramSummary) -> (CallGraph, Eligibility, Vec<Web>, WebStats) {
        let g = CallGraph::build(s, None);
        let e = Eligibility::compute(&g, s);
        let r = RefSets::compute(&g, &e);
        let (w, st) = identify_webs(&g, &e, &r);
        (g, e, w, st)
    }

    fn names(g: &CallGraph, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| g.node(n).name.clone()).collect()
    }

    #[test]
    fn figure3_reproduces_table2() {
        let (g, e, webs, stats) = build(&figure3());
        assert_eq!(stats.webs_total, 4, "{webs:?}");

        let find = |sym: &str, member: &str| {
            let gid = e.by_sym(sym).unwrap();
            let m = g.by_name(member).unwrap();
            webs.iter()
                .find(|w| w.global == gid && w.contains(m))
                .unwrap_or_else(|| panic!("no web for {sym} containing {member}"))
        };

        // Table 2: Web 1 = g3 {A,B,C}; Web 2 = g2 {C,F,G}; Web 3 = g1 {B,D,E};
        // Web 4 = g2 {E}.
        let w1 = find("g3", "A");
        assert_eq!(names(&g, &w1.nodes), vec!["A", "B", "C"]);
        assert_eq!(names(&g, &w1.entries), vec!["A"]);

        let w2 = find("g2", "C");
        assert_eq!(names(&g, &w2.nodes), vec!["C", "F", "G"]);
        assert_eq!(names(&g, &w2.entries), vec!["C"]);

        let w3 = find("g1", "B");
        assert_eq!(names(&g, &w3.nodes), vec!["B", "D", "E"]);
        assert_eq!(names(&g, &w3.entries), vec!["B"]);

        let w4 = find("g2", "E");
        assert_eq!(names(&g, &w4.nodes), vec!["E"]);
        assert_eq!(names(&g, &w4.entries), vec!["E"]);
    }

    #[test]
    fn disjoint_uses_make_disjoint_webs() {
        // main -> a, b; a and b both use g but share no path that does.
        let s = summary(
            &[("main", &[("a", 1), ("b", 1)], &[]), ("a", &[], &["g"]), ("b", &[], &["g"])],
            &["g"],
        );
        let (g, _, webs, _) = build(&s);
        assert_eq!(webs.len(), 2);
        for w in &webs {
            assert_eq!(w.len(), 1);
            assert_eq!(w.entries.len(), 1);
        }
        let _ = g;
    }

    #[test]
    fn ancestor_reference_merges_into_one_web() {
        // main uses g and calls a which uses g: single web rooted at main.
        let s = summary(&[("main", &[("a", 1)], &["g"]), ("a", &[], &["g"])], &["g"]);
        let (g, _, webs, _) = build(&s);
        assert_eq!(webs.len(), 1);
        assert_eq!(names(&g, &webs[0].nodes), vec!["main", "a"]);
        assert_eq!(names(&g, &webs[0].entries), vec!["main"]);
    }

    #[test]
    fn pass_through_node_joins_via_c_ref() {
        // main(g) -> mid (no ref) -> leaf(g): mid is in the web because g is
        // in its C_REF.
        let s = summary(
            &[("main", &[("mid", 1)], &["g"]), ("mid", &[("leaf", 1)], &[]), ("leaf", &[], &["g"])],
            &["g"],
        );
        let (g, _, webs, _) = build(&s);
        assert_eq!(webs.len(), 1);
        assert_eq!(names(&g, &webs[0].nodes), vec!["main", "mid", "leaf"]);
    }

    #[test]
    fn external_predecessor_of_internal_node_gets_pulled_in() {
        // entry: a (uses g), a -> c (uses g); other -> c as well.
        // c would be internal with an external pred => repair pulls in
        // `other`, making it a second entry.
        let s = summary(
            &[
                ("main", &[("a", 1), ("other", 1)], &[]),
                ("a", &[("c", 1)], &["g"]),
                ("other", &[("c", 1)], &[]),
                ("c", &[], &["g"]),
            ],
            &["g"],
        );
        let (g, _, webs, _) = build(&s);
        assert_eq!(webs.len(), 1);
        let w = &webs[0];
        assert_eq!(names(&g, &w.nodes), vec!["a", "other", "c"]);
        assert_eq!(names(&g, &w.entries), vec!["a", "other"]);
        // Invariant: internal nodes have no external predecessors.
        for &n in &w.nodes {
            if !w.is_entry(n) {
                for p in g.predecessors(n) {
                    assert!(w.contains(p), "internal node with external pred");
                }
            }
        }
    }

    #[test]
    fn recursive_cycle_forms_its_own_web() {
        // main -> r <-> s, both reference g; g ∈ P_REF throughout the cycle
        // so no entry candidate exists — the SCC seeds the web.
        let s = summary(
            &[("main", &[("r", 1)], &[]), ("r", &[("s", 1)], &["g"]), ("s", &[("r", 1)], &["g"])],
            &["g"],
        );
        let (g, _, webs, _) = build(&s);
        assert_eq!(webs.len(), 1, "{webs:?}");
        let w = &webs[0];
        // The SCC {r, s} seeds the web; r then has an internal pred (s) and
        // an external pred (main), so the repair loop pulls main in as the
        // entry node.
        assert_eq!(names(&g, &w.nodes), vec!["main", "r", "s"]);
        assert_eq!(names(&g, &w.entries), vec!["main"]);
        assert!(w.entries.iter().all(|&e| !g.predecessors(e).any(|p| w.contains(p))));
    }

    #[test]
    fn self_recursive_node_web() {
        let s = summary(&[("main", &[("r", 1)], &[]), ("r", &[("r", 1)], &["g"])], &["g"]);
        let (g, _, webs, _) = build(&s);
        // r has g ∈ P_REF (self edge) → cycle web. Repair: r's preds are
        // main (external) and r (internal) → pull in main.
        assert_eq!(webs.len(), 1);
        assert!(names(&g, &webs[0].nodes).contains(&"main".to_string()));
    }

    #[test]
    fn static_web_crossing_modules_is_discarded() {
        use ipra_summary::*;
        // Module a defines static s$g used by a_fn; module b's main calls
        // a_fn and... make the entry land in module b by having main
        // reference the static via... statics cannot be referenced outside
        // their module in the source language, but the *web entry* can land
        // outside: main -> a_fn (refs g), main -> a_gn (refs g) and also
        // a_fn -> common <- a_gn with common refs g. Then entry candidates
        // a_fn and a_gn merge through common's repair... Simpler: force the
        // web to include main via repair: a_fn refs g, a_fn -> c (refs g),
        // main -> c directly. Repair pulls main (module b) in as entry.
        let mk = |name: &str, module: &str, calls: &[(&str, u64)], refs: &[&str]| ProcSummary {
            name: name.into(),
            module: module.into(),
            global_refs: refs
                .iter()
                .map(|g| GlobalRef {
                    sym: g.to_string(),
                    freq: 5,
                    written: true,
                    ptr_mod: false,
                    ptr_ref: false,
                    escapes: false,
                })
                .collect(),
            calls: calls.iter().map(|(c, f)| CallRef { callee: c.to_string(), freq: *f }).collect(),
            taken_addresses: vec![],
            makes_indirect_calls: false,
            callee_saves_estimate: 1,
            caller_saves_estimate: 2,
            alias: Default::default(),
        };
        let s = ProgramSummary {
            modules: vec![
                ModuleSummary {
                    module: "a".into(),
                    procs: vec![
                        mk("a_fn", "a", &[("c", 1)], &["a$g"]),
                        mk("c", "a", &[], &["a$g"]),
                    ],
                    globals: vec![GlobalFact {
                        sym: "a$g".into(),
                        size: 1,
                        is_array: false,
                        is_static: true,
                        module: "a".into(),
                        init: vec![],
                    }],
                },
                ModuleSummary {
                    module: "b".into(),
                    procs: vec![mk("main", "b", &[("a_fn", 1), ("c", 1)], &[])],
                    globals: vec![],
                },
            ],
        };
        let g = CallGraph::build(&s, None);
        let e = Eligibility::compute(&g, &s);
        let r = RefSets::compute(&g, &e);
        let (webs, stats) = identify_webs(&g, &e, &r);
        assert_eq!(stats.discarded_static, 1);
        assert!(webs.is_empty());
    }

    #[test]
    fn webs_for_same_global_are_disjoint() {
        let (_, _, webs, _) = build(&figure3());
        for (i, a) in webs.iter().enumerate() {
            for b in webs.iter().skip(i + 1) {
                if a.global == b.global {
                    assert!(a.nodes.iter().all(|n| !b.contains(*n)));
                }
            }
        }
    }

    #[test]
    fn written_flag_tracks_member_writes() {
        let (_, e, webs, _) = build(&figure3());
        // testutil::summary marks every reference written.
        for w in &webs {
            assert!(w.written);
        }
        let _ = e;
    }
}
