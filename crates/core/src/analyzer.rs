//! The program analyzer (paper §4): orchestrates call graph construction,
//! global variable promotion, spill code motion, and program database
//! generation.

use crate::callgraph::{CallGraph, NodeId};
use crate::cluster::{identify_clusters, ClusterHeuristics, Clustering};
use crate::color::{
    blanket_webs, color_webs_for, prioritize, web_benefit, web_entry_cost, Coloring,
    ColoringStrategy, DiscardHeuristics, Prioritization, WebOutcome,
};
use crate::database::{ProcDirectives, ProgramDatabase, Promotion};
use crate::dataflow::{Eligibility, RefSets};
use crate::profile::ProfileData;
use crate::regsets::{compute_register_sets_for, RegUsage};
use crate::trace::{AnalyzerTrace, DiscardReason, TraceEvent};
use crate::webs::{identify_webs, Web, WebStats};
use ipra_summary::ProgramSummary;
use serde::{Deserialize, Serialize};
use vpr::regs::RegSet;

/// How (and whether) global variables are promoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionMode {
    /// No interprocedural promotion.
    Off,
    /// Web coloring with `registers` reserved callee-saves registers
    /// (Table 4 columns C/F; the paper reserves 6).
    Coloring {
        /// Reserved register count.
        registers: u32,
    },
    /// Greedy coloring: any callee-saves register not needed locally by a
    /// member procedure (column D).
    Greedy,
    /// Blanket promotion of the `count` hottest globals program-wide, the
    /// [Wall 86] baseline (column E).
    Blanket {
        /// Number of globals promoted program-wide.
        count: usize,
    },
}

/// The paper's measured configurations (Table 4 legend). `L2` is the
/// baseline: level-2 optimization with no interprocedural allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperConfig {
    /// Baseline: no interprocedural register allocation.
    L2,
    /// Spill code motion only.
    A,
    /// Spill code motion with profile data.
    B,
    /// Spill motion + web coloring with 6 reserved registers.
    C,
    /// Spill motion + greedy coloring.
    D,
    /// Spill motion + blanket promotion of the 6 hottest globals.
    E,
    /// Configuration C with profile data.
    F,
    /// Configuration C with interprocedural alias analysis replacing the
    /// blanket address-taken rejection (not in the paper's table; the
    /// extension this reproduction adds).
    P,
}

impl PaperConfig {
    /// The paper's measured configurations, in table order.
    pub const ALL: [PaperConfig; 7] = [
        PaperConfig::L2,
        PaperConfig::A,
        PaperConfig::B,
        PaperConfig::C,
        PaperConfig::D,
        PaperConfig::E,
        PaperConfig::F,
    ];

    /// The paper's configurations plus the alias-precision extension.
    pub const ALL_WITH_ALIAS: [PaperConfig; 8] = [
        PaperConfig::L2,
        PaperConfig::A,
        PaperConfig::B,
        PaperConfig::C,
        PaperConfig::D,
        PaperConfig::E,
        PaperConfig::F,
        PaperConfig::P,
    ];

    /// Does this configuration consume profile data?
    pub fn wants_profile(self) -> bool {
        matches!(self, PaperConfig::B | PaperConfig::F)
    }

    /// The table column label.
    pub fn label(self) -> &'static str {
        match self {
            PaperConfig::L2 => "L2",
            PaperConfig::A => "A",
            PaperConfig::B => "B",
            PaperConfig::C => "C",
            PaperConfig::D => "D",
            PaperConfig::E => "E",
            PaperConfig::F => "F",
            PaperConfig::P => "P",
        }
    }
}

impl std::fmt::Display for PaperConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Analyzer options.
#[derive(Debug, Clone)]
pub struct AnalyzerOptions {
    /// Perform spill code motion (clusters + register usage sets)?
    pub spill_motion: bool,
    /// Promotion strategy.
    pub promotion: PromotionMode,
    /// Profile data (configurations B/F); `None` = heuristic counts.
    pub profile: Option<ProfileData>,
    /// Web discard thresholds.
    pub discard: DiscardHeuristics,
    /// Cluster root selection thresholds.
    pub cluster: ClusterHeuristics,
    /// Use the §7.6.2 refinement for web/cluster register interaction.
    pub precise_web_cluster_interaction: bool,
    /// Enable the §7.6.2 caller-saves preallocation extension ([Chow 88]
    /// style bottom-up claim propagation).
    pub caller_preallocation: bool,
    /// Replace the blanket address-taken rejection with the interprocedural
    /// points-to/mod-ref analysis (configuration P).
    pub alias_precision: bool,
    /// The target convention the directives are expressed over. The
    /// analysis itself is target-independent (§2); only the concrete
    /// register names drawn for webs, clusters and claims depend on this.
    pub target: vpr::target::TargetId,
}

impl Default for AnalyzerOptions {
    fn default() -> AnalyzerOptions {
        AnalyzerOptions {
            spill_motion: true,
            promotion: PromotionMode::Coloring { registers: 6 },
            profile: None,
            discard: DiscardHeuristics::default(),
            cluster: ClusterHeuristics::default(),
            precise_web_cluster_interaction: false,
            caller_preallocation: false,
            alias_precision: false,
            target: vpr::target::TargetId::Vpr,
        }
    }
}

impl AnalyzerOptions {
    /// [`AnalyzerOptions::paper_config`] for an explicit target.
    pub fn paper_config_for(
        config: PaperConfig,
        profile: Option<ProfileData>,
        target: vpr::target::TargetId,
    ) -> AnalyzerOptions {
        AnalyzerOptions { target, ..AnalyzerOptions::paper_config(config, profile) }
    }

    /// Options matching one of the paper's measured configurations.
    /// Configurations B and F require `profile` to be supplied.
    pub fn paper_config(config: PaperConfig, profile: Option<ProfileData>) -> AnalyzerOptions {
        let base = AnalyzerOptions::default();
        match config {
            PaperConfig::L2 => AnalyzerOptions {
                spill_motion: false,
                promotion: PromotionMode::Off,
                profile: None,
                ..base
            },
            PaperConfig::A => {
                AnalyzerOptions { promotion: PromotionMode::Off, profile: None, ..base }
            }
            PaperConfig::B => AnalyzerOptions { promotion: PromotionMode::Off, profile, ..base },
            PaperConfig::C => AnalyzerOptions {
                promotion: PromotionMode::Coloring { registers: 6 },
                profile: None,
                ..base
            },
            PaperConfig::D => {
                AnalyzerOptions { promotion: PromotionMode::Greedy, profile: None, ..base }
            }
            PaperConfig::E => AnalyzerOptions {
                promotion: PromotionMode::Blanket { count: 6 },
                profile: None,
                ..base
            },
            PaperConfig::F => AnalyzerOptions {
                promotion: PromotionMode::Coloring { registers: 6 },
                profile,
                ..base
            },
            PaperConfig::P => AnalyzerOptions {
                promotion: PromotionMode::Coloring { registers: 6 },
                profile: None,
                alias_precision: true,
                ..base
            },
        }
    }
}

/// Statistics from one analyzer run (the paper's §6.2 reporting).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerStats {
    /// Call graph nodes.
    pub nodes: usize,
    /// Call graph edges.
    pub edges: usize,
    /// Eligible globals.
    pub eligible_globals: usize,
    /// Webs identified.
    pub webs_total: usize,
    /// Webs surviving the discard heuristics.
    pub webs_considered: usize,
    /// Webs successfully colored.
    pub webs_colored: usize,
    /// Webs discarded as sparse.
    pub discarded_sparse: usize,
    /// Webs discarded as trivial singletons.
    pub discarded_trivial: usize,
    /// Webs discarded as unprofitable.
    pub discarded_unprofitable: usize,
    /// Webs discarded for crossing a static's module boundary.
    pub discarded_static: usize,
    /// Clusters identified.
    pub clusters: usize,
    /// Average cluster size (root + members).
    pub avg_cluster_size: f64,
}

/// A human-readable record of one identified web (reporting only; the
/// second phase works from the [`ProgramDatabase`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebReport {
    /// The promoted global's link name.
    pub sym: String,
    /// Member procedure names, ascending by call-graph id.
    pub nodes: Vec<String>,
    /// Entry procedure names.
    pub entries: Vec<String>,
    /// The register the web was colored to, if any.
    pub reg: Option<vpr::regs::Reg>,
    /// Does any member write the global?
    pub written: bool,
}

/// The analyzer result: the database the second phase consumes plus the
/// run's statistics and reporting.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-procedure directives.
    pub database: ProgramDatabase,
    /// Reporting statistics.
    pub stats: AnalyzerStats,
    /// The identified webs with their coloring (empty when promotion is
    /// off; covers discarded/uncolored webs too, with `reg: None`).
    pub webs: Vec<WebReport>,
}

/// Runs the program analyzer over a program's summary files.
pub fn analyze(summary: &ProgramSummary, opts: &AnalyzerOptions) -> Analysis {
    analyze_impl(summary, opts, None)
}

/// Runs the analyzer while recording its [decision trace](crate::trace).
///
/// The returned [`Analysis`] is identical to what [`analyze`] produces for
/// the same inputs; tracing is observation only.
pub fn analyze_traced(
    summary: &ProgramSummary,
    opts: &AnalyzerOptions,
) -> (Analysis, AnalyzerTrace) {
    let mut trace = AnalyzerTrace::default();
    let analysis = analyze_impl(summary, opts, Some(&mut trace));
    (analysis, trace)
}

/// Runs the interprocedural alias analysis over the summaries' embedded
/// constraint records. Roots: `main` when defined (a closed-world
/// executable, so uncalled procedures are dead code); otherwise every
/// procedure (the open-world stance for partial programs, §7.2).
pub fn solve_alias(summary: &ProgramSummary) -> ipra_alias::Solution {
    let procs: std::collections::BTreeMap<String, &ipra_alias::ProcConstraints> =
        summary.procs().map(|p| (p.name.clone(), &p.alias)).collect();
    let roots: Vec<String> =
        if procs.contains_key("main") { vec!["main".to_string()] } else { Vec::new() };
    ipra_alias::solve(&procs, &roots)
}

fn analyze_impl(
    summary: &ProgramSummary,
    opts: &AnalyzerOptions,
    mut trace: Option<&mut AnalyzerTrace>,
) -> Analysis {
    let desc = opts.target.desc();
    let graph = CallGraph::build(summary, opts.profile.as_ref());
    let alias_solution = if opts.alias_precision { Some(solve_alias(summary)) } else { None };
    let elig = Eligibility::compute_with_alias(&graph, summary, alias_solution.as_ref());
    let refs = RefSets::compute(&graph, &elig);

    if let (Some(t), Some(sol)) = (trace.as_deref_mut(), alias_solution.as_ref()) {
        emit_alias_events(t, &graph, summary, sol);
    }

    let mut stats = AnalyzerStats {
        nodes: graph.len(),
        edges: graph.edges().len(),
        eligible_globals: elig.len(),
        ..AnalyzerStats::default()
    };

    // --- Global variable promotion (§4.1) ---
    let mut wstats_opt: Option<WebStats> = None;
    let mut prio_opt: Option<Prioritization> = None;
    let (webs, coloring): (Vec<Web>, Coloring) = match opts.promotion {
        PromotionMode::Off => (Vec::new(), Coloring::default()),
        PromotionMode::Coloring { registers } => {
            let (webs, wstats) = identify_webs(&graph, &elig, &refs);
            let prio = prioritize(&webs, &graph, &elig, &opts.discard);
            record_web_stats(&mut stats, &wstats, &prio);
            let coloring = color_webs_for(
                &webs,
                &prio,
                ColoringStrategy::Reserved { count: registers },
                &graph,
                desc,
            );
            stats.webs_colored = coloring.colored;
            wstats_opt = Some(wstats);
            prio_opt = Some(prio);
            (webs, coloring)
        }
        PromotionMode::Greedy => {
            let (webs, wstats) = identify_webs(&graph, &elig, &refs);
            let prio = prioritize(&webs, &graph, &elig, &opts.discard);
            record_web_stats(&mut stats, &wstats, &prio);
            let coloring = color_webs_for(&webs, &prio, ColoringStrategy::Greedy, &graph, desc);
            stats.webs_colored = coloring.colored;
            wstats_opt = Some(wstats);
            prio_opt = Some(prio);
            (webs, coloring)
        }
        PromotionMode::Blanket { count } => {
            let webs = blanket_webs(&graph, &elig, count);
            stats.webs_total = webs.len();
            stats.webs_considered = webs.len();
            // Blanket webs all interfere pairwise; reserving one register
            // per web colors them deterministically.
            let prio = Prioritization {
                considered: (0..webs.len())
                    .map(|i| crate::color::PrioritizedWeb { web: i, priority: 0 })
                    .collect(),
                ..Prioritization::default()
            };
            let coloring = color_webs_for(
                &webs,
                &prio,
                ColoringStrategy::Reserved { count: webs.len() as u32 },
                &graph,
                desc,
            );
            stats.webs_colored = coloring.colored;
            (webs, coloring)
        }
    };

    if let Some(t) = trace.as_deref_mut() {
        emit_web_events(t, &graph, &elig, &webs, &coloring, &wstats_opt, &prio_opt);
    }

    // Registers dedicated to promoted globals, per node.
    let mut web_regs: Vec<RegSet> = vec![RegSet::new(); graph.len()];
    for (w, reg) in webs.iter().zip(&coloring.assignment) {
        if let Some(r) = reg {
            for &n in &w.nodes {
                web_regs[n.index()].insert(*r);
            }
        }
    }
    let web_reports: Vec<WebReport> = webs
        .iter()
        .zip(&coloring.assignment)
        .map(|(w, reg)| WebReport {
            sym: elig.global(w.global).sym.clone(),
            nodes: w.nodes.iter().map(|&n| graph.node(n).name.clone()).collect(),
            entries: w.entries.iter().map(|&n| graph.node(n).name.clone()).collect(),
            reg: *reg,
            written: w.written,
        })
        .collect();

    // --- Spill code motion (§4.2) ---
    let clustering = if opts.spill_motion {
        identify_clusters(&graph, &opts.cluster)
    } else {
        Clustering::default()
    };
    stats.clusters = clustering.clusters.len();
    stats.avg_cluster_size = clustering.average_size();

    let usage = compute_register_sets_for(
        &graph,
        &clustering,
        &web_regs,
        opts.precise_web_cluster_interaction,
        desc,
    );

    if let Some(t) = trace.as_deref_mut() {
        emit_cluster_events(t, &graph, &clustering, &usage);
    }

    // --- Caller-saves preallocation (§7.6.2 extension) ---
    let tree_caller = if opts.caller_preallocation {
        Some(crate::caller_prealloc::compute_tree_caller_for(&graph, desc))
    } else {
        None
    };
    if let (Some(t), Some(tree)) = (trace, &tree_caller) {
        for n in graph.node_ids() {
            if !graph.node(n).defined {
                continue;
            }
            t.push(TraceEvent::CallerClaimGranted {
                proc: graph.node(n).name.clone(),
                claimed: crate::caller_prealloc::own_claim_for(&graph, n, desc),
                safe_across: crate::caller_prealloc::claim_pool_set_for(desc) - tree[n.index()],
            });
        }
    }

    // --- Program database (§4.3) ---
    let mut database = ProgramDatabase::new();
    for n in graph.node_ids() {
        if !graph.node(n).defined {
            continue;
        }
        let mut promotions = Vec::new();
        for (w, reg) in webs.iter().zip(&coloring.assignment) {
            let Some(r) = reg else { continue };
            if w.contains(n) {
                let is_entry = w.is_entry(n);
                promotions.push(Promotion {
                    sym: elig.global(w.global).sym.clone(),
                    reg: *r,
                    is_entry,
                    store_at_exit: is_entry && w.written,
                });
            }
        }
        promotions.sort_by(|a, b| a.sym.cmp(&b.sym));
        let (claimed_caller, safe_caller_across) = match &tree_caller {
            Some(tree) => (
                crate::caller_prealloc::own_claim_for(&graph, n, desc),
                crate::caller_prealloc::claim_pool_set_for(desc) - tree[n.index()],
            ),
            None => (crate::caller_prealloc::claim_pool_set_for(desc), vpr::regs::RegSet::new()),
        };
        database.insert(ProcDirectives {
            name: graph.node(n).name.clone(),
            promotions,
            usage: usage[n.index()],
            is_cluster_root: clustering.is_root(n),
            claimed_caller,
            safe_caller_across,
        });
    }
    Analysis { database, stats, webs: web_reports }
}

/// Records the alias-precision verdict for every address-taken global: an
/// `AliasPromotable` event when the points-to analysis keeps a global the
/// blanket rule would demote, an `AliasDemoted` event (with the witnessing
/// procedure) when memory residence is confirmed. Emitted in symbol order,
/// before the web events, since eligibility precedes web formation.
fn emit_alias_events(
    t: &mut AnalyzerTrace,
    graph: &CallGraph,
    summary: &ProgramSummary,
    sol: &ipra_alias::Solution,
) {
    let mut blanket = Eligibility::blanket_aliased(summary);
    blanket.sort();
    let demoted = Eligibility::alias_aliased(graph, summary, sol);
    for sym in &blanket {
        if demoted.contains(sym) {
            continue;
        }
        let justification = match sol.ind_ref_witness(sym) {
            Some(w) => {
                format!("only read through pointers (e.g. in {w}); never written in reachable code")
            }
            None => "address never dereferenced or leaked in reachable code".to_string(),
        };
        t.push(TraceEvent::AliasPromotable { sym: sym.clone(), justification });
    }
    for sym in &demoted {
        let justification = if sol.is_escaped(sym) {
            match sol.escape_witness.get(sym) {
                Some(w) => format!("address escapes to unknown code (leaked in {w})"),
                None => "address escapes to unknown code".to_string(),
            }
        } else if let Some(w) = sol.ind_mod_witness(sym) {
            format!("may be written through a pointer in {w}")
        } else if let Some(w) = sol.ind_ref_witness(sym) {
            format!("read through a pointer in {w} while also written directly")
        } else {
            // Demoted by the call-graph/points-to reachability gap: the
            // pointer access sits in code only the §7.3 indirect-call rule
            // can reach, but that code is emitted and checked.
            "accessed through a pointer in emitted code the points-to solve cannot prove live"
                .to_string()
        };
        t.push(TraceEvent::AliasDemoted { sym: sym.clone(), justification });
    }
}

/// Records the promotion decisions: one `WebFormed` per identified web (in
/// web-index order) followed by its fate — discarded (with the heuristic
/// that fired), colored (plus `ExitStoreSuppressed` for read-only webs), or
/// uncolored. §7.4 static discards come first; they never enter the web
/// list.
fn emit_web_events(
    t: &mut AnalyzerTrace,
    graph: &CallGraph,
    elig: &Eligibility,
    webs: &[Web],
    coloring: &Coloring,
    wstats: &Option<WebStats>,
    prio: &Option<Prioritization>,
) {
    let names =
        |ns: &[NodeId]| -> Vec<String> { ns.iter().map(|&n| graph.node(n).name.clone()).collect() };
    if let Some(ws) = wstats {
        for (sym, nodes) in &ws.static_discards {
            t.push(TraceEvent::WebDiscarded {
                web: None,
                sym: sym.clone(),
                nodes: nodes.clone(),
                reason: DiscardReason::StaticCrossModule,
                benefit: 0,
                entry_cost: 0,
            });
        }
    }
    for (i, w) in webs.iter().enumerate() {
        let sym = elig.global(w.global).sym.clone();
        let outcome = prio.as_ref().map(|p| p.outcomes[i]);
        let (benefit, entry_cost) = match outcome {
            Some(oc) => (oc.benefit(), oc.cost()),
            // Blanket webs bypass prioritization; measure directly.
            None => (web_benefit(w, graph, elig), web_entry_cost(w, graph)),
        };
        t.push(TraceEvent::WebFormed {
            web: i,
            sym: sym.clone(),
            nodes: names(&w.nodes),
            entries: names(&w.entries),
            written: w.written,
            benefit,
            entry_cost,
        });
        let discard = match outcome {
            Some(WebOutcome::Sparse { .. }) => Some(DiscardReason::Sparse),
            Some(WebOutcome::Trivial { .. }) => Some(DiscardReason::Trivial),
            Some(WebOutcome::Unprofitable { .. }) => Some(DiscardReason::Unprofitable),
            Some(WebOutcome::Considered { .. }) | None => None,
        };
        if let Some(reason) = discard {
            t.push(TraceEvent::WebDiscarded {
                web: Some(i),
                sym,
                nodes: names(&w.nodes),
                reason,
                benefit,
                entry_cost,
            });
            continue;
        }
        let priority = match outcome {
            Some(WebOutcome::Considered { priority, .. }) => priority,
            _ => 0,
        };
        match coloring.assignment[i] {
            Some(reg) => {
                t.push(TraceEvent::WebColored {
                    web: i,
                    sym: sym.clone(),
                    nodes: names(&w.nodes),
                    entries: names(&w.entries),
                    reg,
                    priority,
                });
                if !w.written {
                    t.push(TraceEvent::ExitStoreSuppressed {
                        web: i,
                        sym,
                        entries: names(&w.entries),
                    });
                }
            }
            None => {
                t.push(TraceEvent::WebUncolored { web: i, sym, nodes: names(&w.nodes) });
            }
        }
    }
}

/// Records spill-motion decisions: each cluster, the MSPILL set hoisted to
/// its root, and every FREE grant a member received.
fn emit_cluster_events(
    t: &mut AnalyzerTrace,
    graph: &CallGraph,
    clustering: &Clustering,
    usage: &[RegUsage],
) {
    let name = |n: NodeId| graph.node(n).name.clone();
    for c in &clustering.clusters {
        let members: Vec<String> = c.members.iter().map(|&m| name(m)).collect();
        t.push(TraceEvent::ClusterFormed { root: name(c.root), members: members.clone() });
        let mspill = usage[c.root.index()].mspill;
        if !mspill.is_empty() {
            t.push(TraceEvent::SpillHoisted { root: name(c.root), regs: mspill, members });
        }
    }
    for n in graph.node_ids() {
        if graph.node(n).defined && !usage[n.index()].free.is_empty() {
            t.push(TraceEvent::FreeRegsGranted { proc: name(n), regs: usage[n.index()].free });
        }
    }
}

fn record_web_stats(stats: &mut AnalyzerStats, wstats: &WebStats, prio: &Prioritization) {
    stats.webs_total = wstats.webs_total;
    stats.discarded_static = wstats.discarded_static;
    stats.webs_considered = prio.considered.len();
    stats.discarded_sparse = prio.discarded_sparse;
    stats.discarded_trivial = prio.discarded_trivial;
    stats.discarded_unprofitable = prio.discarded_unprofitable;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::testutil::{figure3, summary};
    use vpr::regs::Reg;

    #[test]
    fn figure3_full_analysis_matches_table2() {
        let s = figure3();
        let analysis = analyze(&s, &AnalyzerOptions::default());
        let st = &analysis.stats;
        assert_eq!(st.eligible_globals, 3);
        assert_eq!(st.webs_total, 4);
        assert_eq!(st.webs_colored, 4);

        let db = &analysis.database;
        // B is an entry of g1's web (Table 2 commentary).
        let b = db.lookup("B");
        let g1 = b.promotions.iter().find(|p| p.sym == "g1").unwrap();
        assert!(g1.is_entry);
        assert!(g1.store_at_exit);
        // D holds g1 in the same register, not as an entry.
        let d = db.lookup("D");
        let g1d = d.promotions.iter().find(|p| p.sym == "g1").unwrap();
        assert_eq!(g1d.reg, g1.reg);
        assert!(!g1d.is_entry);
        // C carries both g3 and g2 in different registers.
        let c = db.lookup("C");
        assert_eq!(c.promotions.len(), 2);
        assert_ne!(c.promotions[0].reg, c.promotions[1].reg);
        // H has no promotions.
        assert!(db.lookup("H").promotions.is_empty());
        // Web registers are excluded from the node's usage sets.
        for p in &c.promotions {
            assert!(!c.usage.callee.contains(p.reg));
            assert!(!c.usage.caller.contains(p.reg));
            assert!(!c.usage.free.contains(p.reg));
        }
    }

    #[test]
    fn l2_config_produces_standard_directives() {
        let s = figure3();
        let analysis = analyze(&s, &AnalyzerOptions::paper_config(PaperConfig::L2, None));
        for d in analysis.database.iter() {
            assert!(d.promotions.is_empty());
            assert!(!d.is_cluster_root);
            assert_eq!(d.usage, crate::regsets::RegUsage::standard());
        }
        assert_eq!(analysis.stats.webs_total, 0);
        assert_eq!(analysis.stats.clusters, 0);
    }

    #[test]
    fn spill_only_config_has_no_promotions() {
        let s = summary(
            &[
                ("main", &[("r", 1)], &["g"]),
                ("r", &[("s", 100), ("t", 100)], &[]),
                ("s", &[], &["g"]),
                ("t", &[], &[]),
            ],
            &["g"],
        );
        let analysis = analyze(&s, &AnalyzerOptions::paper_config(PaperConfig::A, None));
        assert_eq!(analysis.stats.webs_total, 0);
        assert!(analysis.stats.clusters >= 1);
        let r = analysis.database.lookup("r");
        assert!(r.is_cluster_root);
        assert!(!r.usage.mspill.is_empty());
        let s_ = analysis.database.lookup("s");
        assert!(!s_.usage.free.is_empty());
        assert!(s_.promotions.is_empty());
    }

    #[test]
    fn blanket_config_promotes_program_wide() {
        let s = figure3();
        let analysis = analyze(&s, &AnalyzerOptions::paper_config(PaperConfig::E, None));
        assert_eq!(analysis.stats.webs_colored, 3); // g1, g2, g3
                                                    // Every defined node carries all three promotions.
        for name in ["A", "B", "C", "D", "E", "F", "G", "H"] {
            let d = analysis.database.lookup(name);
            assert_eq!(d.promotions.len(), 3, "{name}: {:?}", d.promotions);
            // Only the start node A is an entry.
            for p in &d.promotions {
                assert_eq!(p.is_entry, name == "A");
            }
        }
        // Three distinct registers.
        let a = analysis.database.lookup("A");
        let regs: std::collections::HashSet<Reg> = a.promotions.iter().map(|p| p.reg).collect();
        assert_eq!(regs.len(), 3);
    }

    /// The paper's directives are target-independent *structure* (§2):
    /// which globals form webs over which nodes, and where clusters root,
    /// are properties of the call graph and reference sets — only the
    /// concrete registers the structure is colored onto belong to the
    /// machine description. Figure 3 must therefore produce the same
    /// webs/clusters shape on both targets.
    #[test]
    fn figure3_directives_are_structurally_portable_across_targets() {
        let s = figure3();
        let on =
            |target| analyze(&s, &AnalyzerOptions::paper_config_for(PaperConfig::C, None, target));
        let v = on(vpr::target::TargetId::Vpr);
        let r = on(vpr::target::TargetId::Rv32);

        // Same web/cluster structure in the aggregate...
        assert_eq!(v.stats.webs_total, r.stats.webs_total);
        assert_eq!(v.stats.webs_colored, r.stats.webs_colored);
        assert_eq!(v.stats.clusters, r.stats.clusters);
        assert_eq!(v.stats.eligible_globals, r.stats.eligible_globals);

        // ...and web by web: same globals over the same nodes with the
        // same entries, both colored — onto each target's own registers.
        assert_eq!(v.webs.len(), r.webs.len());
        for (wv, wr) in v.webs.iter().zip(&r.webs) {
            assert_eq!(wv.sym, wr.sym);
            assert_eq!(wv.nodes, wr.nodes);
            assert_eq!(wv.entries, wr.entries);
            assert_eq!(wv.reg.is_some(), wr.reg.is_some(), "web {}", wv.sym);
            if let Some(reg) = wv.reg {
                assert!(vpr::target::VPR.callee_saves.contains(reg));
            }
            if let Some(reg) = wr.reg {
                assert!(vpr::target::RV32.callee_saves.contains(reg));
            }
        }

        // Per-procedure: identical promotion and cluster structure.
        for d in v.database.iter() {
            let other = r.database.lookup(&d.name);
            assert_eq!(d.is_cluster_root, other.is_cluster_root, "{}", d.name);
            let shape = |p: &crate::database::ProcDirectives| {
                p.promotions
                    .iter()
                    .map(|x| (x.sym.clone(), x.is_entry, x.store_at_exit))
                    .collect::<Vec<_>>()
            };
            assert_eq!(shape(d), shape(&other), "{}", d.name);
        }
    }

    #[test]
    fn greedy_config_runs() {
        let s = figure3();
        let analysis = analyze(&s, &AnalyzerOptions::paper_config(PaperConfig::D, None));
        assert_eq!(analysis.stats.webs_total, 4);
        assert!(analysis.stats.webs_colored >= 1);
    }

    #[test]
    fn paper_config_profile_plumbing() {
        assert!(PaperConfig::B.wants_profile());
        assert!(PaperConfig::F.wants_profile());
        assert!(!PaperConfig::C.wants_profile());
        let mut p = ProfileData::new();
        p.record_edge("A", "B", 42);
        let opts = AnalyzerOptions::paper_config(PaperConfig::F, Some(p.clone()));
        assert_eq!(opts.profile, Some(p));
        let opts = AnalyzerOptions::paper_config(PaperConfig::C, Some(ProfileData::new()));
        assert_eq!(opts.profile, None, "C must ignore profile data");
    }

    #[test]
    fn database_covers_only_defined_procs() {
        let s = summary(&[("main", &[("libc_read", 5)], &["g"])], &["g"]);
        let analysis = analyze(&s, &AnalyzerOptions::default());
        assert!(analysis.database.get("main").is_some());
        assert!(analysis.database.get("libc_read").is_none());
    }

    #[test]
    fn web_reports_cover_all_webs() {
        let s = figure3();
        let analysis = analyze(&s, &AnalyzerOptions::default());
        assert_eq!(analysis.webs.len(), 4);
        let g3 = analysis.webs.iter().find(|w| w.sym == "g3").unwrap();
        assert_eq!(g3.nodes, vec!["A", "B", "C"]);
        assert_eq!(g3.entries, vec!["A"]);
        assert!(g3.reg.is_some());
        assert!(g3.written);
        // Promotion off: no reports.
        let analysis = analyze(&s, &AnalyzerOptions::paper_config(PaperConfig::A, None));
        assert!(analysis.webs.is_empty());
    }

    #[test]
    fn traced_analysis_is_identical_and_records_decisions() {
        let s = figure3();
        let plain = analyze(&s, &AnalyzerOptions::default());
        let (traced, trace) = analyze_traced(&s, &AnalyzerOptions::default());
        // Tracing is observation only.
        assert_eq!(plain.database, traced.database);
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.webs, traced.webs);

        let formed =
            trace.events.iter().filter(|e| matches!(e, TraceEvent::WebFormed { .. })).count();
        let colored =
            trace.events.iter().filter(|e| matches!(e, TraceEvent::WebColored { .. })).count();
        assert_eq!(formed, 4, "{trace:?}");
        assert_eq!(colored, 4);
        // Web events carry positive measured benefit on this example.
        for e in &trace.events {
            if let TraceEvent::WebFormed { benefit, .. } = e {
                assert!(*benefit > 0);
            }
        }
        // The causal chain for g1 mentions its entry node B.
        assert!(trace.for_symbol("g1").iter().any(|e| e.mentions("B")));
        // Clusters/hoists recorded for the spill-motion side.
        let has_cluster =
            trace.events.iter().any(|e| matches!(e, TraceEvent::ClusterFormed { .. }));
        assert_eq!(has_cluster, plain.stats.clusters > 0);
    }

    #[test]
    fn traced_analysis_records_discards_with_reasons() {
        // Long chain with refs only at the ends: the single web is sparse
        // under a 0.5 ratio threshold.
        let s = summary(
            &[
                ("main", &[("c1", 1)], &["g"]),
                ("c1", &[("c2", 1)], &[]),
                ("c2", &[("c3", 1)], &[]),
                ("c3", &[("end", 1)], &[]),
                ("end", &[], &["g"]),
            ],
            &["g"],
        );
        let opts = AnalyzerOptions {
            discard: DiscardHeuristics { min_lref_ratio: 0.5, min_singleton_refs: 0 },
            ..AnalyzerOptions::default()
        };
        let (analysis, trace) = analyze_traced(&s, &opts);
        assert_eq!(analysis.stats.discarded_sparse, 1);
        let discard = trace
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::WebDiscarded { reason, benefit, .. } => Some((*reason, *benefit)),
                _ => None,
            })
            .expect("discard event");
        assert_eq!(discard.0, DiscardReason::Sparse);
        assert!(discard.1 > 0, "benefit estimate recorded at discard time");
        // Discarded webs are never colored.
        assert!(!trace.events.iter().any(|e| matches!(e, TraceEvent::WebColored { .. })));
    }

    #[test]
    fn traced_analysis_records_caller_claims() {
        let s = figure3();
        let opts = AnalyzerOptions { caller_preallocation: true, ..AnalyzerOptions::default() };
        let (plain_like, trace) = analyze_traced(&s, &opts);
        let claims: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CallerClaimGranted { .. }))
            .collect();
        assert_eq!(claims.len(), 8); // one per defined procedure A..H
        let plain = analyze(&s, &opts);
        assert_eq!(plain.database, plain_like.database);
    }

    #[test]
    fn stats_config_labels() {
        assert_eq!(PaperConfig::ALL.len(), 7);
        assert_eq!(PaperConfig::ALL_WITH_ALIAS.len(), 8);
        assert!(!PaperConfig::ALL.contains(&PaperConfig::P));
        assert_eq!(PaperConfig::ALL_WITH_ALIAS[7], PaperConfig::P);
        assert_eq!(PaperConfig::C.to_string(), "C");
        assert_eq!(PaperConfig::L2.to_string(), "L2");
        assert_eq!(PaperConfig::P.to_string(), "P");
        assert!(!PaperConfig::P.wants_profile());
    }

    #[test]
    fn alias_precision_config_promotes_read_only_aliased_global() {
        use ipra_alias::{Constraint, Node, ProcConstraints};
        let mut s = summary(&[("main", &[], &["g"])], &["g"]);
        // main reads g through a pointer and never writes it at all.
        s.modules[0].procs[0].global_refs[0].written = false;
        s.modules[0].procs[0].global_refs[0].ptr_ref = true;
        s.modules[0].procs[0].alias = ProcConstraints {
            params: 0,
            constraints: vec![
                Constraint::AddrGlobal { dst: Node::Var(0), sym: "g".into() },
                Constraint::Load { dst: Node::Var(1), addr: Node::Var(0) },
            ],
        };
        let blanket = analyze(&s, &AnalyzerOptions::paper_config(PaperConfig::C, None));
        assert_eq!(blanket.stats.eligible_globals, 0);
        let (precise, trace) =
            analyze_traced(&s, &AnalyzerOptions::paper_config(PaperConfig::P, None));
        assert_eq!(precise.stats.eligible_globals, 1);
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::AliasPromotable { sym, .. } if sym == "g")));
        // With a direct write added, the register copy a pointer read sees
        // would go stale: config P must demote again, with a witness.
        s.modules[0].procs[0].global_refs[0].written = true;
        let (demoted, trace) =
            analyze_traced(&s, &AnalyzerOptions::paper_config(PaperConfig::P, None));
        assert_eq!(demoted.stats.eligible_globals, 0);
        assert!(trace.events.iter().any(|e| matches!(
            e,
            TraceEvent::AliasDemoted { sym, justification } if sym == "g" && justification.contains("main")
        )));
    }

    #[test]
    fn alias_events_do_not_perturb_the_database() {
        use ipra_alias::{Constraint, Node, ProcConstraints};
        let mut s = figure3();
        s.modules[0].procs[1].alias = ProcConstraints {
            params: 0,
            constraints: vec![
                Constraint::AddrGlobal { dst: Node::Var(0), sym: "g1".into() },
                Constraint::Store { addr: Node::Var(0), src: None },
            ],
        };
        s.modules[0].procs[1].global_refs[0].ptr_mod = true;
        let opts = AnalyzerOptions::paper_config(PaperConfig::P, None);
        let plain = analyze(&s, &opts);
        let (traced, trace) = analyze_traced(&s, &opts);
        assert_eq!(plain.database, traced.database);
        // g1 is pointer-written in B (reachable from the start node A? A is
        // the only start; B is called by A): demoted under P as well.
        assert_eq!(plain.stats.eligible_globals, 2);
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::AliasDemoted { sym, .. } if sym == "g1")));
    }
}
