//! Dynamic profile data for the analyzer.
//!
//! The paper's configurations B and F feed `gprof` call-graph profiles to
//! the program analyzer. Here the equivalent data comes from the `vpr`
//! simulator's exact per-edge call counts; the driver converts a profiling
//! run's `RunStats` into a [`ProfileData`] keyed by link names.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Procedure-level call profile: per-callee and per-edge call counts.
///
/// Serializes as a flat edge list (JSON object keys must be strings, and
/// edges are `(caller, callee)` pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(into = "ProfileRepr", from = "ProfileRepr")]
pub struct ProfileData {
    calls: HashMap<String, u64>,
    edges: HashMap<(String, String), u64>,
}

/// On-disk form of [`ProfileData`].
#[derive(Serialize, Deserialize)]
struct ProfileRepr {
    edges: Vec<(String, String, u64)>,
}

impl From<ProfileData> for ProfileRepr {
    fn from(p: ProfileData) -> ProfileRepr {
        let mut edges: Vec<(String, String, u64)> =
            p.edges.into_iter().map(|((a, b), c)| (a, b, c)).collect();
        edges.sort();
        ProfileRepr { edges }
    }
}

impl From<ProfileRepr> for ProfileData {
    fn from(r: ProfileRepr) -> ProfileData {
        let mut p = ProfileData::new();
        for (a, b, c) in r.edges {
            p.record_edge(&a, &b, c);
        }
        p
    }
}

impl ProfileData {
    /// Creates an empty profile.
    pub fn new() -> ProfileData {
        ProfileData::default()
    }

    /// Adds `count` traversals of the `caller → callee` edge (and to the
    /// callee's total).
    pub fn record_edge(&mut self, caller: &str, callee: &str, count: u64) {
        *self.edges.entry((caller.to_string(), callee.to_string())).or_insert(0) += count;
        *self.calls.entry(callee.to_string()).or_insert(0) += count;
    }

    /// Total recorded calls of `callee`.
    pub fn calls(&self, callee: &str) -> u64 {
        self.calls.get(callee).copied().unwrap_or(0)
    }

    /// Recorded traversals of `caller → callee`.
    pub fn edge(&self, caller: &str, callee: &str) -> u64 {
        self.edges.get(&(caller.to_string(), callee.to_string())).copied().unwrap_or(0)
    }

    /// Is the profile empty?
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.calls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let mut p = ProfileData::new();
        p.record_edge("a", "b", 3);
        p.record_edge("c", "b", 1);
        let json = serde_json::to_string(&p).unwrap();
        let back: ProfileData = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.calls("b"), 4);
    }

    #[test]
    fn record_and_query() {
        let mut p = ProfileData::new();
        p.record_edge("a", "b", 3);
        p.record_edge("a", "b", 2);
        p.record_edge("c", "b", 1);
        assert_eq!(p.edge("a", "b"), 5);
        assert_eq!(p.edge("b", "a"), 0);
        assert_eq!(p.calls("b"), 6);
        assert_eq!(p.calls("zzz"), 0);
        assert!(!p.is_empty());
        assert!(ProfileData::new().is_empty());
    }
}
