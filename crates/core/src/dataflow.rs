//! Promotion eligibility and the interprocedural reference dataflow.
//!
//! Implements the paper's §4.1.2: a global is *eligible* for promotion when
//! it fits a register (scalar, not an array) and is never aliased (its
//! address is never taken); then the `L_REF`/`P_REF`/`C_REF` sets are
//! propagated over the call graph:
//!
//! * `L_REF[P]` — eligible globals referenced locally in `P`,
//! * `P_REF[P]` — eligible globals referenced somewhere on a call chain
//!   from a start node to `P` (exclusive),
//! * `C_REF[P]` — eligible globals referenced somewhere on a call chain
//!   starting at `P` (exclusive).
//!
//! `C_REF` propagates bottom-up (reverse condensation order) and `P_REF`
//! top-down, both iterated to a fixpoint, exactly as the paper prescribes
//! for faster convergence.

use crate::bitset::BitSet;
use crate::callgraph::{CallGraph, NodeId};
use ipra_summary::ProgramSummary;
use std::collections::HashMap;

/// An index into the eligible-global table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// Index accessor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a global was rejected for promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IneligibleReason {
    /// Arrays do not fit in a register.
    Array,
    /// The global's address is taken somewhere (may be aliased).
    Aliased,
    /// Referenced but defined in no summarized module (outside the partial
    /// call graph, §7.2).
    Undefined,
}

/// One eligible global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EligibleGlobal {
    /// Link name.
    pub sym: String,
    /// Defining module.
    pub module: String,
    /// Declared `static` (module-private, §7.4)?
    pub is_static: bool,
}

/// The eligibility analysis result.
#[derive(Debug, Clone, Default)]
pub struct Eligibility {
    globals: Vec<EligibleGlobal>,
    by_sym: HashMap<String, GlobalId>,
    rejected: Vec<(String, IneligibleReason)>,
    /// Per (node, global): local reference frequency.
    ref_freq: HashMap<(NodeId, GlobalId), u64>,
    /// Per (node, global): does the node write the global?
    written: HashMap<(NodeId, GlobalId), bool>,
}

impl Eligibility {
    /// Determines the promotable globals of a program, treating every
    /// address-taken global as aliased (the classic conservative rule).
    pub fn compute(graph: &CallGraph, summary: &ProgramSummary) -> Eligibility {
        Self::compute_with_alias(graph, summary, None)
    }

    /// The set of globals the conservative rule rejects as aliased: any
    /// global whose address is taken anywhere.
    pub fn blanket_aliased(summary: &ProgramSummary) -> Vec<String> {
        let mut aliased: Vec<String> = Vec::new();
        for p in summary.procs() {
            for r in &p.global_refs {
                if r.address_taken() && !aliased.contains(&r.sym) {
                    aliased.push(r.sym.clone());
                }
            }
        }
        aliased
    }

    /// The set of globals the precise interprocedural rule rejects. A
    /// global stays register-promotable despite `&g` appearing somewhere
    /// unless keeping it in a register could actually be observed:
    ///
    /// * its address escapes to unknown code (anything may happen), or
    /// * some reachable procedure may *write* it through a pointer (the
    ///   register copy would go stale), or
    /// * some reachable procedure may *read* it through a pointer while a
    ///   reachable procedure also writes it directly (the memory home the
    ///   read sees would go stale).
    ///
    /// Read-only aliasing of a never-written global is harmless: memory
    /// always holds the initial value, and so does the register.
    ///
    /// "Reachable" here is the *call graph's* over-approximation (§7.3:
    /// any indirect call may target any address-taken procedure), not the
    /// points-to solve's sharper notion. The solver can prove a taken
    /// address never flows into a call, but the procedure's code is still
    /// emitted and its register discipline is still independently checked
    /// (`ipra-verify` resolves indirect calls the §7.3 way), so a pointer
    /// write in that gap must keep blocking promotion; the solver's
    /// pruning applies only to procedures dead under *both* notions.
    pub fn alias_aliased(
        graph: &CallGraph,
        summary: &ProgramSummary,
        solution: &ipra_alias::Solution,
    ) -> Vec<String> {
        // Call-graph reachability from the entry, indirect edges included.
        let mut coarse: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        if let Some(root) = graph.by_name("main") {
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                if coarse.insert(graph.node(n).name.as_str()) {
                    stack.extend(graph.successors(n));
                }
            }
        }
        let mut dir_mod: Vec<&str> = Vec::new();
        // Pointer facts of "gap" procedures — call-graph-reachable but
        // pruned by the points-to solve. Their emitted code is checked,
        // so their local bits count, conservatively (the solver has no
        // sharper interprocedural facts for them by construction).
        let mut gap_mod: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut gap_ref: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for p in summary.procs() {
            let precise = solution.reachable.contains(&p.name);
            let gap = !precise && coarse.contains(p.name.as_str());
            if !precise && !gap {
                continue;
            }
            for r in &p.global_refs {
                if r.written && !dir_mod.contains(&r.sym.as_str()) {
                    dir_mod.push(&r.sym);
                }
                if gap {
                    if r.ptr_mod || r.escapes {
                        gap_mod.insert(&r.sym);
                    }
                    if r.ptr_ref {
                        gap_ref.insert(&r.sym);
                    }
                }
            }
        }
        let mut candidates: std::collections::BTreeSet<&str> =
            solution.escaped.iter().map(String::as_str).collect();
        for syms in solution.proc_ind_mod.values().chain(solution.proc_ind_ref.values()) {
            candidates.extend(syms.iter().map(String::as_str));
        }
        candidates.extend(gap_mod.iter());
        candidates.extend(gap_ref.iter());
        candidates
            .into_iter()
            .filter(|g| {
                solution.is_escaped(g)
                    || solution.ind_mod_witness(g).is_some()
                    || gap_mod.contains(g)
                    || ((solution.ind_ref_witness(g).is_some() || gap_ref.contains(g))
                        && dir_mod.contains(g))
            })
            .map(str::to_string)
            .collect()
    }

    /// Determines the promotable globals, using the interprocedural alias
    /// solution for the aliasing rejection when one is given.
    pub fn compute_with_alias(
        graph: &CallGraph,
        summary: &ProgramSummary,
        solution: Option<&ipra_alias::Solution>,
    ) -> Eligibility {
        let aliased: Vec<String> = match solution {
            None => Self::blanket_aliased(summary),
            Some(sol) => Self::alias_aliased(graph, summary, sol),
        };
        let mut referenced: Vec<String> = Vec::new();
        for p in summary.procs() {
            for r in &p.global_refs {
                if !referenced.contains(&r.sym) {
                    referenced.push(r.sym.clone());
                }
            }
        }
        let mut e = Eligibility::default();
        let mut defined: Vec<&str> = Vec::new();
        for g in summary.globals() {
            defined.push(&g.sym);
            if g.is_array {
                e.rejected.push((g.sym.clone(), IneligibleReason::Array));
            } else if aliased.contains(&g.sym) {
                e.rejected.push((g.sym.clone(), IneligibleReason::Aliased));
            } else {
                let id = GlobalId(e.globals.len() as u32);
                e.by_sym.insert(g.sym.clone(), id);
                e.globals.push(EligibleGlobal {
                    sym: g.sym.clone(),
                    module: g.module.clone(),
                    is_static: g.is_static,
                });
            }
        }
        for r in referenced {
            if !defined.contains(&r.as_str()) {
                e.rejected.push((r, IneligibleReason::Undefined));
            }
        }
        // Local reference frequencies, weighted by estimated invocations
        // later; store raw here.
        for p in summary.procs() {
            let Some(node) = graph.by_name(&p.name) else { continue };
            for r in &p.global_refs {
                if let Some(&gid) = e.by_sym.get(&r.sym) {
                    *e.ref_freq.entry((node, gid)).or_insert(0) += r.freq;
                    *e.written.entry((node, gid)).or_insert(false) |= r.written;
                }
            }
        }
        e
    }

    /// Number of eligible globals.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Is anything eligible?
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Ids of all eligible globals.
    pub fn ids(&self) -> impl Iterator<Item = GlobalId> {
        (0..self.globals.len() as u32).map(GlobalId)
    }

    /// The eligible global for `id`.
    pub fn global(&self, id: GlobalId) -> &EligibleGlobal {
        &self.globals[id.index()]
    }

    /// Looks an eligible global up by link name.
    pub fn by_sym(&self, sym: &str) -> Option<GlobalId> {
        self.by_sym.get(sym).copied()
    }

    /// Rejected globals with reasons (for the analyzer's statistics).
    pub fn rejected(&self) -> &[(String, IneligibleReason)] {
        &self.rejected
    }

    /// Local reference frequency of `g` in `node`.
    pub fn ref_freq(&self, node: NodeId, g: GlobalId) -> u64 {
        self.ref_freq.get(&(node, g)).copied().unwrap_or(0)
    }

    /// Does `node` write `g`?
    pub fn writes(&self, node: NodeId, g: GlobalId) -> bool {
        self.written.get(&(node, g)).copied().unwrap_or(false)
    }
}

/// The three per-node reference sets.
#[derive(Debug, Clone)]
pub struct RefSets {
    /// `L_REF` per node.
    pub l_ref: Vec<BitSet>,
    /// `P_REF` per node.
    pub p_ref: Vec<BitSet>,
    /// `C_REF` per node.
    pub c_ref: Vec<BitSet>,
}

impl RefSets {
    /// Computes the sets over the call graph.
    pub fn compute(graph: &CallGraph, elig: &Eligibility) -> RefSets {
        let n = graph.len();
        let cap = elig.len();
        let mut l_ref: Vec<BitSet> = (0..n).map(|_| BitSet::new(cap)).collect();
        for node in graph.node_ids() {
            for g in elig.ids() {
                if elig.ref_freq(node, g) > 0 {
                    l_ref[node.index()].insert(g.index());
                }
            }
        }

        // C_REF: bottom-up (reverse condensation topological order),
        // iterated to fixpoint for cycles.
        let mut c_ref: Vec<BitSet> = (0..n).map(|_| BitSet::new(cap)).collect();
        let bottom_up: Vec<NodeId> = graph.topo_order().iter().rev().copied().collect();
        loop {
            let mut changed = false;
            for &p in &bottom_up {
                let mut acc = c_ref[p.index()].clone();
                for s in graph.successors(p) {
                    // Self-edges participate: a self-recursive node sees its
                    // own L_REF in C_REF (and in P_REF below), which is what
                    // routes recursive chains into the cycle-web handling.
                    let (a, b) = (&c_ref[s.index()], &l_ref[s.index()]);
                    let mut add = a.clone();
                    add.union_with(b);
                    acc.union_with(&add);
                }
                if acc != c_ref[p.index()] {
                    c_ref[p.index()] = acc;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // P_REF: top-down (condensation topological order), to fixpoint.
        let mut p_ref: Vec<BitSet> = (0..n).map(|_| BitSet::new(cap)).collect();
        let top_down = graph.topo_order().to_vec();
        loop {
            let mut changed = false;
            for &p in &top_down {
                let mut acc = p_ref[p.index()].clone();
                for i in graph.predecessors(p) {
                    let (a, b) = (&p_ref[i.index()], &l_ref[i.index()]);
                    let mut add = a.clone();
                    add.union_with(b);
                    acc.union_with(&add);
                }
                if acc != p_ref[p.index()] {
                    p_ref[p.index()] = acc;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        RefSets { l_ref, p_ref, c_ref }
    }

    /// `g ∈ L_REF[n]`?
    pub fn in_l(&self, n: NodeId, g: GlobalId) -> bool {
        self.l_ref[n.index()].contains(g.index())
    }

    /// `g ∈ P_REF[n]`?
    pub fn in_p(&self, n: NodeId, g: GlobalId) -> bool {
        self.p_ref[n.index()].contains(g.index())
    }

    /// `g ∈ C_REF[n]`?
    pub fn in_c(&self, n: NodeId, g: GlobalId) -> bool {
        self.c_ref[n.index()].contains(g.index())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use ipra_summary::*;

    /// One procedure in [`summary`]'s compact program description:
    /// `(proc, [(callee, freq)], [global syms referenced])`.
    pub type ProcDesc<'a> = (&'a str, &'a [(&'a str, u64)], &'a [&'a str]);

    /// Builds a one-module program summary from a compact description.
    pub fn summary(procs: &[ProcDesc<'_>], globals: &[&str]) -> ProgramSummary {
        let procs = procs
            .iter()
            .map(|(name, calls, refs)| ProcSummary {
                name: name.to_string(),
                module: "m".to_string(),
                global_refs: refs
                    .iter()
                    .map(|g| GlobalRef {
                        sym: g.to_string(),
                        freq: 10,
                        written: true,
                        ptr_mod: false,
                        ptr_ref: false,
                        escapes: false,
                    })
                    .collect(),
                calls: calls
                    .iter()
                    .map(|(c, f)| CallRef { callee: c.to_string(), freq: *f })
                    .collect(),
                taken_addresses: vec![],
                makes_indirect_calls: false,
                callee_saves_estimate: 2,
                caller_saves_estimate: 2,
                alias: Default::default(),
            })
            .collect();
        let globals = globals
            .iter()
            .map(|g| GlobalFact {
                sym: g.to_string(),
                size: 1,
                is_array: false,
                is_static: false,
                module: "m".to_string(),
                init: vec![],
            })
            .collect();
        ProgramSummary { modules: vec![ModuleSummary { module: "m".into(), procs, globals }] }
    }

    /// The paper's Figure 3 example: nodes A–H, globals g1–g3, with the
    /// L_REF sets of Table 1.
    pub fn figure3() -> ProgramSummary {
        summary(
            &[
                ("A", &[("B", 1), ("C", 1)], &["g3"]),
                ("B", &[("D", 1), ("E", 1)], &["g1", "g3"]),
                ("C", &[("F", 1), ("G", 1)], &["g2", "g3"]),
                ("D", &[], &["g1"]),
                ("E", &[], &["g1", "g2"]),
                ("F", &[], &["g2"]),
                ("G", &[("H", 1)], &["g2"]),
                ("H", &[], &[]),
            ],
            &["g1", "g2", "g3"],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{figure3, summary};
    use super::*;
    use ipra_summary::{GlobalFact, GlobalRef, ModuleSummary, ProcSummary, ProgramSummary};

    fn build(s: &ProgramSummary) -> (CallGraph, Eligibility, RefSets) {
        let g = CallGraph::build(s, None);
        let e = Eligibility::compute(&g, s);
        let r = RefSets::compute(&g, &e);
        (g, e, r)
    }

    #[test]
    fn figure3_reproduces_table1() {
        let s = figure3();
        let (g, e, r) = build(&s);
        let node = |n: &str| g.by_name(n).unwrap();
        let gid = |s: &str| e.by_sym(s).unwrap();
        let (g1, g2, g3) = (gid("g1"), gid("g2"), gid("g3"));

        // Table 1, C_REF column.
        let c = |n: &str| {
            let id = node(n);
            e.ids().filter(|&x| r.in_c(id, x)).map(|x| e.global(x).sym.clone()).collect::<Vec<_>>()
        };
        assert_eq!(c("A"), vec!["g1", "g2", "g3"]);
        assert_eq!(c("B"), vec!["g1", "g2"]);
        assert_eq!(c("C"), vec!["g2"]);
        assert_eq!(c("D"), Vec::<String>::new());
        assert_eq!(c("E"), Vec::<String>::new());
        assert_eq!(c("H"), Vec::<String>::new());

        // Table 1, P_REF column.
        let p = |n: &str| {
            let id = node(n);
            e.ids().filter(|&x| r.in_p(id, x)).map(|x| e.global(x).sym.clone()).collect::<Vec<_>>()
        };
        assert_eq!(p("A"), Vec::<String>::new());
        assert_eq!(p("B"), vec!["g3"]);
        assert_eq!(p("C"), vec!["g3"]);
        assert_eq!(p("D"), vec!["g1", "g3"]);
        assert_eq!(p("E"), vec!["g1", "g3"]);
        assert_eq!(p("F"), vec!["g2", "g3"]);
        assert_eq!(p("G"), vec!["g2", "g3"]);
        assert_eq!(p("H"), vec!["g2", "g3"]);

        // L_REF spot checks.
        assert!(r.in_l(node("B"), g1) && r.in_l(node("B"), g3));
        assert!(!r.in_l(node("H"), g1) && !r.in_l(node("H"), g2) && !r.in_l(node("H"), g3));
        assert!(r.in_l(node("E"), g2));
    }

    #[test]
    fn aliased_and_array_globals_rejected() {
        let mut s = summary(&[("main", &[], &["g", "h"])], &["g", "h"]);
        // g's address is taken; h stays eligible. Add an array too.
        s.modules[0].procs[0].global_refs[0].escapes = true;
        s.modules[0].globals.push(GlobalFact {
            sym: "arr".into(),
            size: 10,
            is_array: true,
            is_static: false,
            module: "m".into(),
            init: vec![],
        });
        let g = CallGraph::build(&s, None);
        let e = Eligibility::compute(&g, &s);
        assert_eq!(e.len(), 1);
        assert!(e.by_sym("h").is_some());
        assert!(e.by_sym("g").is_none());
        assert!(e.rejected().iter().any(|(s, r)| s == "g" && *r == IneligibleReason::Aliased));
        assert!(e.rejected().iter().any(|(s, r)| s == "arr" && *r == IneligibleReason::Array));
    }

    #[test]
    fn undefined_extern_rejected() {
        let s = ProgramSummary {
            modules: vec![ModuleSummary {
                module: "m".into(),
                procs: vec![ProcSummary {
                    name: "main".into(),
                    module: "m".into(),
                    global_refs: vec![GlobalRef {
                        sym: "ctype".into(),
                        freq: 1,
                        written: false,
                        ptr_mod: false,
                        ptr_ref: false,
                        escapes: false,
                    }],
                    calls: vec![],
                    taken_addresses: vec![],
                    makes_indirect_calls: false,
                    callee_saves_estimate: 0,
                    caller_saves_estimate: 2,
                    alias: Default::default(),
                }],
                globals: vec![],
            }],
        };
        let g = CallGraph::build(&s, None);
        let e = Eligibility::compute(&g, &s);
        assert!(e.is_empty());
        assert!(e
            .rejected()
            .iter()
            .any(|(sy, r)| sy == "ctype" && *r == IneligibleReason::Undefined));
    }

    #[test]
    fn recursive_cycle_propagates_both_ways() {
        // main -> a <-> b; b refs g. Inside the cycle both P_REF and C_REF
        // must include g (reachable through the cycle).
        let s = summary(
            &[("main", &[("a", 1)], &[]), ("a", &[("b", 1)], &[]), ("b", &[("a", 1)], &["g"])],
            &["g"],
        );
        let (g, e, r) = build(&s);
        let gid = e.by_sym("g").unwrap();
        let a = g.by_name("a").unwrap();
        let b = g.by_name("b").unwrap();
        let main = g.by_name("main").unwrap();
        assert!(r.in_c(main, gid));
        assert!(r.in_c(a, gid));
        // b's own C_REF: along chains starting at b: b -> a -> b refs g.
        assert!(r.in_c(b, gid));
        // P_REF: a is reachable from b (which refs g), so g ∈ P_REF[a].
        assert!(r.in_p(a, gid));
        assert!(r.in_p(b, gid));
        assert!(!r.in_p(main, gid));
    }

    #[test]
    fn ref_freq_and_writes_recorded() {
        let s = summary(&[("main", &[], &["g"])], &["g"]);
        let (g, e, _) = build(&s);
        let m = g.by_name("main").unwrap();
        let gid = e.by_sym("g").unwrap();
        assert_eq!(e.ref_freq(m, gid), 10);
        assert!(e.writes(m, gid));
        assert_eq!(e.ref_freq(m, GlobalId(0)), 10);
    }
}
