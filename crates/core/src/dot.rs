//! Graphviz rendering of an analysis: the program call graph annotated
//! with estimated call counts, cluster roots, and the promoted webs.
//!
//! Diagnostic tooling (`cminc analyze --dot graph.dot`); the output is
//! plain `dot` syntax for `dot -Tsvg`.

use crate::analyzer::Analysis;
use crate::callgraph::CallGraph;
use ipra_summary::ProgramSummary;
use std::fmt::Write;

/// Renders the analyzed program as a `dot` digraph.
///
/// Nodes show the procedure name and (for cluster roots) the MSPILL set;
/// promoted webs appear as shaded clusters of member references below each
/// node; edges are labeled with the analyzer's estimated traversal counts.
pub fn call_graph_dot(summary: &ProgramSummary, analysis: &Analysis) -> String {
    let graph = CallGraph::build(summary, None);
    let mut out = String::new();
    let _ = writeln!(out, "digraph ipra {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    for n in graph.node_ids() {
        let node = graph.node(n);
        let dirs = analysis.database.get(&node.name);
        let mut label = node.name.clone();
        if let Some(d) = dirs {
            for p in &d.promotions {
                let _ = write!(
                    label,
                    "\\n{} -> {}{}",
                    p.sym,
                    p.reg,
                    if p.is_entry { " (entry)" } else { "" }
                );
            }
            if d.is_cluster_root {
                let _ = write!(label, "\\nMSPILL {}", d.usage.mspill);
            }
        }
        let mut attrs = format!("label=\"{label}\"");
        if !node.defined {
            attrs.push_str(", style=dashed");
        } else if dirs.map(|d| d.is_cluster_root).unwrap_or(false) {
            attrs.push_str(", style=filled, fillcolor=lightblue");
        } else if dirs.map(|d| !d.promotions.is_empty()).unwrap_or(false) {
            attrs.push_str(", style=filled, fillcolor=lightyellow");
        }
        let _ = writeln!(out, "  \"{}\" [{attrs}];", node.name);
    }

    for (i, e) in graph.edges().iter().enumerate() {
        let from = &graph.node(e.from).name;
        let to = &graph.node(e.to).name;
        let style = if e.indirect { ", style=dotted" } else { "" };
        let _ =
            writeln!(out, "  \"{from}\" -> \"{to}\" [label=\"{}\"{style}];", graph.edge_count(i));
    }

    // Web legend.
    let _ = writeln!(out, "  subgraph cluster_webs {{");
    let _ = writeln!(out, "    label=\"webs\"; fontname=\"monospace\";");
    for (i, w) in analysis.webs.iter().enumerate() {
        let reg = w.reg.map(|r| r.to_string()).unwrap_or_else(|| "uncolored".into());
        let _ = writeln!(
            out,
            "    web{i} [shape=note, label=\"{}: {} @ {}\\nentries: {}\"];",
            i + 1,
            w.sym,
            reg,
            w.entries.join(" ")
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze, AnalyzerOptions};
    use crate::dataflow::testutil::figure3;

    #[test]
    fn renders_figure3() {
        let s = figure3();
        let analysis = analyze(&s, &AnalyzerOptions::default());
        let dot = call_graph_dot(&s, &analysis);
        assert!(dot.starts_with("digraph ipra {"));
        assert!(dot.trim_end().ends_with('}'));
        for name in ["A", "B", "C", "D", "E", "F", "G", "H"] {
            assert!(dot.contains(&format!("\"{name}\"")), "missing node {name}");
        }
        assert!(dot.contains("\"A\" -> \"B\""));
        assert!(dot.contains("cluster_webs"));
        assert!(dot.contains("g3"));
        // Balanced braces (a cheap well-formedness check).
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn marks_external_and_root_nodes() {
        use crate::dataflow::testutil::summary;
        let s = summary(
            &[("main", &[("r", 1), ("libc", 1)], &[]), ("r", &[("s", 100)], &[]), ("s", &[], &[])],
            &[],
        );
        let analysis = analyze(&s, &AnalyzerOptions::default());
        let dot = call_graph_dot(&s, &analysis);
        assert!(dot.contains("style=dashed"), "external node style missing");
        assert!(dot.contains("fillcolor=lightblue"), "cluster root style missing");
    }
}
