//! Cluster identification for spill code motion (paper §4.2.1–§4.2.2,
//! Figure 5).
//!
//! A *cluster* is a set of call-graph nodes such that (1) one node, the
//! *root*, dominates all others, (2) every non-root member has all of its
//! immediate predecessors inside the cluster, and (3) a node belongs only to
//! the cluster of its nearest dominating root. Root nodes are chosen by a
//! call-frequency heuristic: a node roots a cluster when the calls it makes
//! into its dominated successors outnumber the calls it receives — then
//! hoisting the members' callee-saves spills into the root's prologue
//! executes them less often.
//!
//! Recursive call cycles inside clusters are disallowed (§4.2.2): a non-root
//! member on a recursive chain would have its save/restore code removed
//! while being re-entered, destroying live register values. A *root* may be
//! recursive (it still executes its own spill code on every activation), and
//! clusters may sit inside larger cycles — footnote 4's Figure 7 case —
//! because every re-entry path runs through the root.
//!
//! The traversal realizes `Postpone_Visit` by walking nodes in
//! SCC-condensation topological order: a node is considered only after all
//! its non-back-edge predecessors.

use crate::callgraph::{CallGraph, NodeId};
use std::collections::HashMap;

/// One cluster: a root plus its member nodes.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The dominating root node.
    pub root: NodeId,
    /// Non-root members (ascending). The paper's `Cluster_Nodes[R]`.
    pub members: Vec<NodeId>,
}

impl Cluster {
    /// Root plus members.
    pub fn size(&self) -> usize {
        self.members.len() + 1
    }

    /// Is `n` the root or a member?
    pub fn contains(&self, n: NodeId) -> bool {
        n == self.root || self.members.binary_search(&n).is_ok()
    }
}

/// The clustering of a program.
#[derive(Debug, Clone, Default)]
pub struct Clustering {
    /// All clusters, in root topological order.
    pub clusters: Vec<Cluster>,
    /// Immediate dominators over the call graph (virtual-rooted).
    idom: Vec<Option<NodeId>>,
}

impl Clustering {
    /// The cluster rooted at `n`, if `n` is a root.
    pub fn cluster_of_root(&self, n: NodeId) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.root == n)
    }

    /// Is `n` a cluster root?
    pub fn is_root(&self, n: NodeId) -> bool {
        self.cluster_of_root(n).is_some()
    }

    /// Average cluster size (the paper reports 2–4 for its benchmarks).
    pub fn average_size(&self) -> f64 {
        if self.clusters.is_empty() {
            return 0.0;
        }
        self.clusters.iter().map(Cluster::size).sum::<usize>() as f64 / self.clusters.len() as f64
    }

    /// The immediate dominator of `n` (`None` for start nodes and
    /// unreachable nodes).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom.get(n.index()).copied().flatten()
    }
}

/// Tunables for root selection.
#[derive(Debug, Clone, Copy)]
pub struct ClusterHeuristics {
    /// A node becomes a root when (calls into dominated successors) >
    /// `root_gain` × (incoming calls).
    pub root_gain: f64,
}

impl Default for ClusterHeuristics {
    fn default() -> ClusterHeuristics {
        ClusterHeuristics { root_gain: 1.0 }
    }
}

/// Computes immediate dominators of the call graph. All start nodes hang
/// off a conceptual virtual root, so every reachable node has a defined
/// dominator chain; nodes unreachable from any start node get `None`.
pub fn call_graph_dominators(graph: &CallGraph) -> Vec<Option<NodeId>> {
    let n = graph.len();
    let starts = graph.start_nodes();
    // Reverse postorder from the virtual root (i.e., from all start nodes).
    let mut visited = vec![false; n];
    let mut post: Vec<NodeId> = Vec::with_capacity(n);
    for &s in &starts {
        if visited[s.index()] {
            continue;
        }
        // Iterative DFS.
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        visited[s.index()] = true;
        stack.push((s, graph.successors(s).collect(), 0));
        while let Some((node, succs, i)) = stack.last_mut() {
            if *i < succs.len() {
                let nx = succs[*i];
                *i += 1;
                if !visited[nx.index()] {
                    visited[nx.index()] = true;
                    let sx: Vec<NodeId> = graph.successors(nx).collect();
                    stack.push((nx, sx, 0));
                }
            } else {
                post.push(*node);
                stack.pop();
            }
        }
    }
    let rpo: Vec<NodeId> = post.into_iter().rev().collect();
    let mut rpo_idx: Vec<Option<usize>> = vec![None; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_idx[b.index()] = Some(i);
    }

    // Cooper–Harvey–Kennedy with a virtual root: start nodes' idom is the
    // virtual root, represented as self-domination.
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    for &s in &starts {
        idom[s.index()] = Some(s);
    }
    let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> Option<NodeId> {
        loop {
            if a == b {
                return Some(a);
            }
            let (ia, ib) = (rpo_idx[a.index()]?, rpo_idx[b.index()]?);
            if ia > ib {
                let next = idom[a.index()]?;
                if next == a {
                    return None; // reached a start node: virtual root
                }
                a = next;
            } else {
                let next = idom[b.index()]?;
                if next == b {
                    return None;
                }
                b = next;
            }
        }
    };
    let is_start = |x: NodeId| starts.contains(&x);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            if is_start(b) {
                continue;
            }
            let mut new_idom: Option<NodeId> = None;
            let mut hit_virtual = false;
            for p in graph.predecessors(b) {
                if idom[p.index()].is_none() {
                    continue; // unprocessed or unreachable
                }
                new_idom = match new_idom {
                    None => Some(p),
                    Some(cur) => match intersect(&idom, cur, p) {
                        Some(x) => Some(x),
                        None => {
                            hit_virtual = true;
                            break;
                        }
                    },
                };
            }
            // Converging paths from different start nodes meet only at the
            // virtual root: model as self-domination (treated like a start).
            let resolved = if hit_virtual { Some(b) } else { new_idom };
            if resolved != idom[b.index()] {
                idom[b.index()] = resolved;
                changed = true;
            }
        }
    }
    idom
}

/// Does `a` dominate `b` under `idom` (self-dominating roots terminate the
/// walk)?
pub fn cg_dominates(idom: &[Option<NodeId>], a: NodeId, b: NodeId) -> bool {
    let mut cur = b;
    for _ in 0..idom.len() + 1 {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
    false
}

/// Identifies all clusters.
pub fn identify_clusters(graph: &CallGraph, heur: &ClusterHeuristics) -> Clustering {
    let idom = call_graph_dominators(graph);
    let order = graph.topo_order().to_vec();

    // 1. Choose roots by the call-count heuristic.
    let mut is_root: Vec<bool> = vec![false; graph.len()];
    for &n in &order {
        if !graph.node(n).defined {
            continue;
        }
        let incoming: u64 = if graph.predecessors(n).next().is_none() {
            1
        } else {
            graph.pred_edges(n).map(|(i, _)| graph.edge_count(i)).sum::<u64>().max(1)
        };
        // Calls into immediate successors this node dominates and which
        // could be members (defined, non-recursive).
        let member_calls: u64 = graph
            .succ_edges(n)
            .filter(|(_, e)| {
                let s = e.to;
                s != n
                    && graph.node(s).defined
                    && !graph.is_recursive(s)
                    && cg_dominates(&idom, n, s)
            })
            .map(|(i, _)| graph.edge_count(i))
            .sum();
        if member_calls as f64 > heur.root_gain * incoming as f64 {
            is_root[n.index()] = true;
        }
    }

    // 2. Assign members to their nearest dominating root, requiring every
    //    immediate predecessor to already be in that cluster.
    let mut clusters: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut assigned: HashMap<NodeId, NodeId> = HashMap::new(); // node -> its cluster root
    for &n in &order {
        if !graph.node(n).defined || graph.is_recursive(n) {
            continue; // recursive chains never become non-root members
        }
        // Nearest dominating root, walking the idom chain (excluding n).
        let mut root: Option<NodeId> = None;
        let mut cur = n;
        while let Some(d) = idom[cur.index()] {
            if d == cur {
                break; // start node / virtual root
            }
            if is_root[d.index()] {
                root = Some(d);
                break;
            }
            cur = d;
        }
        let Some(r) = root else { continue };
        if r == n {
            continue;
        }
        // Condition [2]: all immediate predecessors inside the cluster.
        let all_preds_in = graph.predecessors(n).all(|p| p == r || assigned.get(&p) == Some(&r))
            && graph.predecessors(n).next().is_some();
        if all_preds_in {
            clusters.entry(r).or_default().push(n);
            assigned.insert(n, r);
        }
    }

    // Emit clusters in topological root order, members sorted. Roots whose
    // member set came up empty are dropped (a cluster of one node moves no
    // spill code).
    let mut out = Vec::new();
    for &n in &order {
        if let Some(mut members) = clusters.remove(&n) {
            members.sort();
            members.dedup();
            out.push(Cluster { root: n, members });
        }
    }
    Clustering { clusters: out, idom }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::testutil::summary;
    use ipra_summary::ProgramSummary;

    fn build(s: &ProgramSummary) -> (CallGraph, Clustering) {
        let g = CallGraph::build(s, None);
        let c = identify_clusters(&g, &ClusterHeuristics::default());
        (g, c)
    }

    fn node(g: &CallGraph, n: &str) -> NodeId {
        g.by_name(n).unwrap()
    }

    #[test]
    fn hot_callees_form_a_cluster() {
        // Figure 4 shape: main calls r once; r calls s and t in loops.
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("s", 100), ("t", 100)], &[]),
                ("s", &[], &[]),
                ("t", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        assert_eq!(c.clusters.len(), 1);
        let cl = &c.clusters[0];
        assert_eq!(cl.root, node(&g, "r"));
        assert_eq!(cl.members, vec![node(&g, "s"), node(&g, "t")]);
        assert_eq!(cl.size(), 3);
        assert!(cl.contains(node(&g, "r")));
        assert!(!cl.contains(node(&g, "main")));
    }

    #[test]
    fn uniform_call_frequencies_yield_no_clusters() {
        // Every edge runs once per caller activation: hoisting spill code
        // would execute it exactly as often, so no node passes the
        // strictly-greater root heuristic.
        let s =
            summary(&[("main", &[("r", 1)], &[]), ("r", &[("s", 1)], &[]), ("s", &[], &[])], &[]);
        let (_, c) = build(&s);
        assert!(c.clusters.is_empty(), "{:?}", c.clusters);
    }

    #[test]
    fn figure7_diamond_cluster() {
        // J -> K, L; K -> M; L -> M. J dominates all; K, L, M members.
        let s = summary(
            &[
                ("main", &[("j", 1)], &[]),
                ("j", &[("k", 50), ("l", 50)], &[]),
                ("k", &[("m", 10)], &[]),
                ("l", &[("m", 10)], &[]),
                ("m", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let cl = c.cluster_of_root(node(&g, "j")).expect("j roots a cluster");
        assert_eq!(cl.members, vec![node(&g, "k"), node(&g, "l"), node(&g, "m")]);
    }

    #[test]
    fn shared_callee_with_external_predecessor_excluded() {
        // r -> s, t; both call shared; but main also calls shared directly,
        // so shared has a predecessor outside the cluster and must stay out.
        let s = summary(
            &[
                ("main", &[("r", 1), ("shared", 1)], &[]),
                ("r", &[("s", 100), ("t", 100)], &[]),
                ("s", &[("shared", 5)], &[]),
                ("t", &[], &[]),
                ("shared", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let cl = c.cluster_of_root(node(&g, "r")).expect("r roots a cluster");
        assert!(!cl.contains(node(&g, "shared")));
        assert!(cl.contains(node(&g, "s")));
    }

    #[test]
    fn recursive_nodes_never_become_members() {
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("rec", 100), ("s", 100)], &[]),
                ("rec", &[("rec", 1)], &[]),
                ("s", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let cl = c.cluster_of_root(node(&g, "r")).expect("cluster");
        assert!(!cl.contains(node(&g, "rec")));
        assert!(cl.contains(node(&g, "s")));
    }

    #[test]
    fn recursive_root_is_allowed() {
        // r is self-recursive but calls hot helpers: r may root a cluster
        // (it executes its own spill code each activation).
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("r", 1), ("a", 100), ("b", 100)], &[]),
                ("a", &[], &[]),
                ("b", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let cl = c.cluster_of_root(node(&g, "r")).expect("recursive root allowed");
        assert_eq!(cl.members, vec![node(&g, "a"), node(&g, "b")]);
    }

    #[test]
    fn nested_clusters_allow_upward_motion() {
        // main -> r (hot) -> s (hot) -> leaves; r roots a cluster containing
        // s; s roots its own cluster of leaves.
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("s", 50)], &[]),
                ("s", &[("x", 50), ("y", 50)], &[]),
                ("x", &[], &[]),
                ("y", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        let r_cl = c.cluster_of_root(node(&g, "r")).expect("r cluster");
        let s_cl = c.cluster_of_root(node(&g, "s")).expect("s cluster");
        // s is a member of r's cluster AND a root itself (paper: "a cluster
        // root node can itself appear in Cluster_Nodes of a higher level
        // cluster root").
        assert!(r_cl.contains(node(&g, "s")));
        assert_eq!(s_cl.members, vec![node(&g, "x"), node(&g, "y")]);
        // Nearest-root rule: x belongs to s's cluster, not r's.
        assert!(!r_cl.contains(node(&g, "x")));
    }

    #[test]
    fn undefined_externals_stay_out() {
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("libc", 1000), ("s", 100)], &[]),
                ("s", &[], &[]),
            ],
            &[],
        );
        let (g, c) = build(&s);
        if let Some(cl) = c.cluster_of_root(node(&g, "r")) {
            assert!(!cl.contains(node(&g, "libc")));
        }
    }

    #[test]
    fn dominators_with_multiple_start_nodes() {
        // Two start nodes converge on c: nobody but c dominates c.
        let s =
            summary(&[("main", &[("c", 1)], &[]), ("alt", &[("c", 1)], &[]), ("c", &[], &[])], &[]);
        let g = CallGraph::build(&s, None);
        let idom = call_graph_dominators(&g);
        let c = node(&g, "c");
        // c's idom is the virtual root (self).
        assert_eq!(idom[c.index()], Some(c));
        assert!(!cg_dominates(&idom, node(&g, "main"), c));
        assert!(cg_dominates(&idom, c, c));
    }

    #[test]
    fn average_size_matches() {
        let s = summary(
            &[
                ("main", &[("r", 1)], &[]),
                ("r", &[("s", 100), ("t", 100)], &[]),
                ("s", &[], &[]),
                ("t", &[], &[]),
            ],
            &[],
        );
        let (_, c) = build(&s);
        assert!((c.average_size() - 3.0).abs() < 1e-9);
        assert_eq!(Clustering::default().average_size(), 0.0);
    }
}
