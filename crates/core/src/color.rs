//! Web prioritization and coloring (paper §4.1.3 and §6's variants).
//!
//! The web interference graph connects webs that share a call-graph node;
//! interfering webs cannot be promoted to the same register. Webs are sorted
//! by a priority heuristic — estimated dynamic references saved inside the
//! web minus the load/store cost paid at web entry invocations — after
//! discarding unprofitable webs (§6.2: "too sparse", or single-node with an
//! infrequently accessed global).
//!
//! Three promotion strategies from the evaluation:
//!
//! * **Reserved-K coloring** (Table 4 columns C/F): a fixed subset of K
//!   callee-saves registers is set aside for webs program-wide.
//! * **Greedy coloring** (column D): no reserved subset; a web may use any
//!   callee-saves register that none of its member procedures need for
//!   local values.
//! * **Blanket promotion** (column E, the [Wall 86] baseline): the N hottest
//!   globals each get a register dedicated across the *entire* program.

use crate::callgraph::{CallGraph, NodeId};
use crate::dataflow::{Eligibility, GlobalId};
use crate::webs::Web;
use vpr::regs::{Reg, RegSet};
use vpr::target::TargetDesc;

/// Promotion strategy (Table 4 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColoringStrategy {
    /// Reserve `count` callee-saves registers for web coloring.
    Reserved {
        /// Number of registers set aside (the paper uses 6).
        count: u32,
    },
    /// Use any callee-saves register not needed locally by a member
    /// procedure.
    Greedy,
}

/// Tunable discard thresholds (§6.2).
#[derive(Debug, Clone, Copy)]
pub struct DiscardHeuristics {
    /// Discard webs whose fraction of `L_REF` members is below this.
    pub min_lref_ratio: f64,
    /// Discard single-node webs whose weighted reference count is below
    /// this.
    pub min_singleton_refs: u64,
}

impl Default for DiscardHeuristics {
    fn default() -> DiscardHeuristics {
        DiscardHeuristics { min_lref_ratio: 0.25, min_singleton_refs: 8 }
    }
}

/// A web with its computed priority.
#[derive(Debug, Clone)]
pub struct PrioritizedWeb {
    /// Index into the original web list.
    pub web: usize,
    /// Benefit minus entry cost; webs are colored in descending order.
    pub priority: i64,
}

/// Per-web outcome of prioritization, recorded for the decision trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WebOutcome {
    /// The web survived the discard heuristics.
    Considered {
        /// Estimated dynamic references saved inside the web.
        benefit: u64,
        /// Estimated entry cost.
        cost: u64,
        /// Benefit minus cost.
        priority: i64,
    },
    /// Discarded: too few members reference the global (§6.2).
    Sparse {
        /// Estimated benefit at discard time.
        benefit: u64,
        /// Estimated entry cost at discard time.
        cost: u64,
    },
    /// Discarded: single-node web with too few weighted references (§6.2).
    Trivial {
        /// Estimated benefit at discard time.
        benefit: u64,
        /// Estimated entry cost at discard time.
        cost: u64,
    },
    /// Discarded: entry cost meets or exceeds the benefit.
    Unprofitable {
        /// Estimated benefit at discard time.
        benefit: u64,
        /// Estimated entry cost at discard time.
        cost: u64,
    },
}

impl WebOutcome {
    /// The benefit estimate measured for the web.
    pub fn benefit(self) -> u64 {
        match self {
            WebOutcome::Considered { benefit, .. }
            | WebOutcome::Sparse { benefit, .. }
            | WebOutcome::Trivial { benefit, .. }
            | WebOutcome::Unprofitable { benefit, .. } => benefit,
        }
    }

    /// The entry-cost estimate measured for the web.
    pub fn cost(self) -> u64 {
        match self {
            WebOutcome::Considered { cost, .. }
            | WebOutcome::Sparse { cost, .. }
            | WebOutcome::Trivial { cost, .. }
            | WebOutcome::Unprofitable { cost, .. } => cost,
        }
    }
}

/// Outcome of prioritization.
#[derive(Debug, Clone, Default)]
pub struct Prioritization {
    /// Webs surviving the discard heuristics, best first.
    pub considered: Vec<PrioritizedWeb>,
    /// Per-web decision, indexed like the input web list.
    pub outcomes: Vec<WebOutcome>,
    /// Webs discarded as sparse.
    pub discarded_sparse: usize,
    /// Webs discarded as unprofitable singletons.
    pub discarded_trivial: usize,
    /// Webs discarded because the entry cost exceeds the benefit.
    pub discarded_unprofitable: usize,
}

/// Estimated dynamic references to `w.global` inside the web.
pub fn web_benefit(w: &Web, graph: &CallGraph, elig: &Eligibility) -> u64 {
    w.nodes
        .iter()
        .map(|&n| elig.ref_freq(n, w.global).saturating_mul(graph.call_count(n).max(1)))
        .sum()
}

/// Estimated cost paid at web entry activations: the load at entry, the
/// store at exit (writable webs), plus the save/restore pair for the
/// dedicated register — four instructions per activation of a writable
/// web's entry, two for a read-only one.
pub fn web_entry_cost(w: &Web, graph: &CallGraph) -> u64 {
    let per_entry: u64 = if w.written { 4 } else { 2 };
    w.entries.iter().map(|&e| graph.call_count(e).max(1).saturating_mul(per_entry)).sum()
}

/// Sorts webs by priority and applies the discard heuristics.
pub fn prioritize(
    webs: &[Web],
    graph: &CallGraph,
    elig: &Eligibility,
    heur: &DiscardHeuristics,
) -> Prioritization {
    let mut out = Prioritization::default();
    for (i, w) in webs.iter().enumerate() {
        let benefit = web_benefit(w, graph, elig);
        let cost = web_entry_cost(w, graph);
        let lref_members = w.nodes.iter().filter(|&&n| elig.ref_freq(n, w.global) > 0).count();
        let ratio = lref_members as f64 / w.nodes.len() as f64;
        if ratio < heur.min_lref_ratio {
            out.discarded_sparse += 1;
            out.outcomes.push(WebOutcome::Sparse { benefit, cost });
            continue;
        }
        if w.nodes.len() == 1 && benefit < heur.min_singleton_refs {
            out.discarded_trivial += 1;
            out.outcomes.push(WebOutcome::Trivial { benefit, cost });
            continue;
        }
        let priority = benefit as i64 - cost as i64;
        if priority <= 0 {
            out.discarded_unprofitable += 1;
            out.outcomes.push(WebOutcome::Unprofitable { benefit, cost });
            continue;
        }
        out.outcomes.push(WebOutcome::Considered { benefit, cost, priority });
        out.considered.push(PrioritizedWeb { web: i, priority });
    }
    out.considered.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.web.cmp(&b.web)));
    out
}

/// Do two webs interfere (share a call-graph node)?
pub fn interferes(a: &Web, b: &Web) -> bool {
    // Both node lists are sorted: linear merge.
    let (mut i, mut j) = (0, 0);
    while i < a.nodes.len() && j < b.nodes.len() {
        match a.nodes[i].cmp(&b.nodes[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The result of coloring: a register per web index (uncolored = `None`).
#[derive(Debug, Clone, Default)]
pub struct Coloring {
    /// Assigned register per web (indexed like the input web list).
    pub assignment: Vec<Option<Reg>>,
    /// Number of webs successfully colored.
    pub colored: usize,
}

/// Colors the prioritized webs (VPR convention).
pub fn color_webs(
    webs: &[Web],
    prio: &Prioritization,
    strategy: ColoringStrategy,
    graph: &CallGraph,
) -> Coloring {
    color_webs_for(webs, prio, strategy, graph, &vpr::target::VPR)
}

/// [`color_webs`] drawing candidate registers from `desc`'s callee-saves
/// class, in ascending order — the same order the local allocator consumes
/// them, which is what makes the Greedy skip-prefix rule sound.
pub fn color_webs_for(
    webs: &[Web],
    prio: &Prioritization,
    strategy: ColoringStrategy,
    graph: &CallGraph,
    desc: &TargetDesc,
) -> Coloring {
    let callee_order = desc.callee_order();
    let mut assignment: Vec<Option<Reg>> = vec![None; webs.len()];
    let mut colored = 0;
    for pw in &prio.considered {
        let w = &webs[pw.web];
        // Registers already taken by interfering colored webs.
        let mut taken = RegSet::new();
        for (j, other) in webs.iter().enumerate() {
            if j != pw.web {
                if let Some(r) = assignment[j] {
                    if interferes(w, other) {
                        taken.insert(r);
                    }
                }
            }
        }
        let candidates: Vec<Reg> = match strategy {
            ColoringStrategy::Reserved { count } => {
                callee_order.iter().copied().take(count as usize).collect()
            }
            ColoringStrategy::Greedy => {
                // §6: "tries to color as many webs as possible without
                // reserving any of the callee-saves registers required for
                // any individual procedure" — skip the first `need` registers
                // of every member, since the local allocator takes
                // callee-saves in ascending order.
                let max_need =
                    w.nodes.iter().map(|&n| graph.node(n).callee_saves_estimate).max().unwrap_or(0)
                        as usize;
                callee_order.iter().copied().skip(max_need).collect()
            }
        };
        if let Some(r) = candidates.into_iter().find(|r| !taken.contains(*r)) {
            assignment[pw.web] = Some(r);
            colored += 1;
        }
    }
    Coloring { assignment, colored }
}

/// Builds the blanket-promotion "webs" (§6: column E): the `count` globals
/// with the highest program-wide weighted reference frequency each get one
/// program-wide web covering every defined node, with the program start
/// nodes as entries.
pub fn blanket_webs(graph: &CallGraph, elig: &Eligibility, count: usize) -> Vec<Web> {
    let mut totals: Vec<(GlobalId, u64)> = elig
        .ids()
        .map(|g| {
            let total: u64 = graph
                .node_ids()
                .map(|n| elig.ref_freq(n, g).saturating_mul(graph.call_count(n).max(1)))
                .sum();
            (g, total)
        })
        .filter(|&(_, t)| t > 0)
        .collect();
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let all_defined: Vec<NodeId> = graph.node_ids().filter(|&n| graph.node(n).defined).collect();
    let entries: Vec<NodeId> = {
        let mut s: Vec<NodeId> =
            graph.start_nodes().into_iter().filter(|&n| graph.node(n).defined).collect();
        s.sort();
        s
    };
    totals
        .into_iter()
        .take(count.min(16))
        .map(|(g, _)| Web {
            global: g,
            nodes: all_defined.clone(),
            entries: entries.clone(),
            // Blanket promotion always stores back at exit: with the whole
            // program in the web the write analysis degenerates anyway.
            written: true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::testutil::figure3;
    use crate::dataflow::RefSets;
    use crate::webs::identify_webs;
    use ipra_summary::ProgramSummary;

    fn setup(s: &ProgramSummary) -> (CallGraph, Eligibility, Vec<Web>) {
        let g = CallGraph::build(s, None);
        let e = Eligibility::compute(&g, s);
        let r = RefSets::compute(&g, &e);
        let (w, _) = identify_webs(&g, &e, &r);
        (g, e, w)
    }

    #[test]
    fn figure3_colors_with_two_registers() {
        // Table 2: all four webs colorable with just two callee-saves
        // registers.
        let (g, e, webs) = setup(&figure3());
        let prio = prioritize(&webs, &g, &e, &DiscardHeuristics::default());
        assert_eq!(prio.considered.len(), 4, "{prio:?}");
        let coloring = color_webs(&webs, &prio, ColoringStrategy::Reserved { count: 2 }, &g);
        assert_eq!(coloring.colored, 4);
        // Interfering webs got different registers.
        for i in 0..webs.len() {
            for j in i + 1..webs.len() {
                if interferes(&webs[i], &webs[j]) {
                    assert_ne!(
                        coloring.assignment[i], coloring.assignment[j],
                        "webs {i} and {j} interfere but share a register"
                    );
                }
            }
        }
        // Exactly two registers used.
        let used: std::collections::HashSet<_> = coloring.assignment.iter().flatten().collect();
        assert_eq!(used.len(), 2);
    }

    #[test]
    fn one_register_colors_only_noninterfering_subset() {
        let (g, e, webs) = setup(&figure3());
        let prio = prioritize(&webs, &g, &e, &DiscardHeuristics::default());
        let coloring = color_webs(&webs, &prio, ColoringStrategy::Reserved { count: 1 }, &g);
        assert!(coloring.colored < 4);
        assert!(coloring.colored >= 1);
        for i in 0..webs.len() {
            for j in i + 1..webs.len() {
                if interferes(&webs[i], &webs[j]) {
                    assert!(
                        coloring.assignment[i].is_none()
                            || coloring.assignment[i] != coloring.assignment[j]
                    );
                }
            }
        }
    }

    #[test]
    fn interference_is_shared_node() {
        let (_, e, webs) = setup(&figure3());
        let gid = |s: &str| e.by_sym(s).unwrap();
        let by = |g: &str, len: usize| {
            webs.iter().find(|w| w.global == gid(g) && w.len() == len).unwrap()
        };
        let w_g3 = by("g3", 3); // {A,B,C}
        let w_g2_big = by("g2", 3); // {C,F,G}
        let w_g1 = by("g1", 3); // {B,D,E}
        let w_g2_small = by("g2", 1); // {E}
        assert!(interferes(w_g3, w_g2_big)); // share C
        assert!(interferes(w_g3, w_g1)); // share B
        assert!(interferes(w_g1, w_g2_small)); // share E
        assert!(!interferes(w_g2_big, w_g1));
        assert!(!interferes(w_g2_big, w_g2_small));
        assert!(!interferes(w_g3, w_g2_small));
    }

    #[test]
    fn priority_prefers_hot_webs() {
        let (g, e, webs) = setup(&figure3());
        let prio = prioritize(&webs, &g, &e, &DiscardHeuristics::default());
        for pair in prio.considered.windows(2) {
            assert!(pair[0].priority >= pair[1].priority);
        }
    }

    #[test]
    fn sparse_webs_discarded() {
        use crate::dataflow::testutil::summary;
        // Long chain with refs only at the two ends: ratio 2/6 < 0.5.
        let s = summary(
            &[
                ("main", &[("c1", 1)], &["g"]),
                ("c1", &[("c2", 1)], &[]),
                ("c2", &[("c3", 1)], &[]),
                ("c3", &[("c4", 1)], &[]),
                ("c4", &[("end", 1)], &[]),
                ("end", &[], &["g"]),
            ],
            &["g"],
        );
        let (g, e, webs) = setup(&s);
        assert_eq!(webs.len(), 1);
        let heur = DiscardHeuristics { min_lref_ratio: 0.5, min_singleton_refs: 0 };
        let prio = prioritize(&webs, &g, &e, &heur);
        assert_eq!(prio.considered.len(), 0);
        assert_eq!(prio.discarded_sparse, 1);
    }

    #[test]
    fn trivial_singleton_webs_discarded() {
        use crate::dataflow::testutil::summary;
        let s = summary(&[("main", &[], &["g"])], &["g"]);
        let (g, e, webs) = setup(&s);
        // main's weighted refs = 10 × callcount 1 = 10.
        let heur = DiscardHeuristics { min_lref_ratio: 0.0, min_singleton_refs: 50 };
        let prio = prioritize(&webs, &g, &e, &heur);
        assert_eq!(prio.discarded_trivial, 1);
        let heur = DiscardHeuristics { min_lref_ratio: 0.0, min_singleton_refs: 5 };
        let prio = prioritize(&webs, &g, &e, &heur);
        assert_eq!(prio.considered.len(), 1);
    }

    #[test]
    fn greedy_respects_local_register_need() {
        use crate::dataflow::testutil::summary;
        // Single web over main; main's callee_saves_estimate is 2 (testutil),
        // so greedy must start at the 3rd callee-saves register (r5).
        let s = summary(&[("main", &[], &["g"])], &["g"]);
        let (g, e, webs) = setup(&s);
        let heur = DiscardHeuristics { min_lref_ratio: 0.0, min_singleton_refs: 0 };
        let prio = prioritize(&webs, &g, &e, &heur);
        let coloring = color_webs(&webs, &prio, ColoringStrategy::Greedy, &g);
        assert_eq!(coloring.assignment[0], Some(Reg::new(5)));
    }

    #[test]
    fn blanket_promotion_covers_program() {
        let (g, e, _) = setup(&figure3());
        let webs = blanket_webs(&g, &e, 2);
        assert_eq!(webs.len(), 2);
        for w in &webs {
            assert_eq!(w.len(), 8); // all of A..H
            assert_eq!(w.entries.len(), 1); // A is the only start node
        }
        // Top globals by weighted frequency are distinct.
        assert_ne!(webs[0].global, webs[1].global);

        // Requesting more blankets than hot globals yields only real ones.
        let many = blanket_webs(&g, &e, 10);
        assert_eq!(many.len(), 3);
    }

    #[test]
    fn reserved_zero_colors_nothing() {
        let (g, e, webs) = setup(&figure3());
        let prio = prioritize(&webs, &g, &e, &DiscardHeuristics::default());
        let coloring = color_webs(&webs, &prio, ColoringStrategy::Reserved { count: 0 }, &g);
        assert_eq!(coloring.colored, 0);
    }
}
