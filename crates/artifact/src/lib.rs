//! # ipra-artifact — versioned on-disk build artifacts
//!
//! The paper's toolchain (Figure 1) is file-based: the compiler first
//! phase writes **summary files**, the program analyzer reads them and
//! writes **directives**, the second phase emits **object code**, and the
//! linker produces the executable. This crate defines those files for the
//! reproduction — one format per pipeline stage, each versioned,
//! self-describing, and byte-deterministic:
//!
//! | kind | extension | payload |
//! |------|-----------|---------|
//! | [`ArtifactKind::Summary`]    | `.csum` | [`SummaryArtifact`] — one module's [`ModuleSummary`] |
//! | [`ArtifactKind::Directives`] | `.cdir` | [`DirectivesArtifact`] — the analyzer's [`ProgramDatabase`] |
//! | [`ArtifactKind::Object`]     | `.vo`   | [`ObjectArtifact`] — relocatable VPR code |
//! | [`ArtifactKind::Executable`] | `.vx`   | [`ExecutableArtifact`] — a linked [`Executable`] |
//! | [`ArtifactKind::Library`]    | `.vlib` | [`LibraryArtifact`] — `.vo`+`.csum` member archive |
//!
//! ## Wire format
//!
//! One ASCII header line, then the payload as canonical JSON, then a
//! newline:
//!
//! ```text
//! ;ipra-artifact <kind> v<version> fnv64:<16-hex-digit body fingerprint>
//! {...}
//! ```
//!
//! The header carries everything needed to reject a file *cleanly* — wrong
//! kind, unsupported version, truncation/corruption (the FNV-64 body
//! fingerprint) — as a typed [`ArtifactError`], never a panic. The body is
//! canonical because every serialized type keeps its maps in [`BTreeMap`]s
//! (or emits struct fields in declaration order), so encoding the same
//! value twice yields identical bytes: artifacts are safe cache keys and
//! byte-comparable across machines and runs.
//!
//! [`BTreeMap`]: std::collections::BTreeMap

#![warn(missing_docs)]

use ipra_core::fingerprint::fingerprint_str;
use ipra_core::ProgramDatabase;
use ipra_summary::ModuleSummary;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use vpr::program::{Executable, ObjectModule};
use vpr::target::TargetId;

/// The one format version this build reads and writes. Bump on any
/// incompatible payload or header change; readers reject other versions
/// with [`ArtifactError::UnsupportedVersion`].
///
/// v2: summary records carry split per-global alias bits
/// (`ptr_mod`/`ptr_ref`/`escapes`) and a per-procedure pointer-flow
/// constraint record in place of the lumped `address_taken` flag.
pub const FORMAT_VERSION: u32 = 2;

/// First token of every artifact header line.
pub const MAGIC: &str = ";ipra-artifact";

/// The five artifact kinds, one per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// `.csum` — a per-module summary file (phase-1 output).
    Summary,
    /// `.cdir` — the program analyzer's directives.
    Directives,
    /// `.vo` — a relocatable object module (phase-2 output).
    Object,
    /// `.vx` — a linked executable.
    Executable,
    /// `.vlib` — an archive of object+summary members.
    Library,
}

impl ArtifactKind {
    /// Every kind, in pipeline order.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::Summary,
        ArtifactKind::Directives,
        ArtifactKind::Object,
        ArtifactKind::Executable,
        ArtifactKind::Library,
    ];

    /// The header tag (also the display form).
    pub fn tag(self) -> &'static str {
        match self {
            ArtifactKind::Summary => "summary",
            ArtifactKind::Directives => "directives",
            ArtifactKind::Object => "object",
            ArtifactKind::Executable => "executable",
            ArtifactKind::Library => "library",
        }
    }

    /// The conventional file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            ArtifactKind::Summary => "csum",
            ArtifactKind::Directives => "cdir",
            ArtifactKind::Object => "vo",
            ArtifactKind::Executable => "vx",
            ArtifactKind::Library => "vlib",
        }
    }

    /// Parses a header tag.
    pub fn from_tag(tag: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// The kind conventionally stored at `path`, judged by extension.
    pub fn for_path(path: &Path) -> Option<ArtifactKind> {
        let ext = path.extension()?.to_str()?;
        ArtifactKind::ALL.into_iter().find(|k| k.extension() == ext)
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Everything that can go wrong reading an artifact. All variants are
/// clean, typed errors — a malformed or mismatched file never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Filesystem error.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        detail: String,
    },
    /// The file does not start with an `;ipra-artifact` header line.
    BadMagic,
    /// The header names a kind this build does not know.
    UnknownKind {
        /// The unrecognized tag.
        tag: String,
    },
    /// The file is a different artifact kind than the reader expected.
    WrongKind {
        /// What the reader asked for.
        expected: ArtifactKind,
        /// What the header declared.
        found: ArtifactKind,
    },
    /// The header declares a format version this build cannot read.
    UnsupportedVersion {
        /// The declared version.
        found: u32,
        /// The one supported version ([`FORMAT_VERSION`]).
        supported: u32,
    },
    /// The body does not match the header's fingerprint (truncation or
    /// corruption).
    Corrupt {
        /// Fingerprint the header promised.
        expected: String,
        /// Fingerprint of the body actually present.
        found: String,
    },
    /// The body is not valid JSON for the payload type.
    Json {
        /// The parse error.
        detail: String,
    },
    /// The header's `target:` token names a target this build does not
    /// know.
    UnknownTarget {
        /// The unrecognized target name.
        name: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, detail } => write!(f, "{path}: {detail}"),
            ArtifactError::BadMagic => {
                write!(f, "not an artifact (missing `{MAGIC}` header)")
            }
            ArtifactError::UnknownKind { tag } => write!(f, "unknown artifact kind `{tag}`"),
            ArtifactError::WrongKind { expected, found } => {
                write!(f, "expected a {expected} artifact, found {found}")
            }
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported artifact version v{found} (this build reads v{supported})")
            }
            ArtifactError::Corrupt { expected, found } => {
                write!(f, "corrupt artifact: header fingerprint {expected}, body is {found}")
            }
            ArtifactError::Json { detail } => write!(f, "malformed artifact body: {detail}"),
            ArtifactError::UnknownTarget { name } => {
                write!(f, "unknown artifact target `{name}`")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

fn fp_hex(body: &str) -> String {
    format!("{:016x}", fingerprint_str(body))
}

/// Encodes a payload into artifact text (header line + canonical JSON).
/// Deterministic: equal payloads encode to identical bytes.
pub fn encode<T: Serialize>(kind: ArtifactKind, payload: &T) -> String {
    encode_for(kind, payload, TargetId::Vpr)
}

/// [`encode`] with a target stamp: a non-VPR target is recorded as a
/// fifth `target:<name>` header token, so `objdump` can name the
/// convention without decoding the body. VPR emits no token — every
/// pre-machine-description artifact byte stays exactly as it was.
pub fn encode_for<T: Serialize>(kind: ArtifactKind, payload: &T, target: TargetId) -> String {
    let body = serde_json::to_string(payload).expect("artifact payloads always serialize");
    let stamp = match target {
        TargetId::Vpr => String::new(),
        t => format!(" target:{}", t.name()),
    };
    format!("{MAGIC} {} v{FORMAT_VERSION} fnv64:{}{stamp}\n{body}\n", kind.tag(), fp_hex(&body))
}

/// Header fields plus the body slice.
struct Parsed<'a> {
    kind: ArtifactKind,
    version: u32,
    target: TargetId,
    fp: &'a str,
    body: &'a str,
}

fn parse(text: &str) -> Result<Parsed<'_>, ArtifactError> {
    let (header, rest) = text.split_once('\n').ok_or(ArtifactError::BadMagic)?;
    let body = rest.strip_suffix('\n').unwrap_or(rest);
    let mut tokens = header.split(' ');
    if tokens.next() != Some(MAGIC) {
        return Err(ArtifactError::BadMagic);
    }
    let tag = tokens.next().ok_or(ArtifactError::BadMagic)?;
    let kind = ArtifactKind::from_tag(tag)
        .ok_or_else(|| ArtifactError::UnknownKind { tag: tag.to_string() })?;
    let version = tokens
        .next()
        .and_then(|t| t.strip_prefix('v'))
        .and_then(|t| t.parse::<u32>().ok())
        .ok_or(ArtifactError::BadMagic)?;
    let fp = tokens.next().and_then(|t| t.strip_prefix("fnv64:")).ok_or(ArtifactError::BadMagic)?;
    // An optional `target:<name>` token; absent means VPR (the format
    // predates second targets, so old files never carry one).
    let target = match tokens.next() {
        None => TargetId::Vpr,
        Some(tok) => {
            let name = tok.strip_prefix("target:").ok_or(ArtifactError::BadMagic)?;
            TargetId::parse(name)
                .ok_or_else(|| ArtifactError::UnknownTarget { name: name.to_string() })?
        }
    };
    if tokens.next().is_some() {
        return Err(ArtifactError::BadMagic);
    }
    Ok(Parsed { kind, version, target, fp, body })
}

/// Reads the header only: the declared kind, version and target. Never
/// inspects the body, so it works on artifacts from other format
/// versions — `objdump`'s first step.
pub fn sniff(text: &str) -> Result<(ArtifactKind, u32, TargetId), ArtifactError> {
    let p = parse(text)?;
    Ok((p.kind, p.version, p.target))
}

/// Decodes artifact text as `kind`, checking magic, kind, version, and
/// body fingerprint before parsing the payload.
pub fn decode<T: Deserialize>(kind: ArtifactKind, text: &str) -> Result<T, ArtifactError> {
    let p = parse(text)?;
    if p.kind != kind {
        return Err(ArtifactError::WrongKind { expected: kind, found: p.kind });
    }
    if p.version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: p.version,
            supported: FORMAT_VERSION,
        });
    }
    let found = fp_hex(p.body);
    if found != p.fp {
        return Err(ArtifactError::Corrupt { expected: p.fp.to_string(), found });
    }
    serde_json::from_str(p.body).map_err(|e| ArtifactError::Json { detail: e.to_string() })
}

/// [`encode`] + write to `path`.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure.
pub fn write_file<T: Serialize>(
    kind: ArtifactKind,
    path: &Path,
    payload: &T,
) -> Result<(), ArtifactError> {
    write_file_for(kind, path, payload, TargetId::Vpr)
}

/// [`encode_for`] + write to `path`.
///
/// # Errors
///
/// [`ArtifactError::Io`] on filesystem failure.
pub fn write_file_for<T: Serialize>(
    kind: ArtifactKind,
    path: &Path,
    payload: &T,
    target: TargetId,
) -> Result<(), ArtifactError> {
    std::fs::write(path, encode_for(kind, payload, target))
        .map_err(|e| ArtifactError::Io { path: path.display().to_string(), detail: e.to_string() })
}

fn read_text(path: &Path) -> Result<String, ArtifactError> {
    std::fs::read_to_string(path)
        .map_err(|e| ArtifactError::Io { path: path.display().to_string(), detail: e.to_string() })
}

/// Reads and [`decode`]s the artifact at `path`.
///
/// # Errors
///
/// Any [`ArtifactError`]: filesystem, header, version, or body problems.
pub fn read_file<T: Deserialize>(kind: ArtifactKind, path: &Path) -> Result<T, ArtifactError> {
    decode(kind, &read_text(path)?)
}

/// [`sniff`]s the artifact at `path`.
///
/// # Errors
///
/// [`ArtifactError::Io`] or a header problem.
pub fn sniff_file(path: &Path) -> Result<(ArtifactKind, u32, TargetId), ArtifactError> {
    sniff(&read_text(path)?)
}

// ---------------------------------------------------------------------------
// Payload types.

/// `.csum` payload: one module's summary, plus the fingerprints of the
/// source and optimized IR it was derived from (provenance for `objdump`
/// and cache debugging; the analyzer reads only `summary`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryArtifact {
    /// The phase-1 summary record.
    pub summary: ModuleSummary,
    /// Fingerprint of (module name, source text, optimize flag).
    pub source_fp: u64,
    /// Fingerprint of the optimized IR.
    pub ir_fp: u64,
}

/// `.cdir` payload: the program analyzer's database, plus the
/// configuration that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectivesArtifact {
    /// Paper configuration name (`L2`, `A` … `F`).
    pub config: String,
    /// Directives for every procedure the analyzer saw.
    pub database: ProgramDatabase,
}

/// `.vo` payload: one relocatable object module with the fingerprints of
/// the IR and the directive slice that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectArtifact {
    /// The relocatable code (symbolic call/global references intact).
    pub object: ObjectModule,
    /// Fingerprint of the optimized IR codegen consumed.
    pub ir_fp: u64,
    /// Fingerprint of the module-relevant database slice codegen consumed.
    pub dir_fp: u64,
}

/// `.vx` payload: a linked executable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutableArtifact {
    /// The linked program.
    pub exe: Executable,
}

/// One `.vlib` member: the object module and the summary it was compiled
/// from, so a library carries everything both the *analyzer* (partial
/// call graph over member summaries) and the *linker* need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryMember {
    /// The member's relocatable code.
    pub object: ObjectModule,
    /// The member's phase-1 summary.
    pub summary: ModuleSummary,
}

/// `.vlib` payload: an ordered archive of members.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LibraryArtifact {
    /// Members, in archive order.
    pub members: Vec<LibraryMember>,
}

impl LibraryArtifact {
    /// Classic archive member selection: starting from `roots`' unresolved
    /// symbols, pull every member that defines a needed symbol, to
    /// fixpoint (members can need each other). Returns selected member
    /// indices in archive order.
    pub fn select(&self, roots: &[ObjectModule]) -> Vec<usize> {
        let mut linked: Vec<ObjectModule> = roots.to_vec();
        let mut selected: Vec<usize> = Vec::new();
        loop {
            let undef = vpr::program_symbols(&linked);
            let mut pulled = false;
            for (i, m) in self.members.iter().enumerate() {
                if selected.contains(&i) {
                    continue;
                }
                let defines_needed = m
                    .object
                    .functions
                    .iter()
                    .any(|f| undef.undefined_funcs.contains(f.name()))
                    || m.object.globals.iter().any(|g| undef.undefined_globals.contains(&g.sym));
                if defines_needed {
                    selected.push(i);
                    linked.push(m.object.clone());
                    pulled = true;
                }
            }
            if !pulled {
                selected.sort_unstable();
                return selected;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_summary::ProcSummary;
    use vpr::inst::Inst;
    use vpr::program::MachineFunction;
    use vpr::regs::Reg;

    fn sample_summary() -> SummaryArtifact {
        SummaryArtifact {
            summary: ModuleSummary {
                module: "m".into(),
                procs: vec![ProcSummary { name: "f".into(), module: "m".into(), ..sample_proc() }],
                globals: vec![],
            },
            source_fp: 0xdead_beef_dead_beef,
            ir_fp: u64::MAX,
        }
    }

    fn sample_proc() -> ProcSummary {
        ProcSummary {
            name: String::new(),
            module: String::new(),
            global_refs: vec![],
            calls: vec![],
            taken_addresses: vec![],
            makes_indirect_calls: false,
            callee_saves_estimate: 2,
            caller_saves_estimate: 1,
            alias: Default::default(),
        }
    }

    #[test]
    fn round_trip_preserves_value_and_bytes() {
        let a = sample_summary();
        let text = encode(ArtifactKind::Summary, &a);
        assert!(text.starts_with(MAGIC));
        let back: SummaryArtifact = decode(ArtifactKind::Summary, &text).unwrap();
        assert_eq!(back, a);
        // Full-range u64 fingerprints survive (the JSON layer must not
        // route them through f64).
        assert_eq!(back.ir_fp, u64::MAX);
        assert_eq!(encode(ArtifactKind::Summary, &back), text);
    }

    #[test]
    fn sniff_reads_kind_and_version_only() {
        let text = encode(ArtifactKind::Summary, &sample_summary());
        assert_eq!(sniff(&text).unwrap(), (ArtifactKind::Summary, FORMAT_VERSION, TargetId::Vpr));
        // Sniff tolerates future versions and corrupt bodies.
        let future = text.replace("v2 ", "v99 ");
        assert_eq!(sniff(&future).unwrap().1, 99);
    }

    #[test]
    fn target_stamp_round_trips_and_vpr_stays_bare() {
        let a = sample_summary();
        // VPR emits no token: byte-identical to the pre-target encoder.
        assert_eq!(
            encode_for(ArtifactKind::Summary, &a, TargetId::Vpr),
            encode(ArtifactKind::Summary, &a)
        );
        let stamped = encode_for(ArtifactKind::Summary, &a, TargetId::Rv32);
        assert!(stamped.lines().next().unwrap().ends_with(" target:rv32"), "{stamped}");
        assert_eq!(sniff(&stamped).unwrap().2, TargetId::Rv32);
        // The stamp is header provenance only; decoding still works.
        let back: SummaryArtifact = decode(ArtifactKind::Summary, &stamped).unwrap();
        assert_eq!(back, a);
        // An unknown target name is a clean, typed error.
        let bad = stamped.replace("target:rv32", "target:pdp11");
        let e = sniff(&bad).unwrap_err();
        assert_eq!(e, ArtifactError::UnknownTarget { name: "pdp11".into() });
    }

    #[test]
    fn header_mismatches_are_clean_errors() {
        let text = encode(ArtifactKind::Summary, &sample_summary());

        let e = decode::<SummaryArtifact>(ArtifactKind::Object, &text).unwrap_err();
        assert_eq!(
            e,
            ArtifactError::WrongKind {
                expected: ArtifactKind::Object,
                found: ArtifactKind::Summary
            }
        );

        let future = text.replace("v2 ", "v3 ");
        let e = decode::<SummaryArtifact>(ArtifactKind::Summary, &future).unwrap_err();
        assert_eq!(e, ArtifactError::UnsupportedVersion { found: 3, supported: 2 });

        let truncated = &text[..text.len() - 10];
        let e = decode::<SummaryArtifact>(ArtifactKind::Summary, truncated).unwrap_err();
        assert!(matches!(e, ArtifactError::Corrupt { .. }), "{e}");

        let e = decode::<SummaryArtifact>(ArtifactKind::Summary, "{}").unwrap_err();
        assert_eq!(e, ArtifactError::BadMagic);

        let unknown = text.replace(" summary ", " hologram ");
        let e = decode::<SummaryArtifact>(ArtifactKind::Summary, &unknown).unwrap_err();
        assert_eq!(e, ArtifactError::UnknownKind { tag: "hologram".into() });

        // Every error renders.
        for e in [
            ArtifactError::BadMagic,
            ArtifactError::Json { detail: "x".into() },
            ArtifactError::Io { path: "p".into(), detail: "d".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn kinds_map_to_extensions_and_back() {
        for k in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::from_tag(k.tag()), Some(k));
            let p = std::path::PathBuf::from(format!("x.{}", k.extension()));
            assert_eq!(ArtifactKind::for_path(&p), Some(k));
        }
        assert_eq!(ArtifactKind::for_path(Path::new("x.txt")), None);
        assert_eq!(ArtifactKind::from_tag("nope"), None);
    }

    fn member(name: &str, funcs: &[&str], calls: &[&str]) -> LibraryMember {
        let mut functions = Vec::new();
        for (i, f) in funcs.iter().enumerate() {
            let mut mf = MachineFunction::new(*f);
            if i == 0 {
                for c in calls {
                    mf.push(Inst::Call { target: (*c).into() });
                }
            }
            mf.push(Inst::Bv { base: Reg::RP });
            functions.push(mf);
        }
        LibraryMember {
            object: ObjectModule {
                name: name.into(),
                functions,
                globals: vec![],
                ..Default::default()
            },
            summary: ModuleSummary { module: name.into(), procs: vec![], globals: vec![] },
        }
    }

    #[test]
    fn library_selection_pulls_needed_members_to_fixpoint() {
        let lib = LibraryArtifact {
            members: vec![
                member("unused", &["lonely"], &[]),
                member("api", &["api_entry"], &["core_fn"]),
                member("core", &["core_fn"], &[]),
            ],
        };
        // A root that calls api_entry: selection must pull `api`, then
        // (because api calls core_fn) `core` — never `unused`.
        let mut main = MachineFunction::new("main");
        main.push(Inst::Call { target: "api_entry".into() });
        main.push(Inst::Bv { base: Reg::RP });
        let root = ObjectModule {
            name: "app".into(),
            functions: vec![main],
            globals: vec![],
            ..Default::default()
        };
        assert_eq!(lib.select(&[root]), vec![1, 2]);
        assert_eq!(lib.select(&[]), Vec::<usize>::new());
    }
}
