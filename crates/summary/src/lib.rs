//! # ipra-summary — compiler first phase summary records
//!
//! The paper's compiler first phase writes, for each procedure, "a record of
//! local information required to construct the program call graph and make
//! interprocedural register allocation decisions" (§3):
//!
//! * the global variables accessed, with local reference frequencies and
//!   flags (aliased, written),
//! * the procedures called, with local call frequencies,
//! * the procedures whose addresses are taken, and whether this procedure
//!   makes indirect calls,
//! * an estimate of the callee-saves registers the procedure needs.
//!
//! [`summarize_module`] derives one [`ModuleSummary`] from an (optimized) IR
//! module — the prototype in the paper likewise "was allowed to proceed
//! through the normal code generation and optimization phases before
//! generating summary files" to get better heuristic counts. Frequencies are
//! loop-depth weights (`10^depth`), the paper's control-flow-hierarchy
//! heuristic.
//!
//! Summaries serialize to JSON: they are the *summary files* of the paper's
//! Figure 1 and flow from the first phase to the program analyzer.

#![warn(missing_docs)]

use cmin_ir::cfg::{depth_weight, loop_depths, Cfg};
use cmin_ir::ir::{Callee, Inst, IrModule};
use cmin_ir::liveness::{live_across_calls, Liveness};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a procedure uses one global variable.
///
/// The classic lumped *address-taken* flag is split three ways (`ptr_mod`,
/// `ptr_ref`, `escapes`), so a read-only `&g` is no longer treated as a
/// potential write; [`GlobalRef::address_taken`] recovers the old bit as
/// the union.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalRef {
    /// The global's link name.
    pub sym: String,
    /// Estimated dynamic reference frequency within this procedure
    /// (loads + stores, loop-depth weighted).
    pub freq: u64,
    /// Does the procedure write the global directly (by name)?
    pub written: bool,
    /// May the procedure write the global through a pointer?
    #[serde(default)]
    pub ptr_mod: bool,
    /// May the procedure read the global through a pointer?
    #[serde(default)]
    pub ptr_ref: bool,
    /// Does the global's address escape the procedure (stored to memory,
    /// passed to a call, returned, or printed)?
    #[serde(default)]
    pub escapes: bool,
}

impl GlobalRef {
    /// The classic lumped flag: is the global's address taken at all in
    /// this procedure? Exactly the union of the three split bits.
    pub fn address_taken(&self) -> bool {
        self.ptr_mod || self.ptr_ref || self.escapes
    }
}

/// One call site group: all calls from a procedure to one callee.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallRef {
    /// Callee link name.
    pub callee: String,
    /// Estimated local call frequency (loop-depth weighted).
    pub freq: u64,
}

/// The per-procedure summary record (paper §3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcSummary {
    /// Procedure link name.
    pub name: String,
    /// Defining module.
    pub module: String,
    /// Global variables accessed, with frequencies and flags.
    pub global_refs: Vec<GlobalRef>,
    /// Direct calls, grouped by callee.
    pub calls: Vec<CallRef>,
    /// Procedures whose addresses this procedure computes.
    pub taken_addresses: Vec<String>,
    /// Does this procedure contain indirect call sites?
    pub makes_indirect_calls: bool,
    /// Estimated number of callee-saves registers needed (values live
    /// across calls, capped at the size of the callee-saves file).
    pub callee_saves_estimate: u32,
    /// Estimated number of claimable caller-saves registers this procedure
    /// may use for local values (capped at the claim pool size). Feeds the
    /// §7.6.2 caller-saves preallocation extension.
    #[serde(default)]
    pub caller_saves_estimate: u32,
    /// Pointer-flow constraint record for the interprocedural alias
    /// analysis; the program analyzer composes these into one system.
    #[serde(default)]
    pub alias: ipra_alias::ProcConstraints,
}

/// Facts about a global definition, program-wide.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalFact {
    /// Link name.
    pub sym: String,
    /// Size in words.
    pub size: u32,
    /// Array (never promotable) or scalar?
    pub is_array: bool,
    /// Declared `static`?
    pub is_static: bool,
    /// Defining module.
    pub module: String,
    /// Static initializer.
    pub init: Vec<i64>,
}

/// The summary file for one module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleSummary {
    /// Module name.
    pub module: String,
    /// Per-procedure records.
    pub procs: Vec<ProcSummary>,
    /// Globals defined by the module.
    pub globals: Vec<GlobalFact>,
}

/// All summary files of a program, as handed to the program analyzer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramSummary {
    /// One summary per module.
    pub modules: Vec<ModuleSummary>,
}

impl ProgramSummary {
    /// Iterates over all procedure records.
    pub fn procs(&self) -> impl Iterator<Item = &ProcSummary> {
        self.modules.iter().flat_map(|m| m.procs.iter())
    }

    /// Iterates over all global definitions.
    pub fn globals(&self) -> impl Iterator<Item = &GlobalFact> {
        self.modules.iter().flat_map(|m| m.globals.iter())
    }

    /// Serializes to the on-disk summary-file format (JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serialization cannot fail")
    }

    /// Reads back a summary file.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for malformed input.
    pub fn from_json(s: &str) -> Result<ProgramSummary, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Maximum callee-saves estimate (size of the callee-saves register file).
pub const MAX_CALLEE_SAVES: u32 = 16;

/// Maximum caller-saves estimate (size of the claimable caller pool: the
/// caller-saves registers that are neither argument/return registers nor
/// emitter scratch).
pub const MAX_CALLER_SAVES: u32 = 5;

/// Derives the summary record for one module from its (optimized) IR.
pub fn summarize_module(ir: &IrModule) -> ModuleSummary {
    let globals = ir
        .globals
        .iter()
        .map(|g| GlobalFact {
            sym: g.sym.clone(),
            size: g.size,
            is_array: g.is_array,
            is_static: g.is_static,
            module: ir.name.clone(),
            init: g.init.clone(),
        })
        .collect();

    let procs = ir
        .functions
        .iter()
        .map(|f| {
            let cfg = Cfg::new(f);
            let idom = cmin_ir::cfg::dominators(f, &cfg);
            let depths = loop_depths(f, &cfg, &idom);
            // BTreeMaps for deterministic summary files.
            let mut grefs: BTreeMap<String, GlobalRef> = BTreeMap::new();
            let mut calls: BTreeMap<String, u64> = BTreeMap::new();
            let mut taken: Vec<String> = Vec::new();
            let mut indirect = false;
            for b in f.block_ids() {
                if !cfg.is_reachable(b) {
                    continue;
                }
                let w = depth_weight(depths[b.index()]);
                for inst in &f.block(b).insts {
                    match inst {
                        Inst::LoadGlobal { sym, .. } => {
                            entry(&mut grefs, sym).freq += w;
                        }
                        Inst::StoreGlobal { sym, src: _ } => {
                            let e = entry(&mut grefs, sym);
                            e.freq += w;
                            e.written = true;
                        }
                        Inst::AddrFunc { func, .. } if !taken.contains(func) => {
                            taken.push(func.clone());
                        }
                        Inst::Call { callee, .. } => match callee {
                            Callee::Direct(n) => *calls.entry(n.clone()).or_insert(0) += w,
                            Callee::Indirect(_) => indirect = true,
                        },
                        _ => {}
                    }
                }
            }
            // The alias constraint record doubles as the source of the
            // split per-global bits: address-taken is classified into
            // pointer-read, pointer-write and escape by local flow.
            let alias = ipra_alias::constraints_for(f);
            for (sym, bits) in ipra_alias::local_bits(&alias) {
                let e = entry(&mut grefs, &sym);
                e.ptr_mod = bits.ptr_mod;
                e.ptr_ref = bits.ptr_ref;
                e.escapes = bits.escapes;
            }
            let liveness = Liveness::compute(f, &cfg);
            let across = live_across_calls(f, &liveness);
            // Ever-live temps that do not cross calls want caller-saves
            // registers.
            let mut ever_live = std::collections::HashSet::new();
            for b in f.block_ids() {
                for t in liveness.live_in(b).iter() {
                    ever_live.insert(t);
                }
                for t in liveness.live_out(b).iter() {
                    ever_live.insert(t);
                }
                for inst in &f.block(b).insts {
                    if let Some(d) = inst.def() {
                        ever_live.insert(d);
                    }
                }
            }
            let ever_live_count = ever_live.len() as u32;
            ProcSummary {
                name: f.name.clone(),
                module: ir.name.clone(),
                global_refs: grefs.into_values().collect(),
                calls: calls.into_iter().map(|(callee, freq)| CallRef { callee, freq }).collect(),
                taken_addresses: taken,
                makes_indirect_calls: indirect,
                callee_saves_estimate: (across.len() as u32).min(MAX_CALLEE_SAVES),
                caller_saves_estimate: ever_live_count.min(MAX_CALLER_SAVES),
                alias,
            }
        })
        .collect();

    ModuleSummary { module: ir.name.clone(), procs, globals }
}

fn entry<'a>(m: &'a mut BTreeMap<String, GlobalRef>, sym: &str) -> &'a mut GlobalRef {
    m.entry(sym.to_string()).or_insert_with(|| GlobalRef {
        sym: sym.to_string(),
        freq: 0,
        written: false,
        ptr_mod: false,
        ptr_ref: false,
        escapes: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmin_frontend::{analyze, parse_module};
    use cmin_ir::{lower_module, optimize_module};

    fn summarize(src: &str) -> ModuleSummary {
        let m = parse_module("m", src).unwrap();
        let info = analyze(&m).unwrap();
        let mut ir = lower_module(&m, &info);
        optimize_module(&mut ir);
        summarize_module(&ir)
    }

    fn proc<'a>(s: &'a ModuleSummary, name: &str) -> &'a ProcSummary {
        s.procs.iter().find(|p| p.name == name).unwrap_or_else(|| panic!("no proc {name}"))
    }

    #[test]
    fn global_refs_with_loop_weighting() {
        let s = summarize(
            "int g; int h;
             int f(int n) {
                 h = 1;
                 for (int i = 0; i < n; i = i + 1) { g = g + i; }
                 return 0;
             }",
        );
        let f = proc(&s, "f");
        let g = f.global_refs.iter().find(|r| r.sym == "g").unwrap();
        let h = f.global_refs.iter().find(|r| r.sym == "h").unwrap();
        assert!(g.freq > h.freq, "loop-nested refs must weigh more: {g:?} vs {h:?}");
        assert!(g.written && h.written);
    }

    #[test]
    fn address_taken_flag() {
        let s = summarize("int g; int f() { return *(&g); }");
        let f = proc(&s, "f");
        let g = f.global_refs.iter().find(|r| r.sym == "g").unwrap();
        assert!(g.address_taken());
        // A read-only deref is a pointer ref, not a potential write.
        assert!(g.ptr_ref && !g.ptr_mod && !g.escapes);
    }

    #[test]
    fn split_alias_bits_classify_uses() {
        let s = summarize(
            "int a; int b; int c; int q;
             extern int ext(int);
             int f() { int p = &a; *p = 1; int x = *(&b); q = &c; return x + ext(&c); }",
        );
        let f = proc(&s, "f");
        let r = |sym: &str| f.global_refs.iter().find(|r| r.sym == sym).unwrap();
        assert!(r("a").ptr_mod && !r("a").ptr_ref && !r("a").escapes);
        assert!(r("b").ptr_ref && !r("b").ptr_mod);
        assert!(r("c").escapes && !r("c").ptr_mod && !r("c").ptr_ref);
        assert!(!r("q").address_taken(), "q stores an address but its own is not taken");
    }

    #[test]
    fn alias_constraints_ride_in_the_record() {
        let s = summarize("int g; int f(int p) { *p = 3; return g; }");
        let f = proc(&s, "f");
        assert_eq!(f.alias.params, 1);
        assert!(!f.alias.constraints.is_empty());
        // The record serializes with the rest of the summary.
        let prog = ProgramSummary { modules: vec![s] };
        let back = ProgramSummary::from_json(&prog.to_json()).unwrap();
        assert_eq!(prog, back);
    }

    #[test]
    fn call_frequencies_weighted_by_depth() {
        let s = summarize(
            "int leaf(int x) { return x; }
             int f(int n) {
                 int s = leaf(0);
                 for (int i = 0; i < n; i = i + 1) { s = s + leaf(i); }
                 return s;
             }",
        );
        let f = proc(&s, "f");
        let c = f.calls.iter().find(|c| c.callee == "leaf").unwrap();
        assert_eq!(c.freq, 1 + 10);
    }

    #[test]
    fn indirect_calls_and_taken_addresses() {
        let s = summarize(
            "int t(int x) { return x; }
             int f() { int p = &t; return p(3); }",
        );
        let f = proc(&s, "f");
        assert!(f.makes_indirect_calls);
        assert_eq!(f.taken_addresses, vec!["t"]);
        // The direct-call list does not include the indirect target.
        assert!(f.calls.is_empty());
    }

    #[test]
    fn callee_saves_estimate_counts_values_across_calls() {
        let s = summarize(
            "int w(int x) { return x; }
             int leaf(int a, int b) { return a * b; }
             int caller(int a, int b, int c) { int r = w(a); return r + b + c; }",
        );
        assert_eq!(proc(&s, "leaf").callee_saves_estimate, 0);
        // b and c live across the call to w.
        assert!(proc(&s, "caller").callee_saves_estimate >= 2);
    }

    #[test]
    fn statics_summarized_with_qualified_names() {
        let s = summarize("static int c; int f() { c = c + 1; return c; }");
        let f = proc(&s, "f");
        assert_eq!(f.global_refs[0].sym, "m$c");
        assert_eq!(s.globals[0].sym, "m$c");
        assert!(s.globals[0].is_static);
    }

    #[test]
    fn json_round_trip() {
        let s = summarize("int g; int f() { g = 1; return g; }");
        let prog = ProgramSummary { modules: vec![s] };
        let json = prog.to_json();
        let back = ProgramSummary::from_json(&json).unwrap();
        assert_eq!(prog, back);
        assert!(ProgramSummary::from_json("{broken").is_err());
    }

    #[test]
    fn arrays_reported_as_arrays() {
        let s = summarize("int a[8]; int f(int i) { return a[i]; }");
        assert!(s.globals[0].is_array);
        // Element accesses are not scalar global refs.
        assert!(proc(&s, "f").global_refs.is_empty());
    }

    #[test]
    fn program_summary_iterators() {
        let s1 = summarize("int f() { return 0; }");
        let prog = ProgramSummary { modules: vec![s1] };
        assert_eq!(prog.procs().count(), 1);
        assert_eq!(prog.globals().count(), 0);
    }
}
