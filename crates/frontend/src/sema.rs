//! Semantic analysis for `cmin` modules.
//!
//! One module at a time (the paper's compiler first phase is strictly
//! module-at-a-time), `analyze` checks name binding and produces a
//! [`ModuleInfo`]: the symbol table the IR lowering and summary collection
//! consult. `static` symbols get module-qualified *link names*
//! (`module$name`), the paper's §7.4 requirement that "static identifiers
//! need to be sufficiently qualified by the compiler first phase".

use crate::ast::*;
use crate::error::{CompileError, Result};
use crate::token::Span;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// A global variable known to a module (defined here or `extern`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalSymbol {
    /// Program-wide link name (module-qualified for `static`s).
    pub link_name: String,
    /// Size in words (1 for scalars; 0 for externs of unknown size).
    pub size: u32,
    /// Is this an array?
    pub is_array: bool,
    /// Module-private?
    pub is_static: bool,
    /// Defined in this module (as opposed to `extern`)?
    pub defined: bool,
}

/// A procedure known to a module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncSymbol {
    /// Program-wide link name (module-qualified for `static`s).
    pub link_name: String,
    /// Parameter count, when declared or defined. Implicitly declared
    /// functions (called without declaration, K&R style) have `None`.
    pub arity: Option<usize>,
    /// Module-private?
    pub is_static: bool,
    /// Defined in this module?
    pub defined: bool,
}

/// The result of semantic analysis: per-module symbol tables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModuleInfo {
    /// Module name.
    pub module: String,
    /// Globals by source name.
    pub globals: HashMap<String, GlobalSymbol>,
    /// Procedures by source name (including implicitly declared callees).
    pub funcs: HashMap<String, FuncSymbol>,
}

impl ModuleInfo {
    /// The link name for global `name`, if known.
    pub fn global_link_name(&self, name: &str) -> Option<&str> {
        self.globals.get(name).map(|g| g.link_name.as_str())
    }

    /// The link name for procedure `name`, if known.
    pub fn func_link_name(&self, name: &str) -> Option<&str> {
        self.funcs.get(name).map(|f| f.link_name.as_str())
    }
}

/// Checks `module` and builds its [`ModuleInfo`].
///
/// # Errors
///
/// Returns the first semantic error: duplicate definitions, unbound names,
/// arity mismatches on declared functions, array/scalar confusion,
/// address-of on locals, or `break`/`continue` outside a loop.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cmin_frontend::{parser::parse_module, sema::analyze};
/// let m = parse_module("m", "static int s; int f() { return s; }")?;
/// let info = analyze(&m)?;
/// assert_eq!(info.global_link_name("s"), Some("m$s"));
/// assert_eq!(info.func_link_name("f"), Some("f"));
/// # Ok(())
/// # }
/// ```
pub fn analyze(module: &Module) -> Result<ModuleInfo> {
    let mut info =
        ModuleInfo { module: module.name.clone(), globals: HashMap::new(), funcs: HashMap::new() };
    let err = |span: Span, msg: String| CompileError::new(&module.name, span, msg);

    for g in &module.globals {
        let link_name =
            if g.is_static { format!("{}${}", module.name, g.name) } else { g.name.clone() };
        let sym = GlobalSymbol {
            link_name,
            size: g.size.unwrap_or(1),
            is_array: g.size.is_some(),
            is_static: g.is_static,
            defined: true,
        };
        if info.globals.insert(g.name.clone(), sym).is_some() {
            return Err(err(g.span, format!("global `{}` defined more than once", g.name)));
        }
    }
    for f in &module.functions {
        let link_name =
            if f.is_static { format!("{}${}", module.name, f.name) } else { f.name.clone() };
        let sym = FuncSymbol {
            link_name,
            arity: Some(f.params.len()),
            is_static: f.is_static,
            defined: true,
        };
        if info.funcs.insert(f.name.clone(), sym).is_some() {
            return Err(err(f.span, format!("procedure `{}` defined more than once", f.name)));
        }
        if info.globals.contains_key(&f.name) {
            return Err(err(f.span, format!("`{}` is both a global and a procedure", f.name)));
        }
    }
    for e in &module.externs {
        match &e.kind {
            ExternKind::Scalar | ExternKind::Array => {
                let is_array = e.kind == ExternKind::Array;
                match info.globals.entry(e.name.clone()) {
                    Entry::Occupied(o) => {
                        if o.get().is_array != is_array {
                            return Err(err(
                                e.span,
                                format!("extern `{}` conflicts with its definition", e.name),
                            ));
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(GlobalSymbol {
                            link_name: e.name.clone(),
                            size: 0,
                            is_array,
                            is_static: false,
                            defined: false,
                        });
                    }
                }
                if info.funcs.contains_key(&e.name) {
                    return Err(err(
                        e.span,
                        format!("`{}` is both a variable and a procedure", e.name),
                    ));
                }
            }
            ExternKind::Func { arity } => {
                match info.funcs.entry(e.name.clone()) {
                    Entry::Occupied(o) => {
                        if o.get().arity != Some(*arity) {
                            return Err(err(
                                e.span,
                                format!("extern `{}` arity conflicts with its definition", e.name),
                            ));
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(FuncSymbol {
                            link_name: e.name.clone(),
                            arity: Some(*arity),
                            is_static: false,
                            defined: false,
                        });
                    }
                }
                if info.globals.contains_key(&e.name) {
                    return Err(err(
                        e.span,
                        format!("`{}` is both a variable and a procedure", e.name),
                    ));
                }
            }
        }
    }

    // Check function bodies; this may add implicitly-declared callees.
    for f in &module.functions {
        let mut ck =
            Checker { module: &module.name, info: &mut info, scopes: Vec::new(), loop_depth: 0 };
        ck.push_scope();
        let mut seen = HashSet::new();
        for p in &f.params {
            if !seen.insert(p.clone()) {
                return Err(err(f.span, format!("duplicate parameter `{p}`")));
            }
            ck.declare(p.clone());
        }
        ck.block(&f.body)?;
    }
    Ok(info)
}

struct Checker<'a> {
    module: &'a str,
    info: &'a mut ModuleInfo,
    scopes: Vec<HashSet<String>>,
    loop_depth: u32,
}

impl<'a> Checker<'a> {
    fn err(&self, span: Span, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.module, span, msg)
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashSet::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: String) {
        self.scopes.last_mut().expect("scope").insert(name);
    }

    fn is_local(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name))
    }

    fn block(&mut self, b: &Block) -> Result<()> {
        self.push_scope();
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.pop_scope();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Local { name, init, span } => {
                if let Some(e) = init {
                    self.expr(e)?;
                }
                if self.scopes.last().expect("scope").contains(name) {
                    return Err(self.err(*span, format!("`{name}` redeclared in this scope")));
                }
                self.declare(name.clone());
                Ok(())
            }
            Stmt::Assign { target, value, .. } => {
                self.lvalue(target)?;
                self.expr(value)
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.expr(cond)?;
                self.block(then_blk)?;
                if let Some(b) = else_blk {
                    self.block(b)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.expr(cond)?;
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::For { init, cond, step, body } => {
                // The `for` header introduces its own scope for `int i = ...`.
                self.push_scope();
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    self.expr(c)?;
                }
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.loop_depth += 1;
                let r = self.block(body);
                self.loop_depth -= 1;
                self.pop_scope();
                r
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    self.expr(e)?;
                }
                Ok(())
            }
            Stmt::Break { span } | Stmt::Continue { span } => {
                if self.loop_depth == 0 {
                    Err(self.err(*span, "`break`/`continue` outside a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Out { value, .. } => self.expr(value),
            Stmt::Expr { expr, .. } => self.expr(expr),
        }
    }

    fn lvalue(&mut self, lv: &LValue) -> Result<()> {
        match lv {
            LValue::Name(name, span) => {
                if self.is_local(name) {
                    return Ok(());
                }
                match self.info.globals.get(name) {
                    Some(g) if !g.is_array => Ok(()),
                    Some(_) => Err(self.err(*span, format!("cannot assign to array `{name}`"))),
                    None if self.info.funcs.contains_key(name) => {
                        Err(self.err(*span, format!("cannot assign to procedure `{name}`")))
                    }
                    None => Err(self.err(*span, format!("unknown variable `{name}`"))),
                }
            }
            LValue::Index { name, index, span } => {
                self.expr(index)?;
                self.check_array(name, *span)
            }
            LValue::Deref { addr, .. } => self.expr(addr),
        }
    }

    fn check_array(&mut self, name: &str, span: Span) -> Result<()> {
        if self.is_local(name) {
            return Err(self.err(span, format!("`{name}` is a scalar, not an array")));
        }
        match self.info.globals.get(name) {
            Some(g) if g.is_array => Ok(()),
            Some(_) => Err(self.err(span, format!("`{name}` is a scalar, not an array"))),
            None => Err(self.err(span, format!("unknown array `{name}`"))),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<()> {
        match e {
            Expr::Num(..) | Expr::In { .. } => Ok(()),
            Expr::Name(name, span) => {
                if self.is_local(name) {
                    return Ok(());
                }
                match self.info.globals.get(name) {
                    Some(g) if !g.is_array => Ok(()),
                    Some(_) => Err(self.err(
                        *span,
                        format!("array `{name}` used as a value; take `&{name}` or index it"),
                    )),
                    None if self.info.funcs.contains_key(name) => Err(self.err(
                        *span,
                        format!(
                            "procedure `{name}` used as a value; take its address with `&{name}`"
                        ),
                    )),
                    None => Err(self.err(*span, format!("unknown variable `{name}`"))),
                }
            }
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            Expr::Index { name, index, span } => {
                self.expr(index)?;
                self.check_array(name, *span)
            }
            Expr::AddrOf { name, span } => {
                if self.is_local(name) {
                    return Err(self.err(
                        *span,
                        format!("cannot take the address of local `{name}` (locals may live in registers)"),
                    ));
                }
                if self.info.globals.contains_key(name) || self.info.funcs.contains_key(name) {
                    Ok(())
                } else {
                    // `&f` of an undeclared procedure: implicit declaration.
                    self.info.funcs.insert(
                        name.clone(),
                        FuncSymbol {
                            link_name: name.clone(),
                            arity: None,
                            is_static: false,
                            defined: false,
                        },
                    );
                    Ok(())
                }
            }
            Expr::Call { callee, args, span } => {
                for a in args {
                    self.expr(a)?;
                }
                // A variable holding a function address makes this an
                // indirect call.
                if self.is_local(callee) {
                    return Ok(());
                }
                if let Some(g) = self.info.globals.get(callee) {
                    if g.is_array {
                        return Err(self.err(*span, format!("cannot call array `{callee}`")));
                    }
                    return Ok(()); // indirect through a global scalar
                }
                match self.info.funcs.get(callee) {
                    Some(f) => {
                        if let Some(n) = f.arity {
                            if n != args.len() {
                                return Err(self.err(
                                    *span,
                                    format!(
                                        "`{callee}` takes {n} argument(s), {} given",
                                        args.len()
                                    ),
                                ));
                            }
                        }
                        Ok(())
                    }
                    None => {
                        // K&R-style implicit declaration of an external
                        // procedure; arity recorded from this first call.
                        self.info.funcs.insert(
                            callee.clone(),
                            FuncSymbol {
                                link_name: callee.clone(),
                                arity: Some(args.len()),
                                is_static: false,
                                defined: false,
                            },
                        );
                        Ok(())
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn check(src: &str) -> Result<ModuleInfo> {
        analyze(&parse_module("m", src)?)
    }

    #[test]
    fn static_names_are_qualified() {
        let info = check("static int s; int g; static int f() { return s + g; }").unwrap();
        assert_eq!(info.global_link_name("s"), Some("m$s"));
        assert_eq!(info.global_link_name("g"), Some("g"));
        assert_eq!(info.func_link_name("f"), Some("m$f"));
    }

    #[test]
    fn implicit_function_declaration() {
        let info = check("int f() { return helper(1, 2); }").unwrap();
        let h = &info.funcs["helper"];
        assert!(!h.defined);
        assert_eq!(h.arity, Some(2));
    }

    #[test]
    fn extern_merges_with_definition() {
        let info = check("extern int g; int f() { return g; }").unwrap();
        assert!(!info.globals["g"].defined);
        // Extern then definition elsewhere in the same module is a conflict
        // only when shapes disagree.
        assert!(check("extern int a[]; int f() { return a[0]; }").is_ok());
        assert!(check("int g; extern int g[];").is_err());
    }

    #[test]
    fn scoping_and_shadowing() {
        // A for-loop introduces a scope, so two loops can both declare `i`.
        assert!(check(
            "int f() { for (int i = 0; i < 3; i = i + 1) {} for (int i = 9; i > 0; i = i - 1) {} return 0; }"
        )
        .is_ok());
        // Inner block shadows outer local.
        assert!(check("int f() { int x = 1; if (x) { int x = 2; out(x); } return x; }").is_ok());
        // Same-scope redeclaration rejected.
        assert!(check("int f() { int x; int x; return 0; }").is_err());
        // Locals are not visible after their block.
        assert!(check("int f() { if (1) { int y = 1; } return y; }").is_err());
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(check("int f() { return zzz; }").is_err());
        assert!(check("int f() { qqq = 3; return 0; }").is_err());
        assert!(check("int f() { return qqq[3]; }").is_err());
    }

    #[test]
    fn array_scalar_confusion_rejected() {
        assert!(check("int a[3]; int f() { return a; }").is_err());
        assert!(check("int a[3]; int f() { a = 1; return 0; }").is_err());
        assert!(check("int g; int f() { return g[0]; }").is_err());
        assert!(check("int a[3]; int f() { return a(1); }").is_err());
    }

    #[test]
    fn address_of_rules() {
        assert!(check("int g; int f() { return &g; }").is_ok());
        assert!(check("int a[3]; int f() { return &a; }").is_ok());
        assert!(check("int f() { return &f; }").is_ok());
        assert!(check("int f() { int x; return &x; }").is_err());
        assert!(check("int f(int p) { return &p; }").is_err());
        // &undeclared implies a function address.
        let info = check("int f() { return &mystery; }").unwrap();
        assert_eq!(info.funcs["mystery"].arity, None);
    }

    #[test]
    fn call_arity_checked_when_known() {
        assert!(check("int g(int a, int b) { return a + b; } int f() { return g(1); }").is_err());
        assert!(check("extern int e(int); int f() { return e(1, 2); }").is_err());
        assert!(check("int g(int a) { return a; } int f() { return g(1); }").is_ok());
    }

    #[test]
    fn indirect_calls_through_variables_allowed() {
        assert!(check("int t() { return 1; } int f() { int p = &t; return p(); }").is_ok());
        assert!(check("int hook; int t() { return 1; } int f() { return hook(); }").is_ok());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(check("int g; int g;").is_err());
        assert!(check("int f() { return 0; } int f() { return 1; }").is_err());
        assert!(check("int f(int a, int a) { return 0; }").is_err());
        assert!(check("int x; int x() { return 0; }").is_err());
    }

    #[test]
    fn break_continue_only_in_loops() {
        assert!(check("int f() { break; return 0; }").is_err());
        assert!(check("int f() { if (1) { continue; } return 0; }").is_err());
        assert!(check("int f() { while (1) { if (1) { break; } } return 0; }").is_ok());
    }

    #[test]
    fn function_as_value_rejected() {
        assert!(check("int t() { return 1; } int f() { return t; }").is_err());
        assert!(check("int t() { return 1; } int f() { t = 3; return 0; }").is_err());
    }
}
