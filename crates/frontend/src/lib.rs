//! # cmin-frontend — lexer, parser and semantic analysis for `cmin`
//!
//! `cmin` is the small C-like source language of this reproduction of
//! *Register Allocation Across Procedure and Module Boundaries* (PLDI 1990).
//! The paper's prototype modified HP's PA-RISC C compiler; `cmin` keeps the
//! language features its algorithms are sensitive to — global scalars,
//! `static` linkage, `extern` declarations, function pointers and indirect
//! calls, address-taken (aliased) globals, and loop-nested reference
//! frequencies — while staying small enough to own end to end.
//!
//! The typical pipeline is [`parser::parse_module`] followed by
//! [`sema::analyze`]:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cmin_frontend::{parser::parse_module, sema::analyze};
//!
//! let module = parse_module("counter", "
//!     static int count;
//!     int bump() { count = count + 1; return count; }
//!     int main() { bump(); bump(); return count; }
//! ")?;
//! let info = analyze(&module)?;
//! assert_eq!(info.global_link_name("count"), Some("counter$count"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;

pub use ast::Module;
pub use error::CompileError;
pub use parser::parse_module;
pub use sema::{analyze, ModuleInfo};
