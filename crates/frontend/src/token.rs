//! Tokens and source positions for the `cmin` language.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open source region, tracked as `line:column` of its start.
///
/// `cmin` sources are small enough that diagnostics only need the starting
/// position; spans exist so every AST node and error can point back at text.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span at `line:col`.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords of the language.
#[allow(missing_docs)] // variant names are the keywords themselves
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Keyword {
    Int,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    Static,
    Extern,
    Out,
    In,
}

impl Keyword {
    /// The keyword's source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Static => "static",
            Keyword::Extern => "extern",
            Keyword::Out => "out",
            Keyword::In => "in",
        }
    }

    /// Looks a keyword up by spelling.
    pub fn lookup(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "static" => Keyword::Static,
            "extern" => Keyword::Extern,
            "out" => Keyword::Out,
            "in" => Keyword::In,
            _ => return None,
        })
    }
}

/// A lexical token.
#[allow(missing_docs)] // punctuation variants are self-describing
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenKind {
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Num(i64),
    /// A keyword.
    Kw(Keyword),
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    PipePipe,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Num(n) => write!(f, "number `{n}`"),
            TokenKind::Kw(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::AmpAmp => write!(f, "`&&`"),
            TokenKind::PipePipe => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Int,
            Keyword::If,
            Keyword::Else,
            Keyword::While,
            Keyword::For,
            Keyword::Return,
            Keyword::Break,
            Keyword::Continue,
            Keyword::Static,
            Keyword::Extern,
            Keyword::Out,
            Keyword::In,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("float"), None);
    }

    #[test]
    fn span_displays() {
        assert_eq!(Span::new(3, 14).to_string(), "3:14");
    }

    #[test]
    fn token_display_nonempty() {
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
