//! Compilation diagnostics.

use crate::token::Span;
use std::fmt;

/// An error produced by the lexer, parser or semantic analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
    /// Source position of the offending text.
    pub span: Span,
    /// Name of the module being compiled.
    pub module: String,
}

impl CompileError {
    /// Creates an error at `span` in `module`.
    pub fn new(module: impl Into<String>, span: Span, message: impl Into<String>) -> CompileError {
        CompileError { message: message.into(), span, module: module.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.module, self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Convenience alias for frontend results.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_module_and_position() {
        let e = CompileError::new("m.cmin", Span::new(2, 5), "unexpected `;`");
        assert_eq!(e.to_string(), "m.cmin:2:5: unexpected `;`");
    }
}
