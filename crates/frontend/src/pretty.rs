//! Pretty-printing of `cmin` ASTs back to parseable source.
//!
//! Guarantees the round-trip property `parse(pretty(ast)) == ast`, which the
//! property-test suite exercises; also handy for dumping generated random
//! programs when a differential test fails.

use crate::ast::*;
use std::fmt::Write;

/// Renders a module as compilable `cmin` source.
pub fn module_to_string(m: &Module) -> String {
    let mut p = Printer { out: String::new(), indent: 0 };
    for e in &m.externs {
        p.extern_decl(e);
    }
    for g in &m.globals {
        p.global(g);
    }
    for f in &m.functions {
        p.function(f);
    }
    p.out
}

/// Renders a single expression (used in diagnostics).
pub fn expr_to_string(e: &Expr) -> String {
    let mut p = Printer { out: String::new(), indent: 0 };
    p.expr(e);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn extern_decl(&mut self, e: &ExternDecl) {
        match &e.kind {
            ExternKind::Scalar => self.line(&format!("extern int {};", e.name)),
            ExternKind::Array => self.line(&format!("extern int {}[];", e.name)),
            ExternKind::Func { arity } => {
                let params = vec!["int"; *arity].join(", ");
                self.line(&format!("extern int {}({});", e.name, params));
            }
        }
    }

    fn global(&mut self, g: &GlobalDecl) {
        let mut s = String::new();
        if g.is_static {
            s.push_str("static ");
        }
        let _ = write!(s, "int {}", g.name);
        if let Some(n) = g.size {
            let _ = write!(s, "[{n}]");
        }
        if !g.init.is_empty() {
            if g.size.is_some() {
                let items: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
                let _ = write!(s, " = {{{}}}", items.join(", "));
            } else {
                let _ = write!(s, " = {}", g.init[0]);
            }
        }
        s.push(';');
        self.line(&s);
    }

    fn function(&mut self, f: &Function) {
        let mut s = String::new();
        if f.is_static {
            s.push_str("static ");
        }
        let params: Vec<String> = f.params.iter().map(|p| format!("int {p}")).collect();
        let _ = write!(s, "int {}({}) {{", f.name, params.join(", "));
        self.line(&s);
        self.indent += 1;
        for st in &f.body.stmts {
            self.stmt(st);
        }
        self.indent -= 1;
        self.line("}");
    }

    fn block(&mut self, b: &Block) {
        self.indent += 1;
        for st in &b.stmts {
            self.stmt(st);
        }
        self.indent -= 1;
    }

    fn simple_stmt_str(&mut self, s: &Stmt) -> String {
        match s {
            Stmt::Local { name, init, .. } => match init {
                Some(e) => format!("int {name} = {}", self.expr_str(e)),
                None => format!("int {name}"),
            },
            Stmt::Assign { target, value, .. } => {
                let t = match target {
                    LValue::Name(n, _) => n.clone(),
                    LValue::Index { name, index, .. } => {
                        format!("{name}[{}]", self.expr_str(index))
                    }
                    LValue::Deref { addr, .. } => format!("*{}", self.atom_str(addr)),
                };
                format!("{t} = {}", self.expr_str(value))
            }
            Stmt::Expr { expr, .. } => self.expr_str(expr),
            other => unreachable!("not a simple statement: {other:?}"),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Local { .. } | Stmt::Assign { .. } | Stmt::Expr { .. } => {
                let text = self.simple_stmt_str(s);
                self.line(&format!("{text};"));
            }
            Stmt::If { cond, then_blk, else_blk } => {
                let c = self.expr_str(cond);
                self.line(&format!("if ({c}) {{"));
                self.block(then_blk);
                match else_blk {
                    Some(b) => {
                        self.line("} else {");
                        self.block(b);
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            Stmt::While { cond, body } => {
                let c = self.expr_str(cond);
                self.line(&format!("while ({c}) {{"));
                self.block(body);
                self.line("}");
            }
            Stmt::For { init, cond, step, body } => {
                let i = init.as_ref().map(|s| self.simple_stmt_str(s)).unwrap_or_default();
                let c = cond.as_ref().map(|e| self.expr_str(e)).unwrap_or_default();
                let st = step.as_ref().map(|s| self.simple_stmt_str(s)).unwrap_or_default();
                self.line(&format!("for ({i}; {c}; {st}) {{"));
                self.block(body);
                self.line("}");
            }
            Stmt::Return { value, .. } => match value {
                Some(e) => {
                    let t = self.expr_str(e);
                    self.line(&format!("return {t};"));
                }
                None => self.line("return;"),
            },
            Stmt::Break { .. } => self.line("break;"),
            Stmt::Continue { .. } => self.line("continue;"),
            Stmt::Out { value, .. } => {
                let t = self.expr_str(value);
                self.line(&format!("out({t});"));
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        let s = self.expr_str(e);
        self.out.push_str(&s);
    }

    fn expr_str(&mut self, e: &Expr) -> String {
        // Fully parenthesize compound subexpressions: simple and guarantees
        // the round trip regardless of precedence subtleties.
        match e {
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.atom_str(lhs);
                let r = self.atom_str(rhs);
                format!("{l} {} {r}", binop_str(*op))
            }
            _ => self.atom_str(e),
        }
    }

    fn atom_str(&mut self, e: &Expr) -> String {
        match e {
            Expr::Num(n, _) => {
                if *n < 0 {
                    format!("(0 - {})", -(*n as i128))
                } else {
                    n.to_string()
                }
            }
            Expr::Name(n, _) => n.clone(),
            Expr::Unary { op, expr, .. } => {
                let inner = self.atom_str(expr);
                match op {
                    UnOp::Neg => format!("-{inner}"),
                    UnOp::Not => format!("!{inner}"),
                    UnOp::Deref => format!("*{inner}"),
                }
            }
            Expr::Binary { .. } => {
                let s = self.expr_str(e);
                format!("({s})")
            }
            Expr::Call { callee, args, .. } => {
                let args: Vec<String> = args.iter().map(|a| self.expr_str(a)).collect();
                format!("{callee}({})", args.join(", "))
            }
            Expr::Index { name, index, .. } => {
                let i = self.expr_str(index);
                format!("{name}[{i}]")
            }
            Expr::AddrOf { name, .. } => format!("&{name}"),
            Expr::In { .. } => "in()".to_string(),
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    /// Strips spans so round-trip comparison ignores layout differences.
    fn normalize(m: &Module) -> String {
        let dbg = format!("{m:?}");
        let mut out = String::with_capacity(dbg.len());
        let mut rest = dbg.as_str();
        while let Some(i) = rest.find("Span {") {
            out.push_str(&rest[..i]);
            out.push_str("Span");
            let after = &rest[i..];
            let close = after.find('}').expect("Span debug always closes");
            rest = &after[close + 1..];
        }
        out.push_str(rest);
        out
    }

    #[test]
    fn round_trips_representative_module() {
        let src = "
            extern int lib_fn(int);
            extern int shared;
            static int s = 4;
            int a[3] = {1, 2, 3};
            int g;
            int helper(int x, int y) {
                int t = x * y + s;
                if (t > 10 && x != 0) { t = t - 1; } else if (t < -5) { t = 0 - t; } else { t = t + shared; }
                for (int i = 0; i < 3; i = i + 1) { a[i] = a[i] * 2; }
                while (!(t == 0)) { t = t / 2; if (t < 0) { break; } }
                return t;
            }
            int main() {
                int p = &helper;
                out(p(in(), 2));
                *(&g + 0) = 7;
                return lib_fn(g % 3) || s;
            }
        ";
        let m1 = parse_module("m", src).unwrap();
        let printed = module_to_string(&m1);
        let m2 = parse_module("m", &printed).unwrap();
        assert_eq!(normalize(&m1), normalize(&m2), "round trip changed the AST:\n{printed}");
        // Printing is idempotent.
        assert_eq!(printed, module_to_string(&m2));
    }

    #[test]
    fn negative_literal_round_trips() {
        let m1 = parse_module("m", "int f() { return -9223372036854775807; }").unwrap();
        let printed = module_to_string(&m1);
        let m2 = parse_module("m", &printed).unwrap();
        assert_eq!(normalize(&m1), normalize(&m2));
    }

    #[test]
    fn expr_to_string_smoke() {
        let m = parse_module("m", "int f(int x) { return (x + 1) * 2; }").unwrap();
        let crate::ast::Stmt::Return { value: Some(e), .. } = &m.functions[0].body.stmts[0] else {
            panic!()
        };
        assert_eq!(expr_to_string(e), "(x + 1) * 2");
    }
}
