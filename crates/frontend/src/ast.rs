//! Abstract syntax for `cmin`.
//!
//! `cmin` is a deliberately small C subset with exactly the features the
//! paper's algorithms care about:
//!
//! * one data type, the machine word (`int`);
//! * global scalar variables and global arrays, with optional `static`
//!   linkage (module-private, paper §7.4) and `extern` declarations for
//!   cross-module references;
//! * procedures, direct calls, and indirect calls through function
//!   addresses taken with `&f` (paper §7.3);
//! * address-of on globals (`&g`) plus `*p` loads and `*p = v` stores, the
//!   aliasing that makes a global ineligible for promotion (§4.1.2);
//! * structured control flow (`if`/`else`, `while`, `for`, `break`,
//!   `continue`), whose nesting drives the frontend's reference-frequency
//!   heuristics (§3);
//! * `out(e)` / `in()` builtins for observable I/O.

use crate::token::Span;
use serde::{Deserialize, Serialize};

/// A parsed source module (one compilation unit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (drives `static` name qualification).
    pub name: String,
    /// Globals defined in this module.
    pub globals: Vec<GlobalDecl>,
    /// `extern` declarations of symbols defined elsewhere.
    pub externs: Vec<ExternDecl>,
    /// Procedure definitions.
    pub functions: Vec<Function>,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalDecl {
    /// Source name.
    pub name: String,
    /// Module-private (`static`)?
    pub is_static: bool,
    /// `Some(n)` for an array of `n` words, `None` for a scalar.
    pub size: Option<u32>,
    /// Static initializer values (zero-padded to the declared size).
    pub init: Vec<i64>,
    /// Definition site.
    pub span: Span,
}

/// What an `extern` declaration declares.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExternKind {
    /// `extern int g;`
    Scalar,
    /// `extern int a[];`
    Array,
    /// `extern int f(n params);`
    Func {
        /// Declared parameter count.
        arity: usize,
    },
}

/// An `extern` declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternDecl {
    /// Declared name.
    pub name: String,
    /// Scalar, array, or function.
    pub kind: ExternKind,
    /// Declaration site.
    pub span: Span,
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Source name.
    pub name: String,
    /// Module-private (`static`)?
    pub is_static: bool,
    /// Parameter names (all parameters are `int`).
    pub params: Vec<String>,
    /// Body.
    pub body: Block,
    /// Definition site.
    pub span: Span,
}

/// A `{ ... }` statement list.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `int x;` or `int x = e;`
    Local {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Site.
        span: Span,
    },
    /// `lv = e;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Site.
        span: Span,
    },
    /// `if (c) { ... } else { ... }` (an `else if` parses as an `else`
    /// block containing a single `if`).
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_blk: Block,
        /// Optional else-branch.
        else_blk: Option<Block>,
    },
    /// `while (c) { ... }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; step) { ... }` — each header part optional.
    For {
        /// Initializer (a `Local` or `Assign`).
        init: Option<Box<Stmt>>,
        /// Loop condition (`true` when absent).
        cond: Option<Expr>,
        /// Step statement (an `Assign`).
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `return;` or `return e;`
    Return {
        /// Optional return value (0 when absent).
        value: Option<Expr>,
        /// Site.
        span: Span,
    },
    /// `break;`
    Break {
        /// Site.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Site.
        span: Span,
    },
    /// `out(e);`
    Out {
        /// Emitted value.
        value: Expr,
        /// Site.
        span: Span,
    },
    /// An expression statement (usually a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Site.
        span: Span,
    },
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// A scalar variable (local, parameter, or global).
    Name(String, Span),
    /// An array element, `a[i]`.
    Index {
        /// Array name.
        name: String,
        /// Element index.
        index: Expr,
        /// Site.
        span: Span,
    },
    /// A store through a pointer, `*p = e`.
    Deref {
        /// Address expression.
        addr: Expr,
        /// Site.
        span: Span,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!e` is 1 if `e == 0`, else 0).
    Not,
    /// Load through a pointer (`*p`).
    Deref,
}

/// Binary operators. `And`/`Or` short-circuit.
#[allow(missing_docs)] // variant names are the operators themselves
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Num(i64, Span),
    /// Scalar variable reference.
    Name(String, Span),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Site.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Site.
        span: Span,
    },
    /// A call. Whether it is direct or indirect is decided during semantic
    /// analysis: if `callee` names a variable, the call goes through the
    /// function address stored in it.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Site.
        span: Span,
    },
    /// Array element read, `a[i]`.
    Index {
        /// Array name.
        name: String,
        /// Element index.
        index: Box<Expr>,
        /// Site.
        span: Span,
    },
    /// `&name`: address of a global variable or of a procedure.
    AddrOf {
        /// Target name.
        name: String,
        /// Site.
        span: Span,
    },
    /// `in()`: read the next input value.
    In {
        /// Site.
        span: Span,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s) | Expr::Name(_, s) => *s,
            Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Call { span, .. }
            | Expr::Index { span, .. }
            | Expr::AddrOf { span, .. }
            | Expr::In { span } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_span_accessor_covers_all_variants() {
        let s = Span::new(1, 2);
        let exprs = vec![
            Expr::Num(1, s),
            Expr::Name("x".into(), s),
            Expr::Unary { op: UnOp::Neg, expr: Box::new(Expr::Num(1, s)), span: s },
            Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Num(1, s)),
                rhs: Box::new(Expr::Num(2, s)),
                span: s,
            },
            Expr::Call { callee: "f".into(), args: vec![], span: s },
            Expr::Index { name: "a".into(), index: Box::new(Expr::Num(0, s)), span: s },
            Expr::AddrOf { name: "g".into(), span: s },
            Expr::In { span: s },
        ];
        for e in exprs {
            assert_eq!(e.span(), s);
        }
    }
}
