//! The `cmin` recursive-descent parser.

use crate::ast::*;
use crate::error::{CompileError, Result};
use crate::lexer::lex;
use crate::token::{Keyword, Span, Token, TokenKind};

/// Parses one source module.
///
/// # Errors
///
/// Returns the first lexical or syntax error encountered.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let module = cmin_frontend::parser::parse_module("m", "int g; int main() { return g; }")?;
/// assert_eq!(module.globals.len(), 1);
/// assert_eq!(module.functions.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_module(name: &str, source: &str) -> Result<Module> {
    let tokens = lex(name, source)?;
    Parser { module: name.to_string(), tokens, pos: 0, depth: 0 }.module()
}

/// Nesting bound for expressions and blocks: parsing is recursive descent,
/// so pathological inputs (thousands of `(`s) must fail cleanly instead of
/// overflowing the stack.
const MAX_DEPTH: u32 = 400;

struct Parser {
    module: String,
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(&self.module, self.span(), msg)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        let span = self.span();
        match self.bump() {
            TokenKind::Ident(s) => Ok((s, span)),
            other => Err(CompileError::new(
                &self.module,
                span,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn expect_num(&mut self) -> Result<i64> {
        let span = self.span();
        match self.bump() {
            TokenKind::Num(n) => Ok(n),
            TokenKind::Minus => match self.bump() {
                TokenKind::Num(n) => Ok(-n),
                other => Err(CompileError::new(
                    &self.module,
                    span,
                    format!("expected number, found {other}"),
                )),
            },
            other => Err(CompileError::new(
                &self.module,
                span,
                format!("expected number, found {other}"),
            )),
        }
    }

    fn module(mut self) -> Result<Module> {
        let mut m = Module {
            name: self.module.clone(),
            globals: Vec::new(),
            externs: Vec::new(),
            functions: Vec::new(),
        };
        while self.peek() != &TokenKind::Eof {
            if self.eat(&TokenKind::Kw(Keyword::Extern)) {
                m.externs.push(self.extern_decl()?);
                continue;
            }
            let is_static = self.eat(&TokenKind::Kw(Keyword::Static));
            self.expect(&TokenKind::Kw(Keyword::Int))?;
            let (name, span) = self.expect_ident()?;
            if self.peek() == &TokenKind::LParen {
                m.functions.push(self.function(name, is_static, span)?);
            } else {
                m.globals.push(self.global(name, is_static, span)?);
            }
        }
        Ok(m)
    }

    fn extern_decl(&mut self) -> Result<ExternDecl> {
        self.expect(&TokenKind::Kw(Keyword::Int))?;
        let (name, span) = self.expect_ident()?;
        let kind = if self.eat(&TokenKind::LBracket) {
            if let TokenKind::Num(_) = self.peek() {
                self.bump();
            }
            self.expect(&TokenKind::RBracket)?;
            ExternKind::Array
        } else if self.eat(&TokenKind::LParen) {
            let mut arity = 0;
            if !self.eat(&TokenKind::RParen) {
                loop {
                    self.expect(&TokenKind::Kw(Keyword::Int))?;
                    // Parameter name is optional in a declaration.
                    if let TokenKind::Ident(_) = self.peek() {
                        self.bump();
                    }
                    arity += 1;
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            ExternKind::Func { arity }
        } else {
            ExternKind::Scalar
        };
        self.expect(&TokenKind::Semi)?;
        Ok(ExternDecl { name, kind, span })
    }

    fn global(&mut self, name: String, is_static: bool, span: Span) -> Result<GlobalDecl> {
        let size = if self.eat(&TokenKind::LBracket) {
            let n = self.expect_num()?;
            if n <= 0 {
                return Err(CompileError::new(&self.module, span, "array size must be positive"));
            }
            self.expect(&TokenKind::RBracket)?;
            Some(n as u32)
        } else {
            None
        };
        let mut init = Vec::new();
        if self.eat(&TokenKind::Assign) {
            if self.eat(&TokenKind::LBrace) {
                if size.is_none() {
                    return Err(CompileError::new(
                        &self.module,
                        span,
                        "brace initializer requires an array",
                    ));
                }
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        init.push(self.expect_num()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace)?;
                }
            } else {
                init.push(self.expect_num()?);
            }
        }
        if let Some(n) = size {
            if init.len() > n as usize {
                return Err(CompileError::new(
                    &self.module,
                    span,
                    format!("{} initializers for array of {n}", init.len()),
                ));
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(GlobalDecl { name, is_static, size, init, span })
    }

    fn function(&mut self, name: String, is_static: bool, span: Span) -> Result<Function> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                self.expect(&TokenKind::Kw(Keyword::Int))?;
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(Function { name, is_static, params, body, span })
    }

    fn block(&mut self) -> Result<Block> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("block nesting too deep"));
        }
        let r = self.block_inner();
        self.depth -= 1;
        r
    }

    fn block_inner(&mut self) -> Result<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        match self.peek() {
            TokenKind::Kw(Keyword::Int) => {
                let s = self.simple_stmt(true)?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
            TokenKind::Kw(Keyword::If) => self.if_stmt(),
            TokenKind::Kw(Keyword::While) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Kw(Keyword::For) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(Box::new(self.simple_stmt(true)?))
                };
                self.expect(&TokenKind::Semi)?;
                let cond = if self.peek() == &TokenKind::Semi { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi)?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt(false)?))
                };
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            TokenKind::Kw(Keyword::Return) => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Kw(Keyword::Break) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break { span })
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue { span })
            }
            TokenKind::Kw(Keyword::Out) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let value = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Out { value, span })
            }
            _ => {
                let s = self.simple_stmt(false)?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        self.expect(&TokenKind::Kw(Keyword::If))?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat(&TokenKind::Kw(Keyword::Else)) {
            if self.peek() == &TokenKind::Kw(Keyword::If) {
                // Desugar `else if` into an else-block holding the if.
                let nested = self.if_stmt()?;
                Some(Block { stmts: vec![nested] })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If { cond, then_blk, else_blk })
    }

    /// A declaration, assignment or expression statement, *without* the
    /// trailing semicolon (shared by ordinary statements and `for` headers).
    fn simple_stmt(&mut self, allow_decl: bool) -> Result<Stmt> {
        let span = self.span();
        if self.peek() == &TokenKind::Kw(Keyword::Int) {
            if !allow_decl {
                return Err(self.error("declaration not allowed here"));
            }
            self.bump();
            let (name, span) = self.expect_ident()?;
            let init = if self.eat(&TokenKind::Assign) { Some(self.expr()?) } else { None };
            return Ok(Stmt::Local { name, init, span });
        }
        let e = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let target = match e {
                Expr::Name(name, s) => LValue::Name(name, s),
                Expr::Index { name, index, span: s } => {
                    LValue::Index { name, index: *index, span: s }
                }
                Expr::Unary { op: UnOp::Deref, expr, span: s } => {
                    LValue::Deref { addr: *expr, span: s }
                }
                other => {
                    return Err(CompileError::new(
                        &self.module,
                        other.span(),
                        "expression is not assignable",
                    ))
                }
            };
            let value = self.expr()?;
            Ok(Stmt::Assign { target, value, span })
        } else {
            Ok(Stmt::Expr { expr: e, span })
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("expression nesting too deep"));
        }
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::PipePipe {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.equality()?;
        while self.peek() == &TokenKind::AmpAmp {
            let span = self.span();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
    }

    fn relational(&mut self) -> Result<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(e), span })
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(e), span })
            }
            TokenKind::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnOp::Deref, expr: Box::new(e), span })
            }
            TokenKind::Amp => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                Ok(Expr::AddrOf { name, span })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.bump() {
            TokenKind::Num(n) => Ok(Expr::Num(n, span)),
            TokenKind::Kw(Keyword::In) => {
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::In { span })
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    Ok(Expr::Call { callee: name, args, span })
                } else if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index { name, index: Box::new(index), span })
                } else {
                    Ok(Expr::Name(name, span))
                }
            }
            other => Err(CompileError::new(
                &self.module,
                span,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        parse_module("t", src).unwrap()
    }

    #[test]
    fn parses_globals_and_externs() {
        let m = parse(
            "int g; static int s = 3; int a[4] = {1, 2}; extern int x; extern int b[]; extern int f(int, int);",
        );
        assert_eq!(m.globals.len(), 3);
        assert!(m.globals[1].is_static);
        assert_eq!(m.globals[1].init, vec![3]);
        assert_eq!(m.globals[2].size, Some(4));
        assert_eq!(m.globals[2].init, vec![1, 2]);
        assert_eq!(m.externs.len(), 3);
        assert_eq!(m.externs[2].kind, ExternKind::Func { arity: 2 });
    }

    #[test]
    fn parses_function_with_control_flow() {
        let m = parse(
            "int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; } else { continue; }
                }
                while (s > 100) { s = s - 1; break; }
                return s;
            }",
        );
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.params, vec!["n"]);
        assert_eq!(f.body.stmts.len(), 4);
        assert!(matches!(f.body.stmts[1], Stmt::For { .. }));
    }

    #[test]
    fn precedence_is_c_like() {
        let m = parse("int f() { return 1 + 2 * 3 < 7 && 4 == 4 || 0; }");
        let Stmt::Return { value: Some(e), .. } = &m.functions[0].body.stmts[0] else {
            panic!("expected return");
        };
        // Top must be ||.
        let Expr::Binary { op: BinOp::Or, lhs, .. } = e else { panic!("expected Or at top") };
        let Expr::Binary { op: BinOp::And, lhs: cmp, .. } = lhs.as_ref() else {
            panic!("expected And below Or")
        };
        let Expr::Binary { op: BinOp::Lt, lhs: sum, .. } = cmp.as_ref() else {
            panic!("expected Lt below And")
        };
        let Expr::Binary { op: BinOp::Add, rhs: prod, .. } = sum.as_ref() else {
            panic!("expected Add below Lt")
        };
        assert!(matches!(prod.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn else_if_desugars() {
        let m = parse("int f(int x) { if (x) { return 1; } else if (x < 0) { return 2; } else { return 3; } }");
        let Stmt::If { else_blk: Some(b), .. } = &m.functions[0].body.stmts[0] else {
            panic!("expected if");
        };
        assert_eq!(b.stmts.len(), 1);
        assert!(matches!(b.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn pointer_and_address_forms() {
        let m = parse("int g; int f(int p) { *p = 4; int y = *(p + 1); return &g + 0; }");
        let f = &m.functions[0];
        assert!(matches!(&f.body.stmts[0], Stmt::Assign { target: LValue::Deref { .. }, .. }));
        let Stmt::Local { init: Some(Expr::Unary { op: UnOp::Deref, .. }), .. } = &f.body.stmts[1]
        else {
            panic!("expected deref initializer");
        };
    }

    #[test]
    fn array_assignment_and_read() {
        let m = parse("int a[10]; int f(int i) { a[i] = a[i + 1] + 2; return a[0]; }");
        assert!(matches!(
            &m.functions[0].body.stmts[0],
            Stmt::Assign { target: LValue::Index { .. }, .. }
        ));
    }

    #[test]
    fn calls_direct_and_via_variable() {
        let m = parse("int f() { g(1, 2); int p = &g; p(); return 0; }");
        assert!(matches!(
            &m.functions[0].body.stmts[0],
            Stmt::Expr { expr: Expr::Call { .. }, .. }
        ));
        assert!(matches!(
            &m.functions[0].body.stmts[2],
            Stmt::Expr { expr: Expr::Call { .. }, .. }
        ));
    }

    #[test]
    fn io_builtins() {
        let m = parse("int main() { out(in() + 1); return 0; }");
        assert!(matches!(&m.functions[0].body.stmts[0], Stmt::Out { .. }));
    }

    #[test]
    fn for_header_parts_optional() {
        let m = parse("int f() { for (;;) { break; } return 0; }");
        let Stmt::For { init, cond, step, .. } = &m.functions[0].body.stmts[0] else {
            panic!("expected for");
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn negative_initializer() {
        let m = parse("int g = -5; int a[2] = {-1, -2};");
        assert_eq!(m.globals[0].init, vec![-5]);
        assert_eq!(m.globals[1].init, vec![-1, -2]);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_module("t", "int f( { }").is_err());
        assert!(parse_module("t", "int f() { 1 + ; }").is_err());
        assert!(parse_module("t", "int f() { return 1 }").is_err());
        assert!(parse_module("t", "int f() { (1 + 2 = 3); }").is_err());
        assert!(parse_module("t", "int a[0];").is_err());
        assert!(parse_module("t", "int g = {1};").is_err());
        assert!(parse_module("t", "int a[1] = {1, 2};").is_err());
        assert!(parse_module("t", "int f() {").is_err());
        assert!(parse_module("t", "int f() { for (int i = 0; ; int j = 1) {} }").is_err());
    }

    #[test]
    fn pathological_nesting_fails_cleanly() {
        let deep = format!("int f() {{ return {}1{}; }}", "(".repeat(5000), ")".repeat(5000));
        let err = parse_module("t", &deep).unwrap_err();
        assert!(err.message.contains("too deep"), "{err}");

        let blocks =
            format!("int f() {{ {} return 0; {} }}", "if (1) {".repeat(5000), "}".repeat(5000));
        let err = parse_module("t", &blocks).unwrap_err();
        assert!(err.message.contains("too deep"), "{err}");

        // Reasonable nesting still parses.
        let ok = format!("int f() {{ return {}1{}; }}", "(".repeat(300), ")".repeat(300));
        assert!(parse_module("t", &ok).is_ok());
    }

    #[test]
    fn error_position_is_meaningful() {
        let err = parse_module("t", "int f() {\n  return 1\n}").unwrap_err();
        assert_eq!(err.span.line, 3);
    }
}
